//! Bring-your-own-graph: build a [`rdd_graph::Dataset`] by hand (or from
//! the TSV format in `rdd_graph::io`), train RDD on it, and save it to disk
//! for later runs.
//!
//! ```sh
//! cargo run --release --example custom_graph
//! ```

use rdd_core::{RddConfig, RddTrainer};
use rdd_graph::io::{load_dataset, save_dataset};
use rdd_graph::{planetoid_split, Dataset, Graph};
use rdd_tensor::{seeded_rng, CsrMatrix};

fn main() {
    // A toy "two communities" graph built by hand: nodes 0..50 form class 0,
    // 50..100 form class 1, with dense intra-community edges, a few
    // cross-community edges, and community-leaning features.
    let n = 100;
    let mut rng = seeded_rng(99);
    let mut edges = Vec::new();
    use rand::Rng;
    for _ in 0..400 {
        let a = rng.gen_range(0..50);
        let b = rng.gen_range(0..50);
        edges.push((a, b));
        edges.push((a + 50, b + 50));
    }
    for _ in 0..30 {
        edges.push((rng.gen_range(0..50), rng.gen_range(50..100)));
    }
    let graph = Graph::from_edges(n, &edges);

    let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= 50)).collect();
    // Features: 8 dims; community 0 leans on dims 0..4, community 1 on 4..8,
    // with noise words mixed in.
    let triplets: Vec<(usize, usize, f32)> = (0..n)
        .flat_map(|i| {
            let base = if labels[i] == 0 { 0 } else { 4 };
            let noisy = rng.gen_range(0..8);
            vec![(i, base + rng.gen_range(0..4), 0.5f32), (i, noisy, 0.5f32)]
        })
        .collect();
    let features = CsrMatrix::from_triplets(n, 8, &triplets);

    let (train_idx, val_idx, test_idx) = planetoid_split(&labels, 2, 4, 20, 40, &mut rng);
    let dataset = Dataset {
        name: "two-communities".into(),
        graph,
        features,
        labels,
        num_classes: 2,
        train_idx,
        val_idx,
        test_idx,
    };

    // Round-trip through the on-disk TSV format.
    let dir = std::env::temp_dir().join("rdd_custom_graph_example");
    save_dataset(&dataset, &dir).expect("save dataset");
    let dataset = load_dataset(&dir).expect("load dataset");
    println!("saved + reloaded dataset from {}", dir.display());

    // Train RDD with a small budget (the graph is tiny).
    let mut cfg = RddConfig::citation(1.0);
    cfg.num_base_models = 3;
    cfg.train.epochs = 100;
    cfg.train.min_epochs = 30;
    let outcome = RddTrainer::new(cfg).run(&dataset);
    println!(
        "RDD on the custom graph: single {:.1}%, ensemble {:.1}% ({} labeled nodes)",
        100.0 * outcome.single_test_acc,
        100.0 * outcome.ensemble_test_acc,
        dataset.train_idx.len()
    );
}
