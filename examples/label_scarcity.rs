//! Label scarcity study (the paper's motivating Figure 1 + Figure 6 in
//! miniature): how GCN and RDD degrade as labeled data shrinks, on a
//! Cora-like graph.
//!
//! ```sh
//! cargo run --release --example label_scarcity
//! ```

use rdd_core::{RddConfig, RddTrainer};
use rdd_graph::SynthConfig;
use rdd_models::{train, Gcn, GcnConfig, GraphContext, PredictorExt, TrainConfig};
use rdd_tensor::seeded_rng;

fn main() {
    let cfg = SynthConfig::cora_sim();
    println!("labeled/class  label rate   GCN      RDD(single)  RDD(ensemble)");
    for (bi, per_class) in [5usize, 10, 20, 50].into_iter().enumerate() {
        let mut dataset = cfg.generate();
        // Same per-budget resampling protocol as the figure6 harness.
        let mut rng = seeded_rng(42 + bi as u64);
        dataset.resample_train(per_class, &mut rng);
        let rate = 100.0 * (per_class * dataset.num_classes) as f32 / dataset.n() as f32;

        let ctx = GraphContext::new(&dataset);
        let mut gcn = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        train(
            &mut gcn,
            &ctx,
            &dataset,
            &TrainConfig::citation(),
            &mut rng,
            None,
        );
        let gcn_acc = dataset.test_accuracy(&gcn.predictor(&ctx).predict());

        let rdd = RddTrainer::new(RddConfig::for_dataset("cora")).run(&dataset);

        println!(
            "{per_class:>13} {rate:>10.1}% {:>7.1}% {:>11.1}% {:>13.1}%",
            100.0 * gcn_acc,
            100.0 * rdd.single_test_acc,
            100.0 * rdd.ensemble_test_acc
        );
    }
    println!();
    println!("Single runs are noisy; the multi-trial version of this sweep is");
    println!("`cargo run --release -p rdd-bench --bin figure6`, where RDD's edge");
    println!("is largest in the label-scarce regime.");
}
