//! Quickstart: train RDD on a synthetic Cora-like citation network and
//! compare the single and ensemble models against a plain GCN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rdd_core::{RddConfig, RddTrainer};
use rdd_graph::{DatasetStats, SynthConfig};
use rdd_models::{train, Gcn, GraphContext, PredictorExt, TrainConfig};
use rdd_tensor::seeded_rng;

fn main() {
    // 1. Generate a Cora-like dataset (2708 nodes, 7 classes, 20 labeled
    //    nodes per class — the paper's Planetoid protocol).
    let dataset = SynthConfig::cora_sim().generate();
    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::of(&dataset).row());
    println!();

    // 2. Baseline: a single plain GCN.
    let ctx = GraphContext::new(&dataset);
    let mut rng = seeded_rng(1);
    let train_cfg = TrainConfig::citation();
    let mut gcn = Gcn::new(&ctx, rdd_models::GcnConfig::citation(), &mut rng);
    let report = train(&mut gcn, &ctx, &dataset, &train_cfg, &mut rng, None);
    let gcn_acc = dataset.test_accuracy(&gcn.predictor(&ctx).predict());
    println!(
        "plain GCN        test acc {:.1}%   ({} epochs, {:.1}s)",
        100.0 * gcn_acc,
        report.epochs_run,
        report.wall_time_s
    );

    // 3. RDD: the self-boosting reliable-distillation ensemble with the
    //    hyperparameters tuned for this preset (see RddConfig::for_dataset).
    let config = RddConfig::for_dataset("cora");
    let outcome = RddTrainer::new(config).run(&dataset);
    println!(
        "RDD (single)     test acc {:.1}%",
        100.0 * outcome.single_test_acc
    );
    println!(
        "RDD (ensemble)   test acc {:.1}%   ({} base models, {:.1}s total)",
        100.0 * outcome.ensemble_test_acc,
        outcome.base_models.len(),
        outcome.wall_time_s
    );
    println!();
    println!("per-base-model breakdown:");
    for (t, b) in outcome.base_models.iter().enumerate() {
        println!(
            "  model {t}: test {:.1}%  val {:.1}%  alpha {:.3}  ({} epochs)",
            100.0 * b.test_acc,
            100.0 * b.val_acc,
            b.alpha,
            b.report.epochs_run
        );
    }
}
