//! Citation-network benchmark: run every method in the paper's Table 3 on
//! one synthetic citation dataset and print the comparison.
//!
//! ```sh
//! cargo run --release --example citation_benchmark [cora|citeseer|pubmed|nell]
//! ```

use rdd_baselines::lp::{predict as lp_predict, LpConfig};
use rdd_baselines::{bagging, bans, co_training, self_training, BansConfig, PseudoLabelConfig};
use rdd_core::{RddConfig, RddTrainer};
use rdd_graph::{DatasetStats, SynthConfig};
use rdd_models::{train, Gcn, GcnConfig, GraphContext, PredictorExt, TrainConfig};
use rdd_tensor::seeded_rng;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cora".into());
    let cfg = match name.as_str() {
        "cora" => SynthConfig::cora_sim(),
        "citeseer" => SynthConfig::citeseer_sim(),
        "pubmed" => SynthConfig::pubmed_sim(),
        "nell" => SynthConfig::nell_sim(),
        other => panic!("unknown dataset {other} (expected cora|citeseer|pubmed|nell)"),
    };
    let dataset = cfg.generate();
    println!("{}", DatasetStats::header());
    println!("{}\n", DatasetStats::of(&dataset).row());

    let (gcn_cfg, train_cfg): (GcnConfig, TrainConfig) = if name == "nell" {
        (GcnConfig::nell(), TrainConfig::nell())
    } else {
        (GcnConfig::citation(), TrainConfig::citation())
    };
    let ctx = GraphContext::new(&dataset);
    let mut results: Vec<(String, f32)> = Vec::new();

    // Classic graph SSL.
    results.push((
        "Label Propagation".into(),
        dataset.test_accuracy(&lp_predict(&dataset, &LpConfig::default())),
    ));

    // Pseudo-labeling methods.
    let pl = PseudoLabelConfig::default();
    results.push((
        "Self-Training".into(),
        dataset.test_accuracy(&self_training(&dataset, &gcn_cfg, &train_cfg, &pl, 1)),
    ));
    results.push((
        "Co-Training".into(),
        dataset.test_accuracy(&co_training(&dataset, &gcn_cfg, &train_cfg, &pl, 1)),
    ));

    // Single GCN.
    let mut rng = seeded_rng(1);
    let mut gcn = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
    train(&mut gcn, &ctx, &dataset, &train_cfg, &mut rng, None);
    results.push((
        "GCN".into(),
        dataset.test_accuracy(&gcn.predictor(&ctx).predict()),
    ));

    // Ensembles (5 base models each).
    results.push((
        "Bagging (x5)".into(),
        bagging(&dataset, &gcn_cfg, &train_cfg, 5, 1).ensemble_test_acc,
    ));
    results.push((
        "BANs (x5)".into(),
        bans(&dataset, &gcn_cfg, &train_cfg, 5, &BansConfig::default(), 1).ensemble_test_acc,
    ));

    let rdd = RddTrainer::new(RddConfig::for_dataset(&name)).run(&dataset);
    results.push(("RDD (single)".into(), rdd.single_test_acc));
    results.push(("RDD (ensemble x5)".into(), rdd.ensemble_test_acc));

    println!("{:<22} {:>9}", "method", "test acc");
    println!("{}", "-".repeat(32));
    for (method, acc) in &results {
        println!("{method:<22} {:>8.1}%", 100.0 * acc);
    }
}
