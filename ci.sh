#!/usr/bin/env bash
# Tier-1 gate: format, lints, build, tests.
#
# Usage: ./ci.sh
# Requires a toolchain with rustfmt + clippy and access to the crates.io
# mirror for the workspace dependencies (rand, proptest, criterion).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> workspace-off equivalence guard"
# The buffer pool must be a pure optimization: with RDD_WORKSPACE=off the
# env-gated default path runs unpooled and the bitwise-equivalence suite
# must still hold (it also exercises explicit on/off workspaces).
RDD_WORKSPACE=off cargo test -q -p rdd-core --test workspace_equivalence

echo "==> telemetry disabled-path guard"
# With RDD_TRACE unset the recorder must stay off: no trace file may appear,
# and a traced run must produce JSONL that the offline validator accepts.
rustc --edition 2021 -O tools/trace_check.rs -o target/trace_check
GUARD_DIR="$(mktemp -d)"
trap 'rm -rf "$GUARD_DIR"' EXIT
env -u RDD_TRACE cargo run -q --release -p rdd-cli -- train tiny --method gcn >/dev/null
target/trace_check --absent "$GUARD_DIR/off.jsonl"
RDD_TRACE="$GUARD_DIR/on.jsonl" cargo run -q --release -p rdd-cli -- train tiny --method rdd --models 2 >/dev/null
target/trace_check "$GUARD_DIR/on.jsonl"
RDD_TRACE="$GUARD_DIR/on.jsonl" cargo run -q --release -p rdd-cli -- trace-summary "$GUARD_DIR/on.jsonl" >/dev/null

echo "ci.sh: all gates passed"
