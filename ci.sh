#!/usr/bin/env bash
# Tier-1 gate: format, lints, build, tests.
#
# Usage: ./ci.sh
# Requires a toolchain with rustfmt + clippy and access to the crates.io
# mirror for the workspace dependencies (rand, proptest, criterion).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> workspace-off equivalence guard"
# The buffer pool must be a pure optimization: with RDD_WORKSPACE=off the
# env-gated default path runs unpooled and the bitwise-equivalence suite
# must still hold (it also exercises explicit on/off workspaces).
RDD_WORKSPACE=off cargo test -q -p rdd-core --test workspace_equivalence

echo "==> telemetry disabled-path guard"
# With RDD_TRACE unset the recorder must stay off: no trace file may appear,
# and a traced run must produce JSONL that the offline validator accepts.
rustc --edition 2021 -O tools/trace_check.rs -o target/trace_check
GUARD_DIR="$(mktemp -d)"
trap 'rm -rf "$GUARD_DIR"' EXIT
env -u RDD_TRACE cargo run -q --release -p rdd-cli -- train tiny --method gcn >/dev/null
target/trace_check --absent "$GUARD_DIR/off.jsonl"
RDD_TRACE="$GUARD_DIR/on.jsonl" cargo run -q --release -p rdd-cli -- train tiny --method rdd --models 2 >/dev/null
target/trace_check "$GUARD_DIR/on.jsonl"
RDD_TRACE="$GUARD_DIR/on.jsonl" cargo run -q --release -p rdd-cli -- trace-summary "$GUARD_DIR/on.jsonl" >/dev/null

echo "==> fault-injection matrix (kill, resume, compare bitwise)"
# For each fault kind: run crash-safe under RDD_FAULT, then finish the run
# (resume for the aborting kinds, in-process recovery for nan_loss) and
# require the ensemble predictions to be byte-identical to a clean run.
RDD="cargo run -q --release -p rdd-cli --"
FAULT_DIR="$GUARD_DIR/faults"
mkdir -p "$FAULT_DIR"
$RDD train tiny --models 2 --pred-out "$FAULT_DIR/clean.txt" >/dev/null

for fault in panic@member:1 io_fail@ckpt:2; do
  tag="${fault%%@*}"
  if RDD_FAULT="$fault" $RDD train tiny --models 2 \
      --run-dir "$FAULT_DIR/run-$tag" >/dev/null 2>&1; then
    echo "fault matrix: $fault did not abort the run" >&2
    exit 1
  fi
  $RDD resume "$FAULT_DIR/run-$tag" --pred-out "$FAULT_DIR/$tag.txt" >/dev/null
  cmp "$FAULT_DIR/clean.txt" "$FAULT_DIR/$tag.txt" \
    || { echo "fault matrix: $fault resume diverged from clean run" >&2; exit 1; }
done

RDD_FAULT=nan_loss@epoch:7 $RDD train tiny --models 2 \
  --run-dir "$FAULT_DIR/run-nan" --pred-out "$FAULT_DIR/nan_loss.txt" >/dev/null
cmp "$FAULT_DIR/clean.txt" "$FAULT_DIR/nan_loss.txt" \
  || { echo "fault matrix: nan_loss recovery diverged from clean run" >&2; exit 1; }

echo "==> serve smoke (train, export, serve, compare bitwise)"
# Distill a completed crash-safe run into an artifact, serve one request per
# node through the micro-batching engine, and require the served probability
# rows to be byte-identical to the offline ensemble dump.
SERVE_DIR="$GUARD_DIR/serve"
mkdir -p "$SERVE_DIR"
$RDD train tiny --models 2 --run-dir "$SERVE_DIR/run" >/dev/null
$RDD export "$SERVE_DIR/run" "$SERVE_DIR/model.artifact" >/dev/null
$RDD artifact-info "$SERVE_DIR/model.artifact" \
  --proba-out "$SERVE_DIR/offline.proba" >/dev/null
NODES="$(awk 'END { print NR }' "$SERVE_DIR/offline.proba")"
awk -v n="$NODES" 'BEGIN { for (i = 0; i < n; i++) printf "{\"id\":%d,\"nodes\":[%d]}\n", i, i }' \
  > "$SERVE_DIR/requests.jsonl"
RDD_TRACE="$SERVE_DIR/serve.jsonl" $RDD serve --artifact "$SERVE_DIR/model.artifact" \
  --batch 16 --proba-out "$SERVE_DIR/served.proba" \
  < "$SERVE_DIR/requests.jsonl" > "$SERVE_DIR/replies.jsonl" 2>/dev/null
cmp "$SERVE_DIR/offline.proba" "$SERVE_DIR/served.proba" \
  || { echo "serve smoke: served rows diverged from offline ensemble" >&2; exit 1; }
target/trace_check "$SERVE_DIR/serve.jsonl"
$RDD trace-summary "$SERVE_DIR/serve.jsonl" | grep -q "Serving" \
  || { echo "serve smoke: trace-summary missing Serving section" >&2; exit 1; }

echo "ci.sh: all gates passed"
