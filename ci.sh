#!/usr/bin/env bash
# Tier-1 gate: format, lints, build, tests.
#
# Usage: ./ci.sh
# Requires a toolchain with rustfmt + clippy and access to the crates.io
# mirror for the workspace dependencies (rand, proptest, criterion).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "ci.sh: all gates passed"
