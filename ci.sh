#!/usr/bin/env bash
# Tier-1 gate: format, lints, build, tests.
#
# Usage: ./ci.sh
# Requires a toolchain with rustfmt + clippy and access to the crates.io
# mirror for the workspace dependencies (rand, proptest, criterion).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> workspace-off equivalence guard"
# The buffer pool must be a pure optimization: with RDD_WORKSPACE=off the
# env-gated default path runs unpooled and the bitwise-equivalence suite
# must still hold (it also exercises explicit on/off workspaces).
RDD_WORKSPACE=off cargo test -q -p rdd-core --test workspace_equivalence

echo "==> telemetry disabled-path guard"
# With RDD_TRACE unset the recorder must stay off: no trace file may appear,
# and a traced run must produce JSONL that the offline validator accepts.
rustc --edition 2021 -O tools/trace_check.rs -o target/trace_check
GUARD_DIR="$(mktemp -d)"
trap 'rm -rf "$GUARD_DIR"' EXIT
env -u RDD_TRACE cargo run -q --release -p rdd-cli -- train tiny --method gcn >/dev/null
target/trace_check --absent "$GUARD_DIR/off.jsonl"
RDD_TRACE="$GUARD_DIR/on.jsonl" cargo run -q --release -p rdd-cli -- train tiny --method rdd --models 2 >/dev/null
target/trace_check "$GUARD_DIR/on.jsonl"
RDD_TRACE="$GUARD_DIR/on.jsonl" cargo run -q --release -p rdd-cli -- trace-summary "$GUARD_DIR/on.jsonl" >/dev/null

echo "==> instrumentation overhead guard (disabled recorder: zero-alloc, cheap)"
env -u RDD_TRACE cargo test -q --release -p rdd-obs --test overhead

echo "==> report smoke + perf-regression gate"
# `rdd report` must render the hierarchical self-time attribution from the
# traced run, with self-times that cannot exceed the wall clock; then the
# bench gate diffs the same trace against the committed baseline (generous
# tolerances — it exists to catch order-of-magnitude regressions, not
# machine-to-machine noise) and must prove it can fire via --inject.
REPORT="$(cargo run -q --release -p rdd-cli -- report "$GUARD_DIR/on.jsonl")"
echo "$REPORT" | grep -q "Kernel self-time attribution" \
  || { echo "report smoke: missing self-time attribution section" >&2; exit 1; }
echo "$REPORT" | grep -q "self-time total" \
  || { echo "report smoke: missing self-time footer" >&2; exit 1; }
rustc --edition 2021 -O tools/bench_gate.rs -o target/bench_gate
target/bench_gate "$GUARD_DIR/on.jsonl" tools/bench_baseline.json \
  --tol-default 300 --floor-ms 0.25
target/bench_gate "$GUARD_DIR/on.jsonl" "$GUARD_DIR/on.jsonl" --tol-default 75 --floor-ms 0.01
if target/bench_gate "$GUARD_DIR/on.jsonl" "$GUARD_DIR/on.jsonl" \
    --tol-default 75 --floor-ms 0.01 --inject 2.0 >/dev/null; then
  echo "bench gate: injected 2x regression was not caught" >&2
  exit 1
fi

echo "==> fault-injection matrix (kill, resume, compare bitwise)"
# For each fault kind: run crash-safe under RDD_FAULT, then finish the run
# (resume for the aborting kinds, in-process recovery for nan_loss) and
# require the ensemble predictions to be byte-identical to a clean run.
RDD="cargo run -q --release -p rdd-cli --"
FAULT_DIR="$GUARD_DIR/faults"
mkdir -p "$FAULT_DIR"
$RDD train tiny --models 2 --pred-out "$FAULT_DIR/clean.txt" >/dev/null

for fault in panic@member:1 io_fail@ckpt:2; do
  tag="${fault%%@*}"
  if RDD_FAULT="$fault" $RDD train tiny --models 2 \
      --run-dir "$FAULT_DIR/run-$tag" >/dev/null 2>&1; then
    echo "fault matrix: $fault did not abort the run" >&2
    exit 1
  fi
  $RDD resume "$FAULT_DIR/run-$tag" --pred-out "$FAULT_DIR/$tag.txt" >/dev/null
  cmp "$FAULT_DIR/clean.txt" "$FAULT_DIR/$tag.txt" \
    || { echo "fault matrix: $fault resume diverged from clean run" >&2; exit 1; }
done

RDD_FAULT=nan_loss@epoch:7 $RDD train tiny --models 2 \
  --run-dir "$FAULT_DIR/run-nan" --pred-out "$FAULT_DIR/nan_loss.txt" >/dev/null
cmp "$FAULT_DIR/clean.txt" "$FAULT_DIR/nan_loss.txt" \
  || { echo "fault matrix: nan_loss recovery diverged from clean run" >&2; exit 1; }

echo "==> serve smoke (train, export, serve, compare bitwise)"
# Distill a completed crash-safe run into an artifact, serve one request per
# node through the micro-batching engine, and require the served probability
# rows to be byte-identical to the offline ensemble dump.
SERVE_DIR="$GUARD_DIR/serve"
mkdir -p "$SERVE_DIR"
$RDD train tiny --models 2 --run-dir "$SERVE_DIR/run" >/dev/null
$RDD export "$SERVE_DIR/run" "$SERVE_DIR/model.artifact" >/dev/null
$RDD artifact-info "$SERVE_DIR/model.artifact" \
  --proba-out "$SERVE_DIR/offline.proba" >/dev/null
NODES="$(awk 'END { print NR }' "$SERVE_DIR/offline.proba")"
awk -v n="$NODES" 'BEGIN { for (i = 0; i < n; i++) printf "{\"id\":%d,\"nodes\":[%d]}\n", i, i }' \
  > "$SERVE_DIR/requests.jsonl"
RDD_TRACE="$SERVE_DIR/serve.jsonl" $RDD serve --artifact "$SERVE_DIR/model.artifact" \
  --batch 16 --metrics-every 1 --proba-out "$SERVE_DIR/served.proba" \
  < "$SERVE_DIR/requests.jsonl" > "$SERVE_DIR/replies.jsonl" 2>/dev/null
cmp "$SERVE_DIR/offline.proba" "$SERVE_DIR/served.proba" \
  || { echo "serve smoke: served rows diverged from offline ensemble" >&2; exit 1; }
target/trace_check "$SERVE_DIR/serve.jsonl"
$RDD trace-summary "$SERVE_DIR/serve.jsonl" | grep -q "Serving" \
  || { echo "serve smoke: trace-summary missing Serving section" >&2; exit 1; }
# The rolling-window heartbeat must reach the trace (at least the final
# at-EOF beat) and render in the report's serving section.
grep -q '"ev":"serve_metrics"' "$SERVE_DIR/serve.jsonl" \
  || { echo "serve smoke: no serve_metrics heartbeat in trace" >&2; exit 1; }
$RDD report "$SERVE_DIR/serve.jsonl" | grep -q "Serve heartbeats" \
  || { echo "serve smoke: report missing serve heartbeats section" >&2; exit 1; }

echo "==> SIMD-equivalence gate (RDD_SIMD=off vs auto, compare bitwise)"
# RDD_SIMD=off must route every kernel through the verbatim pre-SIMD scalar
# bodies; the SSE2/AVX2 tiers are allowed bounded-ULP drift inside kernels
# but the tiny end-to-end pipeline must come out prediction-identical (the
# equivalence property tests bound the per-kernel drift; this catches any
# dispatch-path divergence end to end).
SIMD_DIR="$GUARD_DIR/simd"
mkdir -p "$SIMD_DIR"
RDD_SIMD=off $RDD train tiny --models 2 --pred-out "$SIMD_DIR/off.txt" >/dev/null
RDD_SIMD=auto $RDD train tiny --models 2 --pred-out "$SIMD_DIR/auto.txt" >/dev/null
cmp "$SIMD_DIR/off.txt" "$SIMD_DIR/auto.txt" \
  || { echo "simd gate: RDD_SIMD=auto predictions diverged from scalar" >&2; exit 1; }
# And off-tier training must be bitwise-stable run to run (the scalar
# oracle itself is deterministic).
RDD_SIMD=off $RDD train tiny --models 2 --pred-out "$SIMD_DIR/off2.txt" >/dev/null
cmp "$SIMD_DIR/off.txt" "$SIMD_DIR/off2.txt" \
  || { echo "simd gate: RDD_SIMD=off is not deterministic" >&2; exit 1; }

echo "==> v2q serve smoke (export --quantize, drift bound, serve, compare)"
# Quantized export of the serve-smoke run: the v2q artifact must load, stay
# within the measured ULP drift bound of its v1 twin, be meaningfully
# smaller, and serve rows byte-identical to its own offline dump (serving
# is deterministic given one artifact; only the quantization is lossy).
$RDD export "$SERVE_DIR/run" "$SERVE_DIR/model.v2q" --quantize int8 >/dev/null
$RDD artifact-info "$SERVE_DIR/model.v2q" --reference "$SERVE_DIR/model.artifact" \
  --assert-max-ulp 4200000000 --proba-out "$SERVE_DIR/offline_v2q.proba" >/dev/null
V1_BYTES="$(wc -c < "$SERVE_DIR/model.artifact")"
V2Q_BYTES="$(wc -c < "$SERVE_DIR/model.v2q")"
[ "$((V2Q_BYTES * 10))" -lt "$((V1_BYTES * 7))" ] \
  || { echo "v2q smoke: quantized artifact not smaller ($V2Q_BYTES vs $V1_BYTES bytes)" >&2; exit 1; }
$RDD serve --artifact "$SERVE_DIR/model.v2q" \
  --batch 16 --proba-out "$SERVE_DIR/served_v2q.proba" \
  < "$SERVE_DIR/requests.jsonl" > "$SERVE_DIR/replies_v2q.jsonl" 2>/dev/null
cmp "$SERVE_DIR/offline_v2q.proba" "$SERVE_DIR/served_v2q.proba" \
  || { echo "v2q smoke: served rows diverged from offline v2q dump" >&2; exit 1; }

echo "==> sharded multi-worker serve smoke (export --shards, serve --workers, compare bitwise)"
# The same run exported as a 3-shard set and served through 2 pool workers
# must produce probability rows byte-identical to the single-file,
# single-threaded path: sharding and concurrency are pure plumbing.
$RDD export "$SERVE_DIR/run" "$SERVE_DIR/model.sharded" --shards 3 >/dev/null
$RDD artifact-info "$SERVE_DIR/model.sharded" --reference "$SERVE_DIR/model.artifact" \
  --assert-max-ulp 0 >/dev/null
$RDD serve --artifact "$SERVE_DIR/model.sharded" --workers 2 \
  --batch 16 --proba-out "$SERVE_DIR/served_sharded.proba" \
  < "$SERVE_DIR/requests.jsonl" > "$SERVE_DIR/replies_sharded.jsonl" 2>/dev/null
cmp "$SERVE_DIR/offline.proba" "$SERVE_DIR/served_sharded.proba" \
  || { echo "sharded smoke: sharded pooled rows diverged from offline ensemble" >&2; exit 1; }

echo "==> hot-swap gate (swap artifact mid-stream, zero drops, per-generation bitwise)"
# Serve from a FIFO so the request stream can pause mid-flight: first half
# against artifact A, overwrite the watched file with artifact B, wait for
# the swap to land, then the second half. Every request must be answered
# (zero drops), both generations must appear, each served row must match
# its own generation's offline dump bitwise, and the swap must reach the
# trace.
SWAP_DIR="$GUARD_DIR/swap"
mkdir -p "$SWAP_DIR"
$RDD train tiny --models 2 --seed 7 --run-dir "$SWAP_DIR/run_b" >/dev/null
$RDD export "$SWAP_DIR/run_b" "$SWAP_DIR/b.artifact" >/dev/null
$RDD artifact-info "$SWAP_DIR/b.artifact" --proba-out "$SWAP_DIR/offline_b.proba" >/dev/null
cmp -s "$SERVE_DIR/offline.proba" "$SWAP_DIR/offline_b.proba" \
  && { echo "hot-swap gate: seed-7 artifact is identical to seed-default; gate is vacuous" >&2; exit 1; }
cp "$SERVE_DIR/model.artifact" "$SWAP_DIR/watch.artifact"
HALF=$((NODES / 2))
mkfifo "$SWAP_DIR/reqs.fifo"
RDD_TRACE="$SWAP_DIR/swap.jsonl" $RDD serve --artifact "$SWAP_DIR/watch.artifact" \
  --workers 2 --batch 16 --watch-artifact --served-out "$SWAP_DIR/served_gen.txt" \
  < "$SWAP_DIR/reqs.fifo" > "$SWAP_DIR/replies.jsonl" 2> "$SWAP_DIR/serve.err" &
SERVE_PID=$!
exec 3> "$SWAP_DIR/reqs.fifo"
head -n "$HALF" "$SERVE_DIR/requests.jsonl" >&3
# Wait for the first half to be fully served before swapping, so the
# generation split is deterministic.
for _ in $(seq 1 100); do
  [ "$(wc -l < "$SWAP_DIR/replies.jsonl")" -ge "$HALF" ] && break
  sleep 0.1
done
cp "$SWAP_DIR/b.artifact" "$SWAP_DIR/watch.artifact"
for _ in $(seq 1 100); do
  grep -q "swapped" "$SWAP_DIR/serve.err" && break
  sleep 0.1
done
grep -q "swapped" "$SWAP_DIR/serve.err" \
  || { echo "hot-swap gate: swap never fired" >&2; kill "$SERVE_PID"; exit 1; }
tail -n +"$((HALF + 1))" "$SERVE_DIR/requests.jsonl" >&3
exec 3>&-
wait "$SERVE_PID" || { echo "hot-swap gate: serve exited non-zero" >&2; exit 1; }
REPLIES="$(wc -l < "$SWAP_DIR/replies.jsonl")"
[ "$REPLIES" -eq "$NODES" ] \
  || { echo "hot-swap gate: $REPLIES replies for $NODES requests (dropped some)" >&2; exit 1; }
if grep -q '"error"' "$SWAP_DIR/replies.jsonl"; then
  echo "hot-swap gate: error replies during swap" >&2; exit 1
fi
GENS="$(awk '{ print $1 }' "$SWAP_DIR/served_gen.txt" | sort -u | tr '\n' ' ')"
[ "$GENS" = "0 1 " ] \
  || { echo "hot-swap gate: expected generations 0 and 1, saw: $GENS" >&2; exit 1; }
# Join each served row against its own generation's offline dump: columns
# are <generation> <id> <node> <floats...>; generation 0 rows must match
# artifact A, generation 1 rows artifact B, bitwise.
awk 'FNR == 1 { f++ }
     f == 1 { a[FNR - 1] = $0 }
     f == 2 { b[FNR - 1] = $0 }
     f == 3 {
       row = ""
       for (i = 4; i <= NF; i++) row = row (i > 4 ? " " : "") $i
       want = ($1 == 0 ? a[$3] : b[$3])
       if (row != want) { print "generation " $1 " row for node " $3 " diverged"; bad = 1 }
     }
     END { exit bad }' \
  "$SERVE_DIR/offline.proba" "$SWAP_DIR/offline_b.proba" "$SWAP_DIR/served_gen.txt" \
  || { echo "hot-swap gate: served rows diverged from their generation's dump" >&2; exit 1; }
grep -q '"ev":"swap"' "$SWAP_DIR/swap.jsonl" \
  || { echo "hot-swap gate: no swap event in trace" >&2; exit 1; }
$RDD trace-summary "$SWAP_DIR/swap.jsonl" | grep -q "Swap:" \
  || { echo "hot-swap gate: trace-summary missing swap line" >&2; exit 1; }

echo "==> serve chaos gate (injected panics: every request answered, bitwise, supervision in trace)"
# Panics injected into the worker loop and the batch kernel must be
# supervised: the claimed batch is requeued, the worker respawned, and the
# stream finishes with every request answered and rows bitwise identical
# to the offline ensemble. Both panic and respawn must reach the trace.
CHAOS_DIR="$GUARD_DIR/chaos"
mkdir -p "$CHAOS_DIR"
for site in serve_worker serve_batch; do
  RDD_FAULT="panic@$site:0x2" RDD_TRACE="$CHAOS_DIR/$site.jsonl" $RDD serve \
    --artifact "$SERVE_DIR/model.artifact" --workers 2 --batch 16 \
    --proba-out "$CHAOS_DIR/$site.proba" \
    < "$SERVE_DIR/requests.jsonl" > "$CHAOS_DIR/$site.replies.jsonl" 2>/dev/null \
    || { echo "chaos gate: serve exited non-zero under panic@$site" >&2; exit 1; }
  REPLIES="$(wc -l < "$CHAOS_DIR/$site.replies.jsonl")"
  [ "$REPLIES" -eq "$NODES" ] \
    || { echo "chaos gate: $REPLIES replies for $NODES requests under panic@$site" >&2; exit 1; }
  if grep -q '"error"' "$CHAOS_DIR/$site.replies.jsonl"; then
    echo "chaos gate: error replies under panic@$site (retry budget should absorb it)" >&2; exit 1
  fi
  cmp "$SERVE_DIR/offline.proba" "$CHAOS_DIR/$site.proba" \
    || { echo "chaos gate: rows diverged from offline ensemble under panic@$site" >&2; exit 1; }
  grep -q '"ev":"worker_panic"' "$CHAOS_DIR/$site.jsonl" \
    || { echo "chaos gate: no worker_panic event under panic@$site" >&2; exit 1; }
  grep -q '"ev":"worker_respawn"' "$CHAOS_DIR/$site.jsonl" \
    || { echo "chaos gate: no worker_respawn event under panic@$site" >&2; exit 1; }
  target/trace_check "$CHAOS_DIR/$site.jsonl"
done
# A corrupt shard must be detected at load time as a typed error, never
# served silently.
if RDD_FAULT=corrupt@shard_load:0 $RDD serve --artifact "$SERVE_DIR/model.sharded" \
  --batch 16 < "$SERVE_DIR/requests.jsonl" >/dev/null 2> "$CHAOS_DIR/corrupt.err"; then
  echo "chaos gate: corrupt shard served without complaint" >&2; exit 1
fi
grep -qi "corrupt" "$CHAOS_DIR/corrupt.err" \
  || { echo "chaos gate: corrupt shard error message missing" >&2; exit 1; }

echo "==> swap-rollback gate (io_fail@swap_load: old generation stays live, retry recovers)"
# The watcher's first replacement load fails with an injected I/O error:
# the pool must keep the current generation live (swap_failed in the
# trace, rollback note on stderr), then the backoff retry loads the same
# file successfully and the swap lands. Every request is still answered.
ROLL_DIR="$GUARD_DIR/rollback"
mkdir -p "$ROLL_DIR"
cp "$SERVE_DIR/model.artifact" "$ROLL_DIR/watch.artifact"
mkfifo "$ROLL_DIR/reqs.fifo"
RDD_FAULT=io_fail@swap_load:0x1 RDD_TRACE="$ROLL_DIR/roll.jsonl" $RDD serve \
  --artifact "$ROLL_DIR/watch.artifact" --workers 2 --batch 16 --watch-artifact \
  --served-out "$ROLL_DIR/served_gen.txt" \
  < "$ROLL_DIR/reqs.fifo" > "$ROLL_DIR/replies.jsonl" 2> "$ROLL_DIR/serve.err" &
ROLL_PID=$!
exec 4> "$ROLL_DIR/reqs.fifo"
head -n "$HALF" "$SERVE_DIR/requests.jsonl" >&4
for _ in $(seq 1 100); do
  [ "$(wc -l < "$ROLL_DIR/replies.jsonl")" -ge "$HALF" ] && break
  sleep 0.1
done
cp "$SWAP_DIR/b.artifact" "$ROLL_DIR/watch.artifact"
for _ in $(seq 1 100); do
  grep -q "swapped" "$ROLL_DIR/serve.err" && break
  sleep 0.1
done
grep -q "swapped" "$ROLL_DIR/serve.err" \
  || { echo "swap-rollback gate: retry never landed the swap" >&2; kill "$ROLL_PID"; exit 1; }
grep -q "retrying in" "$ROLL_DIR/serve.err" \
  || { echo "swap-rollback gate: no rollback note for the failed load" >&2; kill "$ROLL_PID"; exit 1; }
tail -n +"$((HALF + 1))" "$SERVE_DIR/requests.jsonl" >&4
exec 4>&-
wait "$ROLL_PID" || { echo "swap-rollback gate: serve exited non-zero" >&2; exit 1; }
REPLIES="$(wc -l < "$ROLL_DIR/replies.jsonl")"
[ "$REPLIES" -eq "$NODES" ] \
  || { echo "swap-rollback gate: $REPLIES replies for $NODES requests" >&2; exit 1; }
if grep -q '"error"' "$ROLL_DIR/replies.jsonl"; then
  echo "swap-rollback gate: error replies during rollback" >&2; exit 1
fi
GENS="$(awk '{ print $1 }' "$ROLL_DIR/served_gen.txt" | sort -u | tr '\n' ' ')"
[ "$GENS" = "0 1 " ] \
  || { echo "swap-rollback gate: expected generations 0 and 1, saw: $GENS" >&2; exit 1; }
grep -q '"ev":"swap_failed"' "$ROLL_DIR/roll.jsonl" \
  || { echo "swap-rollback gate: no swap_failed event in trace" >&2; exit 1; }
grep -q '"ev":"swap"' "$ROLL_DIR/roll.jsonl" \
  || { echo "swap-rollback gate: no swap event after recovery" >&2; exit 1; }
target/trace_check "$ROLL_DIR/roll.jsonl"

echo "==> breaker smoke (slow batches trip the breaker open, probes close it)"
# A paced request stream against an injected-slow batch kernel must trip
# the circuit breaker open (typed Overloaded rejections), half-open after
# the cooldown, and close once probes come back fast. Every request still
# gets exactly one reply, and the state transitions reach the trace.
BRK_DIR="$GUARD_DIR/breaker"
mkdir -p "$BRK_DIR"
awk -v n="$NODES" 'BEGIN { for (i = 0; i < 400; i++) printf "{\"id\":%d,\"nodes\":[%d]}\n", i, i % n }' \
  > "$BRK_DIR/requests.jsonl"
while IFS= read -r line; do printf '%s\n' "$line"; sleep 0.01; done < "$BRK_DIR/requests.jsonl" \
  | RDD_FAULT=slow@serve_batch:0x20 RDD_TRACE="$BRK_DIR/breaker.jsonl" $RDD serve \
      --artifact "$SERVE_DIR/model.artifact" --workers 2 --batch 4 \
      --breaker-p99-ms 5 --metrics-every 1 \
      > "$BRK_DIR/replies.jsonl" 2> "$BRK_DIR/serve.err" \
  || { echo "breaker smoke: serve exited non-zero" >&2; exit 1; }
REPLIES="$(wc -l < "$BRK_DIR/replies.jsonl")"
[ "$REPLIES" -eq 400 ] \
  || { echo "breaker smoke: $REPLIES replies for 400 requests" >&2; exit 1; }
grep -q '"state":"open","from":"closed"' "$BRK_DIR/breaker.jsonl" \
  || { echo "breaker smoke: breaker never tripped open" >&2; exit 1; }
grep -q '"state":"half_open"' "$BRK_DIR/breaker.jsonl" \
  || { echo "breaker smoke: breaker never half-opened" >&2; exit 1; }
grep -q '"state":"closed","from":"half_open"' "$BRK_DIR/breaker.jsonl" \
  || { echo "breaker smoke: breaker never closed after recovery" >&2; exit 1; }
grep -q "overloaded" "$BRK_DIR/replies.jsonl" \
  || { echo "breaker smoke: no typed Overloaded rejections while open" >&2; exit 1; }
$RDD trace-summary "$BRK_DIR/breaker.jsonl" | grep -q "Breaker:" \
  || { echo "breaker smoke: trace-summary missing Breaker lines" >&2; exit 1; }
target/trace_check "$BRK_DIR/breaker.jsonl"

echo "==> distill gate (distill-mlp, v3 artifact, ByFeatures served bitwise vs offline student)"
# Distill the frozen cora-sim ensemble into the graph-free MLP student:
# the accuracy gap to the teacher must stay bounded, the v3 artifact must
# advertise feature serving (and refuse node requests), and a served
# `{"features": ...}` stream must come back byte-identical to the offline
# student forward over the same rows. Feature values are exact multiples
# of 1/64 so the JSON (f64) and TSV (f32) parse paths cannot diverge.
KD_DIR="$GUARD_DIR/distill"
mkdir -p "$KD_DIR"
$RDD train cora --models 2 --run-dir "$KD_DIR/run" >/dev/null
$RDD distill-mlp "$KD_DIR/run" "$KD_DIR/student.artifact" > "$KD_DIR/distill.txt"
grep -q "accuracy gap" "$KD_DIR/distill.txt" \
  || { echo "distill gate: no accuracy-gap table" >&2; exit 1; }
GAP="$(awk '/accuracy gap:/ { gsub(/[+%]/, "", $3); print $3 }' "$KD_DIR/distill.txt")"
awk -v g="$GAP" 'BEGIN { exit !(g <= 20.0) }' \
  || { echo "distill gate: student trails the ensemble by $GAP% (> 20%)" >&2; exit 1; }
$RDD artifact-info "$KD_DIR/student.artifact" > "$KD_DIR/info.txt"
grep -q "serves:      nodes no, features yes" "$KD_DIR/info.txt" \
  || { echo "distill gate: v3 artifact capabilities wrong" >&2; exit 1; }
IN_DIM="$(awk '/^student:/ { print $2 }' "$KD_DIR/info.txt")"
awk -v d="$IN_DIM" 'BEGIN {
  for (i = 0; i < 32; i++) {
    for (j = 0; j < d; j++) printf "%s%.6f", (j ? " " : ""), ((i * 31 + j * 17) % 64) / 64
    print ""
  }
}' > "$KD_DIR/rows.tsv"
awk '{
  printf "{\"id\":%d,\"features\":[", NR - 1
  for (i = 1; i <= NF; i++) printf "%s%s", (i > 1 ? "," : ""), $i
  print "]}"
}' "$KD_DIR/rows.tsv" > "$KD_DIR/requests.jsonl"
$RDD artifact-info "$KD_DIR/student.artifact" \
  --features-in "$KD_DIR/rows.tsv" --proba-out "$KD_DIR/offline_student.proba" >/dev/null
$RDD serve --artifact "$KD_DIR/student.artifact" --batch 8 \
  --proba-out "$KD_DIR/served.proba" \
  < "$KD_DIR/requests.jsonl" > "$KD_DIR/replies.jsonl" 2>/dev/null
cmp "$KD_DIR/offline_student.proba" "$KD_DIR/served.proba" \
  || { echo "distill gate: served feature rows diverged from offline student" >&2; exit 1; }
[ "$(grep -c '"kind":"features"' "$KD_DIR/replies.jsonl")" -eq 32 ] \
  || { echo "distill gate: replies missing kind=features" >&2; exit 1; }
# Node requests against the student must fail with the typed error, not rows.
printf '{"id":0,"nodes":[0]}\n' | $RDD serve --artifact "$KD_DIR/student.artifact" \
  2>/dev/null | grep -q "node-id requests unsupported" \
  || { echo "distill gate: node request against mlp artifact not a typed error" >&2; exit 1; }

echo "ci.sh: all gates passed"
