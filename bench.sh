#!/usr/bin/env bash
# Emit BENCH_<n>.json — the kernel-level perf trajectory record for this PR
# sequence (BENCH_1.json was recorded by the PR that introduced the worker
# pool; later PRs append BENCH_2.json, BENCH_3.json, ...).
#
# Usage: ./bench.sh <n>
#
# Two paths:
#   * With the full dependency set available, run the criterion kernel
#     benches (authoritative, statistically sound):
#         cargo bench -p rdd-bench --bench kernels
#     and read medians out of target/criterion/*/new/estimates.json.
#   * Offline (no crates.io mirror), fall back to the dependency-free
#     harness tools/kernel_timing.rs, which mounts the same kernel sources
#     and reports best-of-N wall times.
#
# Either way, the script then runs the whole-epoch harness
# tools/epoch_timing.rs against the current tree (target/epoch_current.json)
# and, when SEED_REF is set (e.g. SEED_REF=HEAD before committing, or a
# commit hash), against a `git archive` checkout of that ref compiled with
# `--cfg seed_build` (target/epoch_seed.json). The seed/now/speedup stage
# table in BENCH_<n>.json is composed from those two files.
set -euo pipefail
cd "$(dirname "$0")"

n="${1:?usage: ./bench.sh <n> (emits BENCH_<n>.json)}"
out="BENCH_${n}.json"
threads="$(nproc 2>/dev/null || echo unknown)"

if cargo bench -p rdd-bench --bench kernels 2>/dev/null; then
    echo "==> collecting criterion estimates into ${out}"
    {
        echo "{"
        echo "  \"source\": \"criterion (median point estimate)\","
        echo "  \"host_cpus\": \"${threads}\","
        echo "  \"unit\": \"ns\","
        echo "  \"kernels\": {"
        first=1
        for est in target/criterion/*/*/new/estimates.json; do
            [ -f "$est" ] || continue
            name="$(dirname "$(dirname "$est")")"
            name="${name#target/criterion/}"
            median="$(sed -n 's/.*"median":{"confidence_interval":[^}]*},"point_estimate":\([0-9.e+]*\).*/\1/p' "$est")"
            [ -n "$median" ] || continue
            [ "$first" = 1 ] || echo ","
            first=0
            printf '    "%s": %s' "$name" "$median"
        done
        echo ""
        echo "  }"
        echo "}"
    } > "$out"
else
    echo "==> criterion unavailable, falling back to tools/kernel_timing.rs"
    mkdir -p target
    rustc --edition 2021 -O --crate-type lib --crate-name rdd_obs \
        crates/obs/src/lib.rs -o target/librdd_obs.rlib
    rustc --edition 2021 -O -C target-cpu=native tools/kernel_timing.rs \
        --extern rdd_obs=target/librdd_obs.rlib \
        -o target/kernel_timing
    ./target/kernel_timing > "$out"
fi

echo "==> whole-epoch timing (tools/epoch_timing.rs, preset cora-sim)"
sh tools/offline/full_stack.sh
D=target/scratch/deps
rustc --edition 2021 -O -C target-cpu=native -L "dependency=$D" tools/epoch_timing.rs \
    --extern rdd_core="$D/librdd_core.rlib" \
    --extern rdd_models="$D/librdd_models.rlib" \
    --extern rdd_graph="$D/librdd_graph.rlib" \
    --extern rdd_tensor="$D/librdd_tensor.rlib" \
    -o target/epoch_timing
RDD_SIMD=auto ./target/epoch_timing --preset cora-sim --epochs 40 | tee target/epoch_current.json
echo "==> same build, SIMD tier forced off (the RDD_SIMD=off/auto epoch speedup row)"
RDD_SIMD=off ./target/epoch_timing --preset cora-sim --epochs 40 | tee target/epoch_current_scalar.json

if [ -n "${SEED_REF:-}" ]; then
    echo "==> seed-side epoch timing (git archive ${SEED_REF}, --cfg seed_build)"
    rm -rf target/seed_src
    mkdir -p target/seed_src
    git archive "$SEED_REF" | tar -x -C target/seed_src
    (cd target/seed_src && sh tools/offline/full_stack.sh)
    S=target/seed_src/target/scratch/deps
    rustc --edition 2021 -O -C target-cpu=native --cfg seed_build -L "dependency=$S" \
        tools/epoch_timing.rs \
        --extern rdd_core="$S/librdd_core.rlib" \
        --extern rdd_models="$S/librdd_models.rlib" \
        --extern rdd_graph="$S/librdd_graph.rlib" \
        --extern rdd_tensor="$S/librdd_tensor.rlib" \
        -o target/epoch_timing_seed
    ./target/epoch_timing_seed --preset cora-sim --epochs 40 | tee target/epoch_seed.json
    echo "(interleave several seed/current runs when composing BENCH_${n}.json: the runner is shared)"
else
    echo "(set SEED_REF=<ref> to also time the pre-change tree for the seed/now table)"
fi

echo "wrote ${out} (epoch stage JSON in target/epoch_current.json$( [ -n "${SEED_REF:-}" ] && echo " and target/epoch_seed.json"))"
