#!/usr/bin/env bash
# Emit BENCH_<n>.json — the kernel-level perf trajectory record for this PR
# sequence (BENCH_1.json was recorded by the PR that introduced the worker
# pool; later PRs append BENCH_2.json, BENCH_3.json, ...).
#
# Usage: ./bench.sh <n>
#
# Two paths:
#   * With the full dependency set available, run the criterion kernel
#     benches (authoritative, statistically sound):
#         cargo bench -p rdd-bench --bench kernels
#     and read medians out of target/criterion/*/new/estimates.json.
#   * Offline (no crates.io mirror), fall back to the dependency-free
#     harness tools/kernel_timing.rs, which mounts the same kernel sources
#     and reports best-of-N wall times.
set -euo pipefail
cd "$(dirname "$0")"

n="${1:?usage: ./bench.sh <n> (emits BENCH_<n>.json)}"
out="BENCH_${n}.json"
threads="$(nproc 2>/dev/null || echo unknown)"

if cargo bench -p rdd-bench --bench kernels 2>/dev/null; then
    echo "==> collecting criterion estimates into ${out}"
    {
        echo "{"
        echo "  \"source\": \"criterion (median point estimate)\","
        echo "  \"host_cpus\": \"${threads}\","
        echo "  \"unit\": \"ns\","
        echo "  \"kernels\": {"
        first=1
        for est in target/criterion/*/*/new/estimates.json; do
            [ -f "$est" ] || continue
            name="$(dirname "$(dirname "$est")")"
            name="${name#target/criterion/}"
            median="$(sed -n 's/.*"median":{"confidence_interval":[^}]*},"point_estimate":\([0-9.e+]*\).*/\1/p' "$est")"
            [ -n "$median" ] || continue
            [ "$first" = 1 ] || echo ","
            first=0
            printf '    "%s": %s' "$name" "$median"
        done
        echo ""
        echo "  }"
        echo "}"
    } > "$out"
else
    echo "==> criterion unavailable, falling back to tools/kernel_timing.rs"
    mkdir -p target
    rustc --edition 2021 -O --crate-type lib --crate-name rdd_obs \
        crates/obs/src/lib.rs -o target/librdd_obs.rlib
    rustc --edition 2021 -O -C target-cpu=native tools/kernel_timing.rs \
        --extern rdd_obs=target/librdd_obs.rlib \
        -o target/kernel_timing
    ./target/kernel_timing > "$out"
fi

echo "wrote ${out}"
