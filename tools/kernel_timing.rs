//! Dependency-free kernel timing harness.
//!
//! Mounts the real `rdd-tensor` kernel sources via `#[path]` so it compiles
//! with nothing but `rustc` — no cargo, no registry. This is the fallback
//! used by `bench.sh` when the criterion benches cannot be built (offline
//! container without the crates.io mirror), and the generator of the
//! `BENCH_<n>.json` perf-trajectory records.
//!
//! Every kernel is timed twice in this one process — once with the SIMD
//! tier forced to scalar, once on the best tier the host supports
//! (`simd::force_active`) — so the reported `gain` column is a true
//! same-binary, same-data comparison of the `RDD_SIMD=off` and
//! `RDD_SIMD=auto` dispatch paths.
//!
//! Build & run (the kernel sources link `rdd-obs`, itself std-only, so it
//! is compiled to an rlib first):
//! ```sh
//! rustc --edition 2021 -O --crate-type lib --crate-name rdd_obs \
//!     crates/obs/src/lib.rs -o target/librdd_obs.rlib
//! rustc --edition 2021 -O -C target-cpu=native tools/kernel_timing.rs \
//!     --extern rdd_obs=target/librdd_obs.rlib \
//!     -o target/kernel_timing && target/kernel_timing
//! ```
//! Output: one JSON object on stdout mapping kernel labels to
//! `{scalar_ms, simd_ms, gain}` (best-of-N milliseconds). `RDD_THREADS`
//! is honored like everywhere else; `RDD_SIMD` is ignored — both tiers
//! are always measured.

// The mounted modules expose their full API; this harness only times a
// subset of it.
#![allow(dead_code)]

#[path = "../crates/tensor/src/par.rs"]
mod par;

#[path = "../crates/tensor/src/simd.rs"]
mod simd;

#[path = "../crates/tensor/src/matrix.rs"]
mod matrix;

#[path = "../crates/tensor/src/sparse.rs"]
mod sparse;

use matrix::Matrix;
use simd::SimdTier;
use sparse::CsrMatrix;
use std::time::Instant;

/// Deterministic xorshift64* so runs are comparable across builds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn f32(&mut self) -> f32 {
        (self.next() >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    }
}

fn rand_matrix(rng: &mut Rng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.f32())
}

/// Random graph-shaped CSR: `n` nodes, ~`edges * 2` stored entries.
fn rand_graph(rng: &mut Rng, n: usize, edges: usize) -> CsrMatrix {
    let mut triplets = Vec::with_capacity(edges * 2);
    for _ in 0..edges {
        let a = (rng.next() % n as u64) as usize;
        let b = (rng.next() % n as u64) as usize;
        if a == b {
            continue;
        }
        let w = rng.f32().abs() + 0.1;
        triplets.push((a, b, w));
        triplets.push((b, a, w));
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Best-of-N wall time for one tier.
fn best_ms<F: FnMut() -> R, R>(reps: usize, mut f: F) -> f64 {
    std::hint::black_box(f()); // warmup
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e3
}

struct Timing {
    label: String,
    scalar_ms: f64,
    simd_ms: f64,
}

/// Time `f` under the scalar tier, then under `best`, via the global
/// tier latch.
fn time<F: FnMut() -> R, R>(
    results: &mut Vec<Timing>,
    best_tier: SimdTier,
    label: &str,
    reps: usize,
    mut f: F,
) {
    simd::force_active(SimdTier::Scalar);
    let scalar_ms = best_ms(reps, &mut f);
    simd::force_active(best_tier);
    let simd_ms = best_ms(reps, &mut f);
    results.push(Timing {
        label: label.to_string(),
        scalar_ms,
        simd_ms,
    });
}

fn main() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut results: Vec<Timing> = Vec::new();
    let best = simd::detect_best();

    // Acceptance shapes: the dense backprop products at 2048x512x512.
    let a = rand_matrix(&mut rng, 2048, 512);
    let b = rand_matrix(&mut rng, 512, 512);
    let d = rand_matrix(&mut rng, 2048, 512);
    time(&mut results, best, "matmul_at_b(2048x512x512)", 5, || {
        a.matmul_at_b(&d)
    });
    time(&mut results, best, "matmul(2048x512x512)", 5, || a.matmul(&b));
    time(&mut results, best, "matmul_a_bt(2048x512x512)", 5, || {
        a.matmul_a_bt(&b)
    });

    // Cora-shaped layer-1 product.
    let xc = rand_matrix(&mut rng, 2708, 1433);
    let wc = rand_matrix(&mut rng, 1433, 16);
    time(&mut results, best, "matmul(2708x1433x16)", 5, || {
        xc.matmul(&wc)
    });

    time(&mut results, best, "transpose(2048x512)", 10, || a.transpose());

    // ~100k-edge graph: the sparse kernels at ensemble/backprop scale.
    let g = rand_graph(&mut rng, 20_000, 100_000);
    let h = rand_matrix(&mut rng, 20_000, 16);
    time(&mut results, best, "spmm(100k-edge,16)", 10, || g.spmm(&h));
    time(&mut results, best, "spmm_t(100k-edge,16)", 10, || g.spmm_t(&h));
    let v: Vec<f32> = (0..20_000).map(|_| rng.f32()).collect();
    time(&mut results, best, "spmv(100k-edge)", 20, || g.spmv(&v));
    time(&mut results, best, "spmv_t(100k-edge)", 20, || g.spmv_t(&v));
    time(&mut results, best, "prune(100k-edge)", 10, || g.prune(0.2));

    // Row-wise softmax family: the loss hook / reliability-refresh shapes
    // (wide rows exercise the vector exp; cora-width rows the real usage).
    let wide = rand_matrix(&mut rng, 2048, 512);
    time(&mut results, best, "softmax_rows(2048x512)", 5, || {
        wide.softmax_rows()
    });
    let proba = wide.softmax_rows();
    time(&mut results, best, "row_entropy(2048x512)", 10, || {
        proba.row_entropy()
    });
    let cora_logits = rand_matrix(&mut rng, 2708, 7);
    time(&mut results, best, "softmax_rows(2708x7)", 20, || {
        cora_logits.softmax_rows()
    });

    // Elementwise arms used by the optimizer/regularizer paths.
    let e1 = rand_matrix(&mut rng, 2048, 512);
    let e2 = rand_matrix(&mut rng, 2048, 512);
    time(&mut results, best, "add_scaled(2048x512)", 10, || {
        let mut x = e1.clone();
        x.add_scaled_assign(&e2, -0.01);
        x
    });
    time(&mut results, best, "hadamard(2048x512)", 10, || e1.hadamard(&e2));
    time(&mut results, best, "scale(2048x512)", 10, || e1.scaled(1.01));

    // v2q artifact dequantization (per-row affine int8 -> f32).
    let q: Vec<u8> = (0..2048 * 512).map(|_| (rng.next() & 0xff) as u8).collect();
    let mut deq = vec![0f32; q.len()];
    time(&mut results, best, "dequant_u8(1M)", 10, || {
        simd::dequant_u8(simd::active(), &q, 0.0125, -1.5, &mut deq);
        deq[0]
    });

    let threads = par::num_threads();
    println!("{{");
    println!("  \"threads\": {threads},");
    println!("  \"simd_detected\": \"{}\",", best.name());
    println!("  \"unit\": \"ms (best of N)\",");
    println!("  \"kernels\": {{");
    for (i, t) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let gain = if t.simd_ms > 0.0 {
            t.scalar_ms / t.simd_ms
        } else {
            0.0
        };
        println!(
            "    \"{}\": {{\"scalar_ms\": {:.3}, \"simd_ms\": {:.3}, \"gain\": {:.2}}}{comma}",
            t.label, t.scalar_ms, t.simd_ms, gain
        );
    }
    println!("  }}");
    println!("}}");
}
