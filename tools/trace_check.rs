//! Dependency-free offline validator for `RDD_TRACE` JSONL files.
//!
//! Mounts the `rdd-obs` parser/summarizer sources via `#[path]` so it
//! compiles with nothing but `rustc` — no cargo, no registry. `ci.sh` uses
//! it to validate traces produced during the test run, and to assert the
//! disabled path writes nothing.
//!
//! Build & run:
//! ```sh
//! rustc --edition 2021 -O tools/trace_check.rs -o target/trace_check
//! target/trace_check trace.jsonl [more.jsonl ...]   # validate + summarize
//! target/trace_check --absent trace.jsonl           # fail if the file exists
//! ```
//! Exit status: 0 when every file validates (or, with `--absent`, when no
//! file exists); 1 otherwise, with the first schema violation on stderr.

// The mounted modules expose more API than this harness uses.
#![allow(dead_code)]

// Top-level mounts: `summarize` finds `json` and `hist` via
// `super::` = crate root.
#[path = "../crates/obs/src/hist.rs"]
mod hist;
#[path = "../crates/obs/src/json.rs"]
mod json;
#[path = "../crates/obs/src/summarize.rs"]
mod summarize;

use summarize::TraceSummary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: trace_check [--absent] <file.jsonl> [more.jsonl ...]");
        std::process::exit(2);
    }

    if args[0] == "--absent" {
        // Disabled-path guard: with RDD_TRACE unset no trace may appear.
        for path in &args[1..] {
            if std::path::Path::new(path).exists() {
                eprintln!("trace_check: {path} exists but telemetry was disabled");
                std::process::exit(1);
            }
        }
        println!("trace_check: disabled path wrote no trace files");
        return;
    }

    let mut failed = false;
    for path in &args {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace_check: failed to read {path}: {e}");
                failed = true;
                continue;
            }
        };
        match TraceSummary::parse(&src) {
            Ok(summary) => println!(
                "{path}: ok — {} events ({} epoch, {} member, {} run, {} kernel, \
                 {} hist, {} span_parent, {} serve_metrics, {} swap, {} env_warn, {} warning)",
                summary.total_events,
                summary.epochs.len(),
                summary.members.len(),
                summary.runs.len(),
                summary.kernels.len(),
                summary.hists.len(),
                summary.span_edges.len(),
                summary.serve_metrics.len(),
                summary.swaps.len(),
                summary.env_warns.len(),
                summary.warnings.len(),
            ),
            Err(e) => {
                eprintln!("trace_check: {path}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
