#!/bin/sh
# Offline full-stack compile of the workspace with bare rustc (registry
# unreachable). Builds a rand stub + every lib crate as rlibs into
# target/scratch/deps, then whatever test/bin the caller asks for.
set -e
cd /root/repo
D=target/scratch/deps
mkdir -p "$D"

rustc --edition 2021 -O -L dependency=target/scratch/deps --crate-type lib --crate-name rand \
  tools/offline/rand_stub.rs -o "$D/librand.rlib"

rustc --edition 2021 -O -L dependency=target/scratch/deps --crate-type lib --crate-name rdd_obs \
  crates/obs/src/lib.rs -o "$D/librdd_obs.rlib"

rustc --edition 2021 -O -L dependency=target/scratch/deps --crate-type lib --crate-name rdd_tensor \
  crates/tensor/src/lib.rs \
  --extern rdd_obs="$D/librdd_obs.rlib" --extern rand="$D/librand.rlib" \
  -o "$D/librdd_tensor.rlib"

rustc --edition 2021 -O -L dependency=target/scratch/deps --crate-type lib --crate-name rdd_graph \
  crates/graph/src/lib.rs \
  --extern rdd_tensor="$D/librdd_tensor.rlib" --extern rand="$D/librand.rlib" \
  -o "$D/librdd_graph.rlib"

rustc --edition 2021 -O -L dependency=target/scratch/deps --crate-type lib --crate-name rdd_models \
  crates/models/src/lib.rs \
  --extern rdd_obs="$D/librdd_obs.rlib" --extern rdd_tensor="$D/librdd_tensor.rlib" \
  --extern rdd_graph="$D/librdd_graph.rlib" --extern rand="$D/librand.rlib" \
  -o "$D/librdd_models.rlib"

rustc --edition 2021 -O -L dependency=target/scratch/deps --crate-type lib --crate-name rdd_core \
  crates/core/src/lib.rs \
  --extern rdd_obs="$D/librdd_obs.rlib" --extern rdd_tensor="$D/librdd_tensor.rlib" \
  --extern rdd_graph="$D/librdd_graph.rlib" --extern rdd_models="$D/librdd_models.rlib" \
  --extern rand="$D/librand.rlib" \
  -o "$D/librdd_core.rlib"

rustc --edition 2021 -O -L dependency=target/scratch/deps --crate-type lib --crate-name rdd_serve \
  crates/serve/src/lib.rs \
  --extern rdd_obs="$D/librdd_obs.rlib" --extern rdd_tensor="$D/librdd_tensor.rlib" \
  --extern rdd_graph="$D/librdd_graph.rlib" --extern rdd_models="$D/librdd_models.rlib" \
  --extern rdd_core="$D/librdd_core.rlib" \
  -o "$D/librdd_serve.rlib"

rustc --edition 2021 -O -L dependency=target/scratch/deps --crate-type lib --crate-name rdd_baselines \
  crates/baselines/src/lib.rs \
  --extern rdd_tensor="$D/librdd_tensor.rlib" --extern rdd_graph="$D/librdd_graph.rlib" \
  --extern rdd_models="$D/librdd_models.rlib" --extern rand="$D/librand.rlib" \
  -o "$D/librdd_baselines.rlib"

echo "all rlibs built into $D"
