//! Minimal offline stand-in for the `rand 0.8` API surface this workspace
//! uses (StdRng + seed_from_u64, Rng::gen/gen_range, SliceRandom). Built as
//! `librand.rlib` by tools/offline/full_stack.sh so the whole workspace compiles with bare
//! rustc when the crates registry is unreachable. Streams are deterministic
//! (splitmix64) but do NOT match the real rand crate's output.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng {
                state: seed ^ 0xA0761D6478BD642F,
            };
            // Warm up so small seeds diverge immediately.
            use crate::RngCore;
            rng.next_u64();
            rng
        }
    }
}

pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize u64 u32 u16 u8 i64 i32);

macro_rules! float_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range!(f32 f64);

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::RngCore;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = i + (rng.next_u64() % (self.len() - i) as u64) as usize;
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}
