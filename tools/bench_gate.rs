//! Offline perf-regression gate over `RDD_TRACE` summaries.
//!
//! Mounts the `rdd-obs` parser/summarizer sources via `#[path]` so it
//! compiles with nothing but `rustc` — no cargo, no registry. `ci.sh`
//! diffs the trace produced during the test run against a committed
//! baseline and fails the build when any tracked metric regresses past
//! its tolerance.
//!
//! Build & run:
//! ```sh
//! rustc --edition 2021 -O tools/bench_gate.rs -o target/bench_gate
//! target/bench_gate current.jsonl baseline.json [--tol-default PCT]
//!     [--tol NAME=PCT ...] [--floor-ms F] [--inject FACTOR]
//! target/bench_gate --write-baseline out.json current.jsonl
//! ```
//!
//! Inputs may be raw trace JSONL files or flat `{"metric": ms, ...}`
//! baseline JSON written by `--write-baseline`. Tracked metrics are
//! `wall_ms`, per-kernel `<name>.ms_per_call` / `<name>.self_ms_per_call`,
//! and (when the trace served requests) the final heartbeat's
//! `serve.p50_ms` / `serve.p99_ms` plus `serve.ms_per_request` from the
//! final `serve_run` event.
//!
//! A metric regresses when `current > baseline * (1 + tol/100)` AND
//! `current - baseline > floor_ms`; the absolute floor keeps sub-noise
//! metrics from flaking the gate. Improvements never fail. Metrics
//! present on only one side are reported but never fatal, so adding or
//! removing a kernel does not require a lockstep baseline update.
//!
//! `--inject FACTOR` multiplies every current metric before comparison —
//! the self-test hook ci.sh uses to prove the gate actually fires.
//! Exit status: 0 when no metric regresses, 1 otherwise, 2 on usage or
//! parse errors.

// The mounted modules expose more API than this harness uses.
#![allow(dead_code)]

// Top-level mounts: `summarize` finds `json` and `hist` via
// `super::` = crate root.
#[path = "../crates/obs/src/hist.rs"]
mod hist;
#[path = "../crates/obs/src/json.rs"]
mod json;
#[path = "../crates/obs/src/summarize.rs"]
mod summarize;

use json::Json;
use summarize::TraceSummary;

/// Flatten a trace summary into the gate's metric set (name, ms).
fn metrics_from_summary(s: &TraceSummary) -> Vec<(String, f64)> {
    let mut out = vec![("wall_ms".to_string(), s.wall_ms)];
    for k in &s.kernels {
        if k.calls > 0.0 {
            out.push((format!("{}.ms_per_call", k.name), k.total_ms / k.calls));
            out.push((format!("{}.self_ms_per_call", k.name), k.self_ms / k.calls));
        }
    }
    // Serving view: the last heartbeat covers the whole session when the
    // CLI emits its final-at-EOF beat.
    if let Some(beat) = s.serve_metrics.last() {
        for key in ["p50_ms", "p99_ms"] {
            if let Some(v) = beat.get(key).and_then(Json::as_f64) {
                out.push((format!("serve.{key}"), v));
            }
        }
    }
    // Serve efficiency: wall ms per answered request over the last serve
    // session — the column the multi-worker scaling curve moves.
    if let Some(run) = s.serve_runs.last() {
        let wall = run.get("wall_ms").and_then(Json::as_f64);
        let requests = run.get("requests").and_then(Json::as_f64);
        if let (Some(wall), Some(requests)) = (wall, requests) {
            if requests > 0.0 {
                out.push(("serve.ms_per_request".to_string(), wall / requests));
            }
        }
    }
    out
}

/// Load metrics from a path that is either a flat baseline JSON object
/// (every value numeric) or a raw trace JSONL file.
fn load_metrics(path: &str) -> Result<Vec<(String, f64)>, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
    // A baseline file is one JSON object; a trace is many lines, which
    // the whole-file parse rejects with "trailing characters".
    if let Ok(Json::Obj(fields)) = json::parse(&src) {
        let mut out = Vec::with_capacity(fields.len());
        for (name, value) in &fields {
            let v = value
                .as_f64()
                .ok_or_else(|| format!("{path}: baseline field {name:?} is not a number"))?;
            out.push((name.clone(), v));
        }
        return Ok(out);
    }
    let summary = TraceSummary::parse(&src).map_err(|e| format!("{path}: {e}"))?;
    Ok(metrics_from_summary(&summary))
}

fn write_baseline(path: &str, metrics: &[(String, f64)]) -> Result<(), String> {
    let body: Vec<String> = metrics
        .iter()
        .map(|(name, v)| format!("  {name:?}: {v:.6}"))
        .collect();
    std::fs::write(path, format!("{{\n{}\n}}\n", body.join(",\n")))
        .map_err(|e| format!("failed to write {path}: {e}"))
}

struct GateConfig {
    tol_default: f64,
    tols: Vec<(String, f64)>,
    floor_ms: f64,
    inject: f64,
}

impl GateConfig {
    fn tolerance(&self, metric: &str) -> f64 {
        self.tols
            .iter()
            .find(|(name, _)| name == metric)
            .map(|(_, t)| *t)
            .unwrap_or(self.tol_default)
    }
}

fn run_gate(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    cfg: &GateConfig,
) -> bool {
    let mut regressed = false;
    println!(
        "{:<28} {:>10} {:>10} {:>8} {:>6}  verdict",
        "metric", "base_ms", "cur_ms", "delta%", "tol%"
    );
    for (name, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            println!("{name:<28} {base:>10.4} {:>10} {:>8} {:>6}  absent (skipped)", "-", "-", "-");
            continue;
        };
        let cur = cur * cfg.inject;
        let tol = cfg.tolerance(name);
        let delta_pct = if *base > 0.0 {
            (cur - base) / base * 100.0
        } else if cur > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        let over_tol = cur > base * (1.0 + tol / 100.0);
        let over_floor = cur - base > cfg.floor_ms;
        let verdict = if over_tol && over_floor {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{name:<28} {base:>10.4} {cur:>10.4} {delta_pct:>+8.1} {tol:>6.0}  {verdict}"
        );
    }
    for (name, _) in current {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<28} new metric, not in baseline (skipped)");
        }
    }
    regressed
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate <current.jsonl> <baseline.json|baseline.jsonl>\n\
         \x20                [--tol-default PCT] [--tol NAME=PCT ...]\n\
         \x20                [--floor-ms F] [--inject FACTOR]\n\
         \x20      bench_gate --write-baseline <out.json> <current.jsonl>"
    );
    std::process::exit(2);
}

fn parse_f64(flag: &str, value: Option<String>) -> f64 {
    match value.and_then(|v| v.parse::<f64>().ok()) {
        Some(v) if v.is_finite() => v,
        _ => {
            eprintln!("bench_gate: {flag} needs a finite number");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    let mut cfg = GateConfig {
        tol_default: 75.0,
        tols: Vec::new(),
        floor_ms: 0.01,
        inject: 1.0,
    };
    let mut baseline_out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tol-default" => cfg.tol_default = parse_f64("--tol-default", args.next()),
            "--floor-ms" => cfg.floor_ms = parse_f64("--floor-ms", args.next()),
            "--inject" => cfg.inject = parse_f64("--inject", args.next()),
            "--tol" => {
                let spec = args.next().unwrap_or_default();
                let Some((name, pct)) = spec.split_once('=') else {
                    eprintln!("bench_gate: --tol needs NAME=PCT, got {spec:?}");
                    std::process::exit(2);
                };
                cfg.tols
                    .push((name.to_string(), parse_f64("--tol", Some(pct.to_string()))));
            }
            "--write-baseline" => baseline_out = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("bench_gate: unknown flag {other}");
                std::process::exit(2);
            }
            other => positional.push(other.to_string()),
        }
    }

    if let Some(out) = baseline_out {
        let [current] = positional.as_slice() else { usage() };
        let metrics = match load_metrics(current) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = write_baseline(&out, &metrics) {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
        println!("bench_gate: wrote {} metrics to {out}", metrics.len());
        return;
    }

    let [current_path, baseline_path] = positional.as_slice() else {
        usage()
    };
    let (current, baseline) = match (load_metrics(current_path), load_metrics(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    };
    if run_gate(&current, &baseline, &cfg) {
        eprintln!("bench_gate: FAIL — at least one metric regressed past tolerance");
        std::process::exit(1);
    }
    println!("bench_gate: pass");
}
