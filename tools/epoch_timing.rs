//! Offline end-to-end epoch timing harness (the training-loop complement of
//! `tools/kernel_timing.rs`).
//!
//! Times the three stages of one RDD training epoch — training-mode forward,
//! loss construction + reliability refresh, backward — plus a fixed-budget
//! end-to-end `RddTrainer` run, on a synthetic preset. Links the workspace
//! rlibs built by `tools/offline/full_stack.sh`, so it needs nothing but
//! `rustc`:
//!
//! ```sh
//! sh tools/offline/full_stack.sh
//! D=target/scratch/deps
//! rustc --edition 2021 -O -C target-cpu=native -L dependency=$D \
//!     tools/epoch_timing.rs \
//!     --extern rdd_core=$D/librdd_core.rlib \
//!     --extern rdd_models=$D/librdd_models.rlib \
//!     --extern rdd_graph=$D/librdd_graph.rlib \
//!     --extern rdd_tensor=$D/librdd_tensor.rlib \
//!     -o target/epoch_timing && ./target/epoch_timing --preset cora-sim
//! ```
//!
//! **Seed comparison:** the same source also compiles against the rlibs of
//! an older checkout with `--cfg seed_build`, which swaps the workspace-
//! pooled tape / `ReliabilityWorkspace` / shared-softmax epoch for the
//! seed-era shape (fresh `Tape::new()` per epoch, allocating
//! `compute_reliability`, one softmax node per consumer). `bench.sh`
//! records both sides into `BENCH_<n>.json`.
//!
//! Output: one JSON object on stdout, mean milliseconds per stage (first
//! epoch excluded as warmup).

use std::rc::Rc;
use std::time::Instant;

use rdd_core::{RddConfig, RddTrainer};
use rdd_graph::{Dataset, SynthConfig};
use rdd_models::{Gcn, GcnConfig, GraphContext, Model, PredictorExt};
use rdd_tensor::{seeded_rng, Tape};

#[cfg(seed_build)]
use rdd_core::compute_reliability;
#[cfg(not(seed_build))]
use rdd_core::ReliabilityWorkspace;
#[cfg(not(seed_build))]
use rdd_tensor::Workspace;

const P: f32 = 0.4;

/// Median ms of (forward, loss+reliability, backward) over `epochs` epochs
/// of the member-1-style training step (teacher present, all three loss
/// terms), first epoch excluded as warmup. Median rather than mean: the
/// harness shares the host with other load, and a single descheduled epoch
/// would otherwise dominate the figure.
fn stage_timings(data: &Dataset, epochs: usize) -> (f64, f64, f64) {
    let ctx = GraphContext::new(data);
    let mut rng = seeded_rng(1);
    let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    let n_params = model.params().len();
    // A second freshly-initialized model stands in for the frozen teacher.
    let teacher = {
        let mut trng = seeded_rng(2);
        let m2 = Gcn::new(&ctx, GcnConfig::citation(), &mut trng);
        m2.predictor(&ctx).proba()
    };
    let teacher_rc = Rc::new(teacher.clone());
    let labels_rc = Rc::new(data.labels.clone());
    let train_idx = Rc::new(data.train_idx.clone());
    let mut is_labeled = vec![false; data.n()];
    for &i in &data.train_idx {
        is_labeled[i] = true;
    }
    let graph = &data.graph;
    let inv_sqrt_deg: Vec<f32> = (0..data.n())
        .map(|i| 1.0 / ((graph.degree(i) + 1) as f32).sqrt())
        .collect();
    let edge_weight = |(a, b): (u32, u32)| inv_sqrt_deg[a as usize] * inv_sqrt_deg[b as usize];

    #[cfg(not(seed_build))]
    let ws = Workspace::new();
    #[cfg(not(seed_build))]
    let mut relia = ReliabilityWorkspace::new();

    let mut d_fwd = Vec::with_capacity(epochs);
    let mut d_loss = Vec::with_capacity(epochs);
    let mut d_bwd = Vec::with_capacity(epochs);
    for e in 0..=epochs {
        let t0 = Instant::now();
        #[cfg(not(seed_build))]
        let mut tape = Tape::with_workspace(&ws);
        #[cfg(seed_build)]
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ctx, true, &mut rng);
        let t1 = Instant::now();

        let logp = tape.log_softmax(logits);
        let ce = tape.nll_masked(logp, Rc::clone(&labels_rc), Rc::clone(&train_idx));
        #[cfg(not(seed_build))]
        let loss = {
            // Current shape: one softmax node feeds the reliability refresh,
            // the L2 target and the regularizer.
            let probs = tape.softmax(logits);
            relia.compute(
                &teacher,
                tape.value(probs),
                &data.labels,
                &is_labeled,
                P,
                graph,
            );
            let l2 = tape.mse_rows(probs, Rc::clone(&teacher_rc), relia.distill());
            relia.weigh_edges(edge_weight);
            let lreg = tape.edge_reg_weighted(probs, relia.edges(), relia.edge_weights());
            tape.weighted_sum(&[(ce, 1.0), (l2, 1.0), (lreg, 1.0)])
        };
        #[cfg(seed_build)]
        let loss = {
            // Seed-era shape: allocating reliability pass plus one softmax
            // node per consumer.
            let student_proba = tape.value(logits).softmax_rows();
            let sets = compute_reliability(
                &teacher,
                &student_proba,
                &data.labels,
                &is_labeled,
                P,
                graph,
            );
            let probs_l2 = tape.softmax(logits);
            let l2 = tape.mse_rows(probs_l2, Rc::clone(&teacher_rc), Rc::new(sets.distill));
            let w: Vec<f32> = sets.edges.iter().map(|&e| edge_weight(e)).collect();
            let probs_reg = tape.softmax(logits);
            let lreg = tape.edge_reg_weighted(probs_reg, Rc::new(sets.edges), Rc::new(w));
            tape.weighted_sum(&[(ce, 1.0), (l2, 1.0), (lreg, 1.0)])
        };
        let t2 = Instant::now();

        let grads = tape.backward(loss, n_params);
        std::hint::black_box(&grads);
        #[cfg(not(seed_build))]
        ws.give_grads(grads);
        #[cfg(seed_build)]
        drop(grads);
        drop(tape);
        let t3 = Instant::now();

        if e > 0 {
            d_fwd.push(t1.duration_since(t0).as_secs_f64());
            d_loss.push(t2.duration_since(t1).as_secs_f64());
            d_bwd.push(t3.duration_since(t2).as_secs_f64());
        }
    }
    (median_ms(d_fwd), median_ms(d_loss), median_ms(d_bwd))
}

fn median_ms(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = v.len() / 2;
    let m = if v.len().is_multiple_of(2) {
        0.5 * (v[mid - 1] + v[mid])
    } else {
        v[mid]
    };
    m * 1000.0
}

/// Mean ms per epoch of a full two-member `RddTrainer` run with a pinned
/// epoch budget (early stopping disabled so seed and current builds do the
/// same number of epochs). Best of two runs, so a load spike during one
/// run does not masquerade as a regression.
fn e2e_epoch_ms(data: &Dataset, epochs: usize) -> f64 {
    let mut cfg = RddConfig::fast();
    cfg.num_base_models = 2;
    cfg.train.epochs = epochs;
    cfg.train.min_epochs = epochs;
    cfg.train.patience = epochs + 1;
    let trainer = RddTrainer::new(cfg);
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let out = trainer.run(data);
        std::hint::black_box(&out.ensemble_pred);
        let total: usize = out.base_models.iter().map(|b| b.report.epochs_run).sum();
        best = best.min(t.elapsed().as_secs_f64() * 1000.0 / total as f64);
    }
    best
}

fn main() {
    let mut preset = "cora-sim".to_string();
    let mut epochs = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--preset" => preset = args.next().expect("--preset needs a value"),
            "--epochs" => {
                epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs needs a number")
            }
            other => panic!("unknown arg {other} (use --preset NAME --epochs N)"),
        }
    }
    let cfg = match preset.as_str() {
        "cora-sim" => SynthConfig::cora_sim(),
        "citeseer-sim" => SynthConfig::citeseer_sim(),
        "pubmed-sim" => SynthConfig::pubmed_sim(),
        "tiny" => SynthConfig::tiny(),
        other => panic!("unknown preset {other}"),
    };
    let data = cfg.generate();

    let (fwd, loss, bwd) = stage_timings(&data, epochs);
    let e2e = e2e_epoch_ms(&data, epochs);
    let build = if cfg!(seed_build) { "seed" } else { "current" };
    // Seed-era rlibs predate the SIMD tier; report it only on current
    // builds (where RDD_SIMD picks the dispatch path being measured).
    #[cfg(not(seed_build))]
    let simd_tier = rdd_tensor::simd::active().name();
    #[cfg(seed_build)]
    let simd_tier = "pre-simd";
    println!("{{");
    println!("  \"build\": \"{build}\",");
    println!("  \"simd_tier\": \"{simd_tier}\",");
    println!("  \"preset\": \"{preset}\",");
    println!("  \"epochs\": {epochs},");
    println!("  \"unit\": \"ms/epoch\",");
    println!("  \"stages\": {{");
    println!("    \"forward\": {fwd:.2},");
    println!("    \"loss_reliability\": {loss:.2},");
    println!("    \"backward\": {bwd:.2},");
    println!("    \"epoch_e2e\": {e2e:.2}");
    println!("  }}");
    println!("}}");
}
