//! Command implementations for the `rdd` CLI.
//!
//! Every command returns [`RddError`] — the crate-spanning error from
//! `rdd-serve` — so run-directory, checkpoint, dataset-IO, config, and
//! serving failures all reach the user through one `Display` path.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rdd_baselines::lp::{predict as lp_predict, LpConfig};
use rdd_baselines::{
    bagging, bans, co_training, mean_teacher, self_training, snapshot_ensemble, BansConfig,
    MeanTeacherConfig, PseudoLabelConfig, SnapshotConfig,
};
use rdd_core::{distill_run, DistillConfig, RddConfig, RddTrainer, RunState};
use rdd_graph::{io, Dataset, DatasetStats, SynthConfig};
use rdd_models::{
    train as train_model, Gat, GatConfig, Gcn, GcnConfig, GraphContext, GraphSage, PredictRequest,
    Predictor, PredictorExt, SageConfig, TrainConfig,
};
use rdd_obs::Json;
use rdd_serve::{
    bench_artifact, bench_artifact_features, bench_artifact_pooled, export_run_as,
    export_run_sharded, quant, write_mlp_artifact, AnyArtifact, Artifact, ArtifactFormat,
    ArtifactMeta, ArtifactWatcher, BreakerConfig, MlpArtifact, PoolConfig, RddError, ServeConfig,
    ServeEngine, ServePool, ServeReply, WatchOutcome,
};
use rdd_tensor::{seeded_rng, Matrix};

use crate::args::Args;

/// Honor `--save <path>` after training a single model.
fn maybe_save(model: &dyn rdd_models::Model, args: &Args) -> Result<(), RddError> {
    if let Some(path) = args.options.get("save") {
        rdd_models::save_checkpoint(model, Path::new(path))?;
        println!("saved checkpoint to {path}");
    }
    Ok(())
}

/// Honor `--pred-out <file>`: the ensemble's hard predictions, one class id
/// per line (the ci fault matrix compares these byte-for-byte across
/// killed-then-resumed and uninterrupted runs).
fn maybe_write_preds(args: &Args, preds: &[usize]) -> Result<(), RddError> {
    if let Some(path) = args.options.get("pred-out") {
        let mut out = String::with_capacity(preds.len() * 2);
        for p in preds {
            out.push_str(&p.to_string());
            out.push('\n');
        }
        std::fs::write(path, out)
            .map_err(|e| RddError::Cli(format!("failed to write {path}: {e}")))?;
        println!("wrote {} predictions to {path}", preds.len());
    }
    Ok(())
}

/// Render matrix rows with shortest-roundtrip `Display` floats, one row per
/// line — the format both `artifact-info --proba-out` and
/// `serve --proba-out` write, so ci can `cmp` served against offline rows
/// byte-for-byte.
fn proba_rows_text(out: &mut String, m: &Matrix) {
    use std::fmt::Write as _;
    for i in 0..m.rows() {
        for (j, v) in m.row(i).iter().enumerate() {
            if j > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
}

fn preset(name: &str) -> Option<SynthConfig> {
    match name {
        "cora" | "cora-sim" => Some(SynthConfig::cora_sim()),
        "citeseer" | "citeseer-sim" => Some(SynthConfig::citeseer_sim()),
        "pubmed" | "pubmed-sim" => Some(SynthConfig::pubmed_sim()),
        "nell" | "nell-sim" => Some(SynthConfig::nell_sim()),
        "tiny" => Some(SynthConfig::tiny()),
        _ => None,
    }
}

/// Load a dataset from a preset name or a saved TSV directory.
fn load(source: &str, seed: Option<u64>) -> Result<Dataset, RddError> {
    if let Some(cfg) = preset(source) {
        return Ok(match seed {
            Some(s) => cfg.generate_with_seed(s),
            None => cfg.generate(),
        });
    }
    let path = Path::new(source);
    if path.is_dir() {
        Ok(io::load_dataset(path)?)
    } else {
        Err(RddError::Cli(format!(
            "{source:?} is neither a preset (cora|citeseer|pubmed|nell|tiny) nor a dataset directory"
        )))
    }
}

/// Per-dataset model configuration (paper §5.1).
fn configs_for(data: &Dataset) -> (GcnConfig, TrainConfig, RddConfig) {
    if data.name.starts_with("nell") {
        (
            GcnConfig::nell(),
            TrainConfig::nell(),
            RddConfig::for_dataset("nell"),
        )
    } else if data.name.starts_with("citeseer") {
        (
            GcnConfig::citation(),
            TrainConfig::citation(),
            RddConfig::for_dataset("citeseer"),
        )
    } else if data.name.starts_with("pubmed") {
        (
            GcnConfig::citation(),
            TrainConfig::citation(),
            RddConfig::for_dataset("pubmed"),
        )
    } else {
        (
            GcnConfig::citation(),
            TrainConfig::citation(),
            RddConfig::for_dataset("cora"),
        )
    }
}

/// `rdd generate <preset> <dir>`
pub fn generate(args: &Args) -> Result<(), RddError> {
    let [_, name, dir] = args.positional.as_slice() else {
        return Err(RddError::Cli("usage: rdd generate <preset> <dir>".into()));
    };
    let cfg = preset(name).ok_or_else(|| RddError::Cli(format!("unknown preset {name}")))?;
    let seed: u64 = args.get_or("seed", cfg.seed)?;
    let data = cfg.generate_with_seed(seed);
    io::save_dataset(&data, Path::new(dir))?;
    println!(
        "wrote {} ({} nodes, {} edges) to {dir}",
        data.name,
        data.n(),
        data.graph.num_edges()
    );
    Ok(())
}

/// `rdd info <preset|dir>`
pub fn info(args: &Args) -> Result<(), RddError> {
    let [_, source] = args.positional.as_slice() else {
        return Err(RddError::Cli("usage: rdd info <preset|dir>".into()));
    };
    let data = load(source, None)?;
    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::of(&data).row());
    let hist = rdd_graph::stats::degree_histogram(&data);
    println!("degree histogram [0, 1, 2-3, 4-7, 8-15, 16+]: {hist:?}");
    Ok(())
}

/// `rdd train <preset|dir> [--method M] [--models N] [--seed N] ...`
pub fn train_cmd_inner(args: &Args, print: bool) -> Result<(String, f32), RddError> {
    let source = args
        .positional
        .get(1)
        .ok_or_else(|| RddError::Cli("usage: rdd train <preset|dir> [--method M]".into()))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let data = load(source, None)?;
    let (gcn_cfg, train_cfg, rdd_cfg) = configs_for(&data);
    let models: usize = args.get_or("models", 5)?;
    let method: String = args.get_or("method", "rdd".to_string())?;

    let acc = match method.as_str() {
        "gcn" => {
            let ctx = GraphContext::new(&data);
            let mut rng = seeded_rng(seed);
            let mut m = Gcn::new(&ctx, gcn_cfg, &mut rng);
            train_model(&mut m, &ctx, &data, &train_cfg, &mut rng, None);
            maybe_save(&m, args)?;
            data.test_accuracy(&m.predictor(&ctx).predict())
        }
        "sage" => {
            let ctx = GraphContext::new(&data);
            let mut rng = seeded_rng(seed);
            let mut m = GraphSage::new(&ctx, SageConfig::default(), &mut rng);
            train_model(&mut m, &ctx, &data, &train_cfg, &mut rng, None);
            maybe_save(&m, args)?;
            data.test_accuracy(&m.predictor(&ctx).predict())
        }
        "gat" => {
            let ctx = GraphContext::new(&data);
            let mut rng = seeded_rng(seed);
            let mut m = Gat::new(&ctx, GatConfig::default(), &mut rng);
            train_model(&mut m, &ctx, &data, &train_cfg, &mut rng, None);
            maybe_save(&m, args)?;
            data.test_accuracy(&m.predictor(&ctx).predict())
        }
        "rdd" => {
            // Every override funnels through the validating builder, so
            // `--p 0` or `--gamma -3` is a typed ConfigError naming the
            // field, not a train-time surprise.
            let rdd_cfg = rdd_cfg
                .to_builder()
                .num_base_models(models)
                .seed(seed)
                .gamma(args.get_or("gamma", rdd_cfg.gamma_initial)?)
                .beta(args.get_or("beta", rdd_cfg.beta)?)
                .p(args.get_or("p", rdd_cfg.p)?)
                .build()?;
            let trainer = RddTrainer::new(rdd_cfg);
            let out = match args.options.get("run-dir") {
                // Crash-safe mode: every member commits to the run
                // directory, and a failed run restarts with `rdd resume`.
                Some(dir) => trainer.run_crash_safe(&data, Path::new(dir), source)?,
                None => trainer.run(&data),
            };
            if print {
                println!("RDD single: {:.1}%", 100.0 * out.single_test_acc);
            }
            maybe_write_preds(args, &out.ensemble_pred)?;
            out.ensemble_test_acc
        }
        "bagging" => bagging(&data, &gcn_cfg, &train_cfg, models, seed).ensemble_test_acc,
        "bans" => {
            bans(
                &data,
                &gcn_cfg,
                &train_cfg,
                models,
                &BansConfig::default(),
                seed,
            )
            .ensemble_test_acc
        }
        "lp" => data.test_accuracy(&lp_predict(&data, &LpConfig::default())),
        "self-training" => {
            let preds = self_training(
                &data,
                &gcn_cfg,
                &train_cfg,
                &PseudoLabelConfig::default(),
                seed,
            );
            data.test_accuracy(&preds)
        }
        "co-training" => {
            let preds = co_training(
                &data,
                &gcn_cfg,
                &train_cfg,
                &PseudoLabelConfig::default(),
                seed,
            );
            data.test_accuracy(&preds)
        }
        "snapshot" => {
            let cfg = SnapshotConfig {
                cycle: 100,
                cycles: models,
            };
            snapshot_ensemble(&data, &gcn_cfg, &train_cfg, &cfg, seed).ensemble_test_acc
        }
        "mean-teacher" => {
            mean_teacher(
                &data,
                &gcn_cfg,
                &train_cfg,
                &MeanTeacherConfig::default(),
                seed,
            )
            .teacher_test_acc
        }
        other => return Err(RddError::Cli(format!("unknown method {other}"))),
    };
    if print {
        println!(
            "{method} on {}: test accuracy {:.1}%",
            data.name,
            100.0 * acc
        );
    }
    Ok((method, acc))
}

pub fn train(args: &Args) -> Result<(), RddError> {
    train_cmd_inner(args, true).map(|_| ())
}

/// `rdd resume <run-dir> [--pred-out <file>]` — finish an interrupted
/// crash-safe run. The dataset source comes from the run's manifest, and
/// the completed run is bitwise-identical to one that was never
/// interrupted.
pub fn resume(args: &Args) -> Result<(), RddError> {
    let [_, dir] = args.positional.as_slice() else {
        return Err(RddError::Cli(
            "usage: rdd resume <run-dir> [--pred-out <file>]".into(),
        ));
    };
    let dir = Path::new(dir);
    let source = rdd_core::manifest_source(dir)?;
    let data = load(&source, None)?;
    let out = RddTrainer::resume(dir, &data)?;
    println!("RDD single: {:.1}%", 100.0 * out.single_test_acc);
    println!(
        "rdd on {}: test accuracy {:.1}%",
        data.name,
        100.0 * out.ensemble_test_acc
    );
    maybe_write_preds(args, &out.ensemble_pred)?;
    Ok(())
}

/// `rdd trace-summary <file.jsonl>` — validate and render an RDD_TRACE file.
pub fn trace_summary(args: &Args) -> Result<(), RddError> {
    let [_, path] = args.positional.as_slice() else {
        return Err(RddError::Cli(
            "usage: rdd trace-summary <file.jsonl>".into(),
        ));
    };
    let src = std::fs::read_to_string(path)
        .map_err(|e| RddError::Cli(format!("failed to read {path}: {e}")))?;
    let summary = rdd_obs::validate(&src).map_err(|e| RddError::Cli(format!("{path}: {e}")))?;
    print!("{}", summary.render());
    Ok(())
}

/// `rdd report <trace.jsonl|run-dir>` — the full run report: member
/// convergence and alpha, reliability-set evolution, kernel self-time
/// attribution, and the histogram-derived serve section. A trace file
/// gives the complete report; a crash-safe run directory (no trace) gives
/// the member/alpha view reconstructed from its manifest.
pub fn report(args: &Args) -> Result<(), RddError> {
    let [_, target] = args.positional.as_slice() else {
        return Err(RddError::Cli(
            "usage: rdd report <trace.jsonl|run-dir>".into(),
        ));
    };
    let path = Path::new(target);
    if path.is_dir() {
        let run = rdd_core::RunState::load(path)?;
        println!("RDD run report: {}", path.display());
        println!(
            "  dataset {} ({} nodes, {} classes)  source {}",
            run.dataset_name(),
            run.dataset_shape().0,
            run.dataset_shape().1,
            run.source()
        );
        let rows: Vec<Vec<String>> = run
            .members()
            .iter()
            .map(|m| {
                vec![
                    m.member.to_string(),
                    if m.kept { "yes" } else { "no" }.to_string(),
                    format!("{:.4}", m.alpha),
                    format!("{:.4}", m.val_acc),
                    format!("{:.4}", m.test_acc),
                    m.report.epochs_run.to_string(),
                    format!("{:.4}", m.report.final_train_loss),
                    m.report.rollbacks.to_string(),
                ]
            })
            .collect();
        println!("\nMembers (alpha total {:.4})", run.alpha_total());
        print!(
            "{}",
            rdd_obs::render_table(
                &[
                    "mem",
                    "kept",
                    "alpha",
                    "val",
                    "test",
                    "epochs",
                    "loss",
                    "rollbacks"
                ],
                &rows,
            )
        );
        println!("\n(run directories hold no trace; run with RDD_TRACE=<file> and `rdd report <file>` for kernel and serve sections)");
        return Ok(());
    }
    let src = std::fs::read_to_string(target)
        .map_err(|e| RddError::Cli(format!("failed to read {target}: {e}")))?;
    let report =
        rdd_obs::render_report(&src).map_err(|e| RddError::Cli(format!("{target}: {e}")))?;
    print!("{report}");
    Ok(())
}

/// `rdd compare <preset|dir>` — every method side by side.
pub fn compare(args: &Args) -> Result<(), RddError> {
    let source = args
        .positional
        .get(1)
        .ok_or_else(|| RddError::Cli("usage: rdd compare <preset|dir>".into()))?
        .clone();
    let methods = [
        "lp",
        "gcn",
        "sage",
        "self-training",
        "co-training",
        "bagging",
        "bans",
        "snapshot",
        "mean-teacher",
        "rdd",
    ];
    println!("{:<16} {:>9}", "method", "test acc");
    println!("{}", "-".repeat(26));
    for m in methods {
        let mut sub = args.clone();
        sub.options.insert("method".into(), m.into());
        sub.positional = vec!["train".into(), source.clone()];
        let (_, acc) = train_cmd_inner(&sub, false)?;
        println!("{m:<16} {:>8.1}%", 100.0 * acc);
    }
    Ok(())
}

/// `rdd export <run-dir> <artifact> [--quantize int8] [--shards K]` —
/// distill a completed crash-safe run directory into one versioned,
/// checksummed artifact file; `--quantize int8` writes the ~0.3×-size v2q
/// format; `--shards K` (K > 1) writes K node-range shard files plus a
/// manifest at `<artifact>`, each shard's rows bitwise identical to the
/// unsharded export's.
pub fn export(args: &Args) -> Result<(), RddError> {
    let [_, run_dir, artifact_path] = args.positional.as_slice() else {
        return Err(RddError::Cli(
            "usage: rdd export <run-dir> <artifact> [--quantize int8] [--shards K]".into(),
        ));
    };
    let format = match args.options.get("quantize").map(String::as_str) {
        None => ArtifactFormat::V1,
        Some("int8") => ArtifactFormat::V2q,
        Some(other) => {
            return Err(RddError::Cli(format!(
                "unknown --quantize scheme {other:?} (supported: int8)"
            )))
        }
    };
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err(RddError::Cli("--shards must be >= 1".into()));
    }
    let (format_name, meta, checksum) = if shards > 1 {
        let sharded =
            export_run_sharded(Path::new(run_dir), Path::new(artifact_path), format, shards)?;
        (
            format!(
                "{} x{} shards",
                sharded.format().name(),
                sharded.num_shards()
            ),
            sharded.meta().clone(),
            sharded.checksum(),
        )
    } else {
        let artifact = export_run_as(Path::new(run_dir), Path::new(artifact_path), format)?;
        (
            artifact.format().name().to_string(),
            artifact.meta().clone(),
            artifact.checksum(),
        )
    };
    println!(
        "exported {run_dir} -> {artifact_path} ({format_name}): {} ({} nodes, {} classes), {} members, checksum {checksum:016x}",
        meta.dataset_name, meta.dataset_n, meta.num_classes, meta.members,
    );
    Ok(())
}

/// Shared by `distill-mlp` and `serve-bench --features-mode`: distill a
/// completed run directory's ensemble into a graph-free MLP student and
/// freeze it as a v3 (mlp) artifact. Returns the distillation outcome and
/// the written artifact's checksum.
fn distill_run_to_artifact(
    args: &Args,
    run_dir: &Path,
    artifact_path: &Path,
    quantize: bool,
    fast: bool,
) -> Result<(rdd_core::DistillOutcome, u64), RddError> {
    let state = RunState::load(run_dir)?;
    let data = load(state.source(), None)?;
    let mut cfg = if fast {
        DistillConfig::fast()
    } else {
        DistillConfig::standard()
    };
    cfg.lambda_kd = args.get_or("lambda", cfg.lambda_kd)?;
    cfg.p = args.get_or("p", cfg.p)?;
    cfg.seed = args.get_or("seed", cfg.seed)?;
    cfg.train.epochs = args.get_or("epochs", cfg.train.epochs)?;
    cfg.validate().map_err(|e| RddError::Cli(e.to_string()))?;
    let out = distill_run(&state, &data, &cfg)?;
    let student_params = rdd_models::Model::params(&out.student).to_vec();
    // The artifact's meta is the *teacher's* provenance — the student's own
    // shape lives in the v3 `mlp` line. This keeps `artifact-info` and
    // `AnyArtifact::meta()` uniform across every format.
    let (n, k) = state.dataset_shape();
    let ensemble = state.load_ensemble()?;
    let meta = ArtifactMeta {
        dataset_name: state.dataset_name().to_string(),
        dataset_n: n,
        num_classes: k,
        source: state.source().to_string(),
        members: ensemble.len(),
        alphas: ensemble.alphas(),
        alpha_total: ensemble.alpha_total(),
    };
    let checksum = write_mlp_artifact(artifact_path, &meta, &student_params, quantize)?;
    Ok((out, checksum))
}

/// `rdd distill-mlp <run-dir> <artifact> [--quantize int8] [--lambda F]
/// [--p F] [--seed N] [--epochs N] [--fast]` — train a graph-free MLP
/// student against the completed run's frozen ensemble (soft targets
/// weighted by the final Algorithm 1 reliability set) and freeze its
/// weight matrices as a v3 (mlp) artifact. The result serves arbitrary
/// unseen feature vectors — `rdd serve` `{"features": [...]}` requests —
/// with no adjacency, bitwise identical to the offline student forward.
pub fn distill_mlp(args: &Args) -> Result<(), RddError> {
    let [_, run_dir, artifact_path] = args.positional.as_slice() else {
        return Err(RddError::Cli(
            "usage: rdd distill-mlp <run-dir> <artifact> [--quantize int8] [--lambda F] [--p F] \
             [--seed N] [--epochs N] [--fast]"
                .into(),
        ));
    };
    let quantize = match args.options.get("quantize").map(String::as_str) {
        None => false,
        Some("int8") => true,
        Some(other) => {
            return Err(RddError::Cli(format!(
                "unknown --quantize scheme {other:?} (supported: int8)"
            )))
        }
    };
    let (out, checksum) = distill_run_to_artifact(
        args,
        Path::new(run_dir),
        Path::new(artifact_path),
        quantize,
        args.has_flag("fast"),
    )?;
    println!("distilled {run_dir} -> {artifact_path} (v3 mlp)");
    println!("  student test acc:   {:.1}%", 100.0 * out.student_test_acc);
    println!("  student val acc:    {:.1}%", 100.0 * out.student_val_acc);
    println!(
        "  ensemble test acc:  {:.1}%",
        100.0 * out.ensemble_test_acc
    );
    println!(
        "  accuracy gap:       {:+.1}% (teacher - student)",
        100.0 * out.accuracy_gap()
    );
    println!(
        "  reliable |V_r|:     {} ({} labeled nodes fed CE)",
        out.num_reliable, out.num_labeled
    );
    println!(
        "  epochs:             {} ({:.1}s wall)",
        out.report.epochs_run, out.wall_time_s
    );
    println!("  checksum:           {checksum:016x}");
    Ok(())
}

/// `rdd artifact-info <artifact> [--proba-out <file>] [--reference <v1>]
/// [--assert-max-ulp <n>]` — validate and describe an artifact;
/// `--proba-out` dumps the offline proba rows (the reference the serve
/// smoke test compares served rows against); `--reference` measures the
/// max ULP drift of this artifact's proba/logits against a reference
/// (typically the v1 export of the same run), and `--assert-max-ulp`
/// turns that measurement into a hard failure bound for ci. For v3 (mlp)
/// artifacts, `--features-in <file>` redirects `--proba-out` through the
/// student's canonical feature forward over the file's rows.
pub fn artifact_info(args: &Args) -> Result<(), RddError> {
    let [_, path] = args.positional.as_slice() else {
        return Err(RddError::Cli(
            "usage: rdd artifact-info <artifact> [--proba-out <file>] [--features-in <file>] \
             [--reference <artifact>] [--assert-max-ulp <n>]"
                .into(),
        ));
    };
    let artifact = AnyArtifact::load(Path::new(path))?;
    let meta = artifact.meta();
    let format = artifact.format();
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let capability = |yes: bool| if yes { "yes" } else { "no" };
    println!("artifact:    {path}");
    println!("format:      {}", format.name());
    println!(
        "serves:      nodes {}, features {}",
        capability(format.supports_nodes()),
        capability(format.supports_features()),
    );
    println!("shards:      {}", artifact.num_shards());
    println!("file size:   {file_bytes} bytes");
    println!(
        "dataset:     {} ({} nodes, {} classes)",
        meta.dataset_name, meta.dataset_n, meta.num_classes
    );
    println!("source:      {}", meta.source);
    println!("members:     {}", meta.members);
    let alphas: Vec<String> = meta.alphas.iter().map(|a| format!("{a:.4}")).collect();
    println!(
        "alphas:      [{}]  (total {:.4})",
        alphas.join(", "),
        meta.alpha_total
    );
    println!("checksum:    {:016x}", artifact.checksum());
    if let Some(mlp) = artifact.as_mlp() {
        println!(
            "student:     {} -> {} in {} layer(s), {}",
            mlp.in_dim(),
            meta.num_classes,
            mlp.num_layers(),
            if mlp.quantized() {
                "int8-quantized"
            } else {
                "f32"
            }
        );
    }
    if let Some(ref_path) = args.options.get("reference") {
        let reference = AnyArtifact::load(Path::new(ref_path))?;
        if reference.meta().dataset_n != meta.dataset_n
            || reference.meta().num_classes != meta.num_classes
        {
            return Err(RddError::Cli(format!(
                "reference {ref_path} shape ({} x {}) does not match {path}",
                reference.meta().dataset_n,
                reference.meta().num_classes
            )));
        }
        let ref_bytes = std::fs::metadata(ref_path).map(|m| m.len()).unwrap_or(0);
        // v3 (mlp) artifacts hold student weights, not ensemble sums —
        // there is nothing to measure ULP drift against.
        let sums = artifact
            .proba_sum()
            .zip(artifact.logits_sum())
            .ok_or_else(|| {
                RddError::Cli(format!(
                    "{path} is a {} artifact with no ensemble sums; --reference compares \
                     v1/v2q exports",
                    format.name()
                ))
            })?;
        let ref_sums = reference
            .proba_sum()
            .zip(reference.logits_sum())
            .ok_or_else(|| {
                RddError::Cli(format!(
                    "reference {ref_path} is a {} artifact with no ensemble sums",
                    reference.format().name()
                ))
            })?;
        let drift = quant::max_ulp_diff(&sums.0, &ref_sums.0)
            .max(quant::max_ulp_diff(&sums.1, &ref_sums.1));
        println!("reference:   {ref_path} ({})", reference.format().name());
        if ref_bytes > 0 {
            println!(
                "size ratio:  {:.3} ({file_bytes} / {ref_bytes} bytes)",
                file_bytes as f64 / ref_bytes as f64
            );
        }
        println!("max ulp:     {drift}");
        if let Some(bound) = args.options.get("assert-max-ulp") {
            let bound: u64 = bound
                .parse()
                .map_err(|_| RddError::Cli(format!("bad --assert-max-ulp value {bound:?}")))?;
            if drift > bound {
                return Err(RddError::Cli(format!(
                    "max ULP drift {drift} exceeds the asserted bound {bound}"
                )));
            }
            println!("ulp bound:   {bound} ok");
        }
    } else if args.options.contains_key("assert-max-ulp") {
        return Err(RddError::Cli(
            "--assert-max-ulp requires --reference".into(),
        ));
    }
    if let Some(out_path) = args.options.get("proba-out") {
        let mut text = String::new();
        // `--features-in <file>` runs the student's canonical forward over
        // whitespace-separated feature rows instead of dumping per-node
        // rows — the offline reference ci's feature-serving gate `cmp`s
        // served replies against.
        let proba = match args.options.get("features-in") {
            Some(rows_path) => {
                let mlp = artifact.as_mlp().ok_or_else(|| {
                    RddError::Cli(format!(
                        "--features-in requires a v3 (mlp) artifact; {path} is {}",
                        format.name()
                    ))
                })?;
                let rows = read_feature_rows(rows_path)?;
                mlp.predict_features(&rows)
                    .map_err(|e| RddError::Cli(e.to_string()))?
                    .proba
            }
            None => artifact
                .proba_all()
                .map_err(|e| RddError::Cli(e.to_string()))?,
        };
        proba_rows_text(&mut text, &proba);
        std::fs::write(out_path, text)
            .map_err(|e| RddError::Cli(format!("failed to write {out_path}: {e}")))?;
        println!("wrote {} proba rows to {out_path}", proba.rows());
    } else if args.options.contains_key("features-in") {
        return Err(RddError::Cli("--features-in requires --proba-out".into()));
    }
    Ok(())
}

/// Read whitespace-separated feature rows (one row per non-empty line)
/// into a dense matrix for `artifact-info --features-in`.
fn read_feature_rows(path: &str) -> Result<Matrix, RddError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RddError::Cli(format!("failed to read {path}: {e}")))?;
    let mut data = Vec::new();
    let mut cols = 0usize;
    let mut rows = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let start = data.len();
        for tok in line.split_whitespace() {
            let v: f32 = tok.parse().map_err(|_| {
                RddError::Cli(format!("{path}:{}: bad feature value {tok:?}", lineno + 1))
            })?;
            data.push(v);
        }
        let width = data.len() - start;
        if rows == 0 {
            cols = width;
        } else if width != cols {
            return Err(RddError::Cli(format!(
                "{path}:{}: row has {width} values, expected {cols}",
                lineno + 1
            )));
        }
        rows += 1;
    }
    if rows == 0 || cols == 0 {
        return Err(RddError::Cli(format!("{path} holds no feature rows")));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// A parsed serve-loop request: `(id, request, deadline_ms)`.
type ParsedRequest = (u64, PredictRequest, Option<f64>);

/// Parse one feature row: a flat array of finite numbers.
fn parse_feature_row(a: &[Json], out: &mut Vec<f32>) -> Result<usize, String> {
    let start = out.len();
    for v in a {
        let x = v.as_f64().ok_or("'features' holds a non-number")?;
        if !x.is_finite() {
            return Err(format!("feature values must be finite, got {x}"));
        }
        out.push(x as f32);
    }
    Ok(out.len() - start)
}

/// Parse one serve-loop request line:
/// `{"id":N,"nodes":[...],"deadline_ms":F}` or
/// `{"id":N,"features":[...],"deadline_ms":F}`. Every key is optional — a
/// missing `id` gets `fallback_id`, missing `nodes`/`features` means the
/// whole graph, and `deadline_ms` (milliseconds from arrival;
/// `--deadline-ms` sets the default) marks the request sheddable as
/// `Expired` if it is still queued when the deadline passes. `features` is
/// either one flat row (`[0.1, 0.2, ...]`) or a batch of rows
/// (`[[...], [...]]`), and is mutually exclusive with `nodes`: a node
/// request names rows of the frozen training graph, a feature request
/// carries the rows themselves.
fn parse_request(line: &str, fallback_id: u64) -> Result<ParsedRequest, String> {
    let json = rdd_obs::parse(line)?;
    let id = match json.get("id") {
        None => fallback_id,
        Some(v) => {
            let x = v.as_f64().ok_or("'id' must be a number")?;
            if x < 0.0 || x.fract() != 0.0 {
                return Err(format!("'id' must be a non-negative integer, got {x}"));
            }
            x as u64
        }
    };
    if !matches!(json.get("nodes"), None | Some(Json::Null))
        && !matches!(json.get("features"), None | Some(Json::Null))
    {
        return Err(
            "'nodes' and 'features' are mutually exclusive: send node ids of the training \
             graph, or raw feature rows, not both"
                .into(),
        );
    }
    let req = match json.get("features") {
        None | Some(Json::Null) => match json.get("nodes") {
            None | Some(Json::Null) => PredictRequest::all(),
            Some(Json::Arr(a)) => {
                let mut ids = Vec::with_capacity(a.len());
                for v in a {
                    let x = v.as_f64().ok_or("'nodes' holds a non-number")?;
                    if x < 0.0 || x.fract() != 0.0 {
                        return Err(format!("node ids must be non-negative integers, got {x}"));
                    }
                    ids.push(x as usize);
                }
                PredictRequest::nodes(ids)
            }
            Some(_) => return Err("'nodes' must be an array of node ids".into()),
        },
        Some(Json::Arr(a)) if !a.is_empty() => {
            let mut data = Vec::new();
            let cols = match &a[0] {
                // `[[...], [...]]`: a batch of rows, all the same width.
                Json::Arr(_) => {
                    let mut cols = 0;
                    for (i, row) in a.iter().enumerate() {
                        let Json::Arr(row) = row else {
                            return Err("'features' mixes rows and scalars".into());
                        };
                        let width = parse_feature_row(row, &mut data)?;
                        if i == 0 {
                            cols = width;
                        } else if width != cols {
                            return Err(format!(
                                "'features' rows disagree on width: row 0 has {cols}, row {i} \
                                 has {width}"
                            ));
                        }
                    }
                    cols
                }
                // `[...]`: one flat row.
                _ => parse_feature_row(a, &mut data)?,
            };
            if cols == 0 {
                return Err("'features' rows must hold at least one value".into());
            }
            PredictRequest::features(Matrix::from_vec(data.len() / cols, cols, data))
        }
        Some(_) => return Err("'features' must be a non-empty array of numbers or rows".into()),
    };
    let deadline_ms = match json.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let x = v.as_f64().ok_or("'deadline_ms' must be a number")?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "'deadline_ms' must be a non-negative number, got {x}"
                ));
            }
            Some(x)
        }
    };
    Ok((id, req, deadline_ms))
}

/// Render one reply line for the serve loop's stdout.
fn reply_json(reply: &ServeReply) -> Json {
    match &reply.result {
        Ok(p) => Json::Obj(vec![
            ("id".into(), Json::from(reply.id)),
            // "node" replies index the training graph; "features" replies
            // index the request's own rows.
            ("kind".into(), Json::from(p.kind.name())),
            ("nodes".into(), Json::from(p.nodes.clone())),
            ("pred".into(), Json::from(p.pred.clone())),
            (
                "proba".into(),
                Json::Arr(
                    (0..p.proba.rows())
                        .map(|i| Json::from(p.proba.row(i).to_vec()))
                        .collect(),
                ),
            ),
            ("latency_ms".into(), Json::from(reply.latency_ms)),
            ("cache_hits".into(), Json::from(reply.cache_hits)),
            ("generation".into(), Json::from(reply.generation)),
        ]),
        Err(e) => Json::Obj(vec![
            ("id".into(), Json::from(reply.id)),
            ("error".into(), Json::from(e.to_string())),
            ("generation".into(), Json::from(reply.generation)),
        ]),
    }
}

/// Render one error line for requests that never reached the engine
/// (parse failures, queue-full sheds).
fn error_line(id: Option<u64>, msg: String) -> String {
    let mut line = String::new();
    Json::Obj(vec![
        ("id".into(), id.map(Json::from).unwrap_or(Json::Null)),
        ("error".into(), Json::from(msg)),
    ])
    .write(&mut line);
    line.push('\n');
    line
}

/// Side-output accumulator for `rdd serve`. `--proba-out` keys rows by
/// request id so multi-worker reply reordering cannot change the file ci
/// `cmp`s against offline rows; `--served-out` records one
/// `<generation> <id> <node> <proba...>` line per served row — the join key
/// the hot-swap ci gate uses to match every row to the artifact generation
/// that answered it.
/// Served proba rows keyed `(request id, arrival sequence)` so replies can
/// be re-emitted in a deterministic order, plus the next sequence number.
type OrderedProbaRows = (std::collections::BTreeMap<(u64, u64), String>, u64);

struct ReplySink {
    proba: Option<OrderedProbaRows>,
    served: Option<String>,
}

impl ReplySink {
    fn new(args: &Args) -> Self {
        Self {
            proba: args
                .options
                .get("proba-out")
                .map(|_| (std::collections::BTreeMap::new(), 0)),
            served: args.options.get("served-out").map(|_| String::new()),
        }
    }

    fn record(&mut self, reply: &ServeReply) {
        let Ok(p) = &reply.result else { return };
        if let Some((rows, seq)) = self.proba.as_mut() {
            let mut text = String::new();
            proba_rows_text(&mut text, &p.proba);
            rows.insert((reply.id, *seq), text);
            *seq += 1;
        }
        if let Some(text) = self.served.as_mut() {
            use std::fmt::Write as _;
            for (i, node) in p.nodes.iter().enumerate() {
                let _ = write!(text, "{} {} {}", reply.generation, reply.id, node);
                for v in p.proba.row(i) {
                    let _ = write!(text, " {v}");
                }
                text.push('\n');
            }
        }
    }

    fn finish(self, args: &Args) -> Result<(), RddError> {
        if let (Some(path), Some((rows, _))) = (args.options.get("proba-out"), self.proba) {
            let mut text = String::new();
            for row_text in rows.values() {
                text.push_str(row_text);
            }
            std::fs::write(path, text)
                .map_err(|e| RddError::Cli(format!("failed to write {path}: {e}")))?;
            eprintln!("wrote served proba rows to {path}");
        }
        if let (Some(path), Some(text)) = (args.options.get("served-out"), self.served) {
            std::fs::write(path, text)
                .map_err(|e| RddError::Cli(format!("failed to write {path}: {e}")))?;
            eprintln!("wrote served generation rows to {path}");
        }
        Ok(())
    }
}

/// Write one reply line and record its side outputs.
fn write_reply(
    out: &mut impl std::io::Write,
    reply: &ServeReply,
    sink: &mut ReplySink,
) -> Result<(), RddError> {
    let mut line = String::new();
    reply_json(reply).write(&mut line);
    line.push('\n');
    out.write_all(line.as_bytes())
        .map_err(|e| RddError::Cli(format!("stdout write failed: {e}")))?;
    sink.record(reply);
    Ok(())
}

/// `rdd serve --artifact <path>` — line-delimited JSON request loop over
/// stdin/stdout. One request per line
/// (`{"id":N,"nodes":[...],"deadline_ms":F}`; `nodes` absent = the whole
/// graph); one reply object per request. Requests are micro-batched (flush
/// on `--batch` size or `--delay-ms` deadline) and answered through the
/// per-node LRU cache. `--workers N` serves through a [`ServePool`] of N
/// threads (replies stream back in completion order; each carries its
/// request `id` and the artifact `generation` that answered it), and
/// `--watch-artifact` polls the artifact path, hot-swapping modified
/// artifacts in as new generations with zero dropped requests. The
/// artifact may be a single file or an `export --shards` manifest.
pub fn serve(args: &Args) -> Result<(), RddError> {
    use std::io::BufRead;
    use std::sync::mpsc;

    let artifact_path = args.options.get("artifact").ok_or_else(|| {
        RddError::Cli(
            "usage: rdd serve --artifact <path> [--workers N] [--batch N] [--delay-ms N] \
             [--cache N] [--queue N] [--deadline-ms MS] [--watch-artifact] \
             [--breaker-p99-ms MS] [--metrics-every SECS] [--proba-out <file>] \
             [--served-out <file>]"
                .into(),
        )
    })?;
    let artifact = AnyArtifact::load(Path::new(artifact_path))?;
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        batch_size: args.get_or("batch", defaults.batch_size)?,
        max_delay_ms: args.get_or("delay-ms", defaults.max_delay_ms)?,
        cache_capacity: args.get_or("cache", defaults.cache_capacity)?,
        queue_capacity: args.get_or("queue", defaults.queue_capacity)?,
    };
    let workers: usize = args.get_or("workers", 1)?;
    let watch = args.has_flag("watch-artifact");
    // `--breaker-p99-ms` arms the overload circuit breaker (and forces
    // the pooled path, which owns the breaker).
    let breaker_p99_ms: Option<f64> = match args.options.get("breaker-p99-ms") {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(ms) if ms.is_finite() && ms > 0.0 => Some(ms),
            _ => {
                return Err(RddError::Cli(format!(
                    "--breaker-p99-ms needs a positive number of milliseconds, got {v:?}"
                )))
            }
        },
    };
    let default_deadline_ms: Option<f64> = match args.options.get("deadline-ms") {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(ms) if ms.is_finite() && ms >= 0.0 => Some(ms),
            _ => {
                return Err(RddError::Cli(format!(
                    "--deadline-ms needs a non-negative number of milliseconds, got {v:?}"
                )))
            }
        },
    };
    let meta = artifact.meta();
    eprintln!(
        "serving {} ({} nodes, {} classes, {} members, {} shard(s), checksum {:016x}); \
         batch {} delay {}ms cache {} workers {}{}",
        meta.dataset_name,
        meta.dataset_n,
        meta.num_classes,
        meta.members,
        artifact.num_shards(),
        artifact.checksum(),
        cfg.batch_size,
        cfg.max_delay_ms,
        cfg.cache_capacity,
        workers,
        match (watch, breaker_p99_ms) {
            (true, Some(_)) => ", watching artifact, breaker armed",
            (true, None) => ", watching artifact",
            (false, Some(_)) => ", breaker armed",
            (false, None) => "",
        },
    );
    // Heartbeat cadence: `--metrics-every SECS` wins, `RDD_METRICS_EVERY`
    // is the fallback, 0/unset disables the heartbeat.
    let metrics_every: u64 = if args.options.contains_key("metrics-every") {
        args.get_or("metrics-every", 0u64)?
    } else {
        rdd_obs::env::parse_with("RDD_METRICS_EVERY", "a whole number of seconds", |v| {
            v.parse::<u64>().ok()
        })
        .unwrap_or(0)
    };

    // Stdin is read on its own thread so the serve loop can honor batch
    // deadlines, heartbeats, and watch polls while the pipe is quiet.
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    let result = if workers <= 1 && !watch && breaker_p99_ms.is_none() {
        serve_single(args, artifact, cfg, metrics_every, default_deadline_ms, rx)
    } else {
        serve_pooled(
            args,
            artifact,
            artifact_path,
            cfg,
            workers.max(1),
            metrics_every,
            default_deadline_ms,
            breaker_p99_ms,
            rx,
        )
    };
    // The loops only return Ok at stdin EOF, which is also what ends the
    // reader thread; on error, skip the join so a failed serve can't hang.
    if result.is_ok() {
        let _ = reader.join();
    }
    result
}

/// The in-line single-threaded [`ServeEngine`] serve loop (`--workers 1`,
/// no `--watch-artifact`).
fn serve_single(
    args: &Args,
    artifact: AnyArtifact,
    cfg: ServeConfig,
    metrics_every: u64,
    default_deadline_ms: Option<f64>,
    rx: std::sync::mpsc::Receiver<String>,
) -> Result<(), RddError> {
    use std::io::Write as _;
    use std::sync::mpsc;

    let mut engine = ServeEngine::new(&artifact, cfg, artifact.checksum())?;
    if metrics_every > 0 {
        // The window must cover at least one heartbeat interval.
        engine
            .set_metrics_window((metrics_every as usize).max(rdd_serve::DEFAULT_METRICS_WINDOW_S));
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut sink = ReplySink::new(args);
    let started = Instant::now();
    let mut next_id: u64 = 0;
    let mut next_beat =
        (metrics_every > 0).then(|| Instant::now() + Duration::from_secs(metrics_every));
    loop {
        // Emit a due heartbeat: one `serve_metrics` event plus a one-line
        // status on stderr.
        if let Some(beat) = next_beat {
            if Instant::now() >= beat {
                let m = engine.metrics();
                rdd_obs::emit_serve_metrics(&m);
                eprintln!("{}", m.status_line());
                next_beat = Some(Instant::now() + Duration::from_secs(metrics_every));
            }
        }
        // Wait for the next request, but never past the oldest queued
        // request's flush deadline or the next heartbeat.
        let wake = match (engine.deadline(), next_beat) {
            (Some(d), Some(b)) => Some(d.min(b)),
            (d, b) => d.or(b),
        };
        let line = match wake {
            None => match rx.recv() {
                Ok(line) => line,
                Err(_) => break, // EOF
            },
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    // Due already: flush if the *batch* deadline passed
                    // (the heartbeat fires at the top of the loop).
                    if engine.deadline().is_some_and(|d| d <= now) {
                        for reply in engine.flush() {
                            write_reply(&mut out, &reply, &mut sink)?;
                        }
                        out.flush()
                            .map_err(|e| RddError::Cli(format!("stdout flush failed: {e}")))?;
                    }
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(line) => line,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if engine.deadline().is_some_and(|d| d <= Instant::now()) {
                            for reply in engine.flush() {
                                write_reply(&mut out, &reply, &mut sink)?;
                            }
                            out.flush()
                                .map_err(|e| RddError::Cli(format!("stdout flush failed: {e}")))?;
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
                }
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line, next_id) {
            Err(msg) => {
                out.write_all(error_line(None, format!("bad request: {msg}")).as_bytes())
                    .map_err(|e| RddError::Cli(format!("stdout write failed: {e}")))?;
                out.flush()
                    .map_err(|e| RddError::Cli(format!("stdout flush failed: {e}")))?;
            }
            Ok((id, req, deadline_ms)) => {
                next_id = next_id.max(id) + 1;
                let deadline = deadline_ms
                    .or(default_deadline_ms)
                    .map(|ms| Instant::now() + Duration::from_secs_f64(ms / 1e3));
                match engine.submit_with_deadline(id, req, deadline) {
                    Ok(None) => {}
                    Ok(Some(replies)) => {
                        for reply in &replies {
                            write_reply(&mut out, reply, &mut sink)?;
                        }
                        out.flush()
                            .map_err(|e| RddError::Cli(format!("stdout flush failed: {e}")))?;
                    }
                    Err(e) => {
                        // Queue full: shed this request, keep serving.
                        out.write_all(error_line(Some(id), e.to_string()).as_bytes())
                            .map_err(|e| RddError::Cli(format!("stdout write failed: {e}")))?;
                        out.flush()
                            .map_err(|e| RddError::Cli(format!("stdout flush failed: {e}")))?;
                    }
                }
            }
        }
    }
    // EOF: answer whatever is still queued, then summarize.
    for reply in engine.flush() {
        write_reply(&mut out, &reply, &mut sink)?;
    }
    out.flush()
        .map_err(|e| RddError::Cli(format!("stdout flush failed: {e}")))?;

    if metrics_every > 0 {
        // Final heartbeat so even a sub-interval session records one.
        let m = engine.metrics();
        rdd_obs::emit_serve_metrics(&m);
        eprintln!("{}", m.status_line());
    }
    let stats = engine.stats();
    rdd_obs::emit_serve_run(
        stats.requests,
        stats.batches,
        stats.cache_hits,
        stats.cache_misses,
        stats.shed,
        stats.expired,
        stats.failed,
        stats.rejected,
        started.elapsed().as_secs_f64() * 1e3,
    );
    eprintln!(
        "served {} requests in {} batches (cache hit rate {:.1}%, shed {}, expired {})",
        stats.requests,
        stats.batches,
        100.0 * stats.hit_rate(),
        stats.shed,
        stats.expired
    );
    sink.finish(args)
}

/// The multi-worker serve loop: requests fan out to a [`ServePool`] of
/// supervised workers, a writer thread streams replies back as workers
/// complete batches, `--watch-artifact` polls the artifact path through an
/// [`ArtifactWatcher`] (full load + validation before the swap, rollback
/// with exponential backoff on failure), and `--breaker-p99-ms` arms the
/// overload circuit breaker at admission.
#[allow(clippy::too_many_arguments)]
fn serve_pooled(
    args: &Args,
    artifact: AnyArtifact,
    artifact_path: &str,
    cfg: ServeConfig,
    workers: usize,
    metrics_every: u64,
    default_deadline_ms: Option<f64>,
    breaker_p99_ms: Option<f64>,
    rx: std::sync::mpsc::Receiver<String>,
) -> Result<(), RddError> {
    use std::io::Write as _;
    use std::sync::mpsc;

    let watch = args.has_flag("watch-artifact");
    let current_checksum = artifact.checksum();
    let mut pool_cfg = PoolConfig {
        serve: cfg,
        workers,
        breaker: breaker_p99_ms.map(BreakerConfig::with_p99_ms),
        ..PoolConfig::default()
    };
    if metrics_every > 0 {
        pool_cfg.metrics_window_s =
            (metrics_every as usize).max(rdd_serve::DEFAULT_METRICS_WINDOW_S);
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let pool = ServePool::new(artifact, pool_cfg, current_checksum, reply_tx)
        .map_err(|e| RddError::Cli(e.to_string()))?;

    // Replies stream on their own thread: workers finish batches in any
    // order, and stdout writes must never block admission. Each line is
    // written under one stdout lock so it cannot interleave with the main
    // loop's error lines.
    let mut sink = ReplySink::new(args);
    let writer = std::thread::spawn(move || -> Result<ReplySink, String> {
        let stdout = std::io::stdout();
        for reply in reply_rx {
            let mut line = String::new();
            reply_json(&reply).write(&mut line);
            line.push('\n');
            let mut out = stdout.lock();
            out.write_all(line.as_bytes())
                .map_err(|e| format!("stdout write failed: {e}"))?;
            out.flush()
                .map_err(|e| format!("stdout flush failed: {e}"))?;
            drop(out);
            sink.record(&reply);
        }
        Ok(sink)
    });
    let write_error = |line: String| -> Result<(), RddError> {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        out.write_all(line.as_bytes())
            .map_err(|e| RddError::Cli(format!("stdout write failed: {e}")))?;
        out.flush()
            .map_err(|e| RddError::Cli(format!("stdout flush failed: {e}")))
    };

    let started = Instant::now();
    let mut next_id: u64 = 0;
    let mut next_beat =
        (metrics_every > 0).then(|| Instant::now() + Duration::from_secs(metrics_every));
    // The watcher's first poll is always due and always re-reads the file:
    // the artifact may have been replaced between our load and now, and
    // its checksum tracking already suppresses no-op swaps.
    let mut watcher = watch.then(|| ArtifactWatcher::new(artifact_path, current_checksum));
    loop {
        if let Some(beat) = next_beat {
            if Instant::now() >= beat {
                let m = pool.metrics();
                rdd_obs::emit_serve_metrics(&m);
                eprintln!("{}", m.status_line());
                next_beat = Some(Instant::now() + Duration::from_secs(metrics_every));
            }
        }
        if let Some(w) = watcher.as_mut() {
            match w.poll(Instant::now()) {
                WatchOutcome::Pending | WatchOutcome::Unchanged => {}
                WatchOutcome::Loaded(next) => {
                    // Fully loaded and validated; the pool still gets the
                    // final say (shape checks) before it goes live.
                    let checksum = next.checksum();
                    match pool.try_swap(*next, checksum) {
                        Ok(generation) => {
                            w.installed(checksum);
                            rdd_obs::emit_swap(generation, checksum, artifact_path);
                            eprintln!(
                                "swapped {artifact_path} in as generation {generation} \
                                 (checksum {checksum:016x})"
                            );
                        }
                        Err(e) => {
                            rdd_obs::emit_swap_failed(
                                artifact_path,
                                &e.to_string(),
                                w.failures(),
                                ArtifactWatcher::DEFAULT_POLL.as_millis() as u64,
                            );
                            eprintln!(
                                "watch: replacement rejected, keeping generation {} live ({e})",
                                pool.generation()
                            );
                        }
                    }
                }
                WatchOutcome::Failed {
                    error,
                    failures,
                    backoff_ms,
                } => {
                    // Broken or mid-copy replacement: the current
                    // generation stays live, the poll backs off.
                    rdd_obs::emit_swap_failed(
                        artifact_path,
                        &error.to_string(),
                        failures,
                        backoff_ms,
                    );
                    eprintln!(
                        "watch: cannot load {artifact_path} ({error}); keeping current \
                         generation, retrying in {backoff_ms} ms (failure {failures})"
                    );
                }
            }
        }
        // Workers flush their own micro-batch deadlines; the admission
        // loop only wakes for heartbeats and watch polls.
        let next_poll = watcher.as_ref().and_then(|w| w.next_poll());
        let wake = match (next_beat, next_poll) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let line = match wake {
            None => match rx.recv() {
                Ok(line) => line,
                Err(_) => break, // EOF
            },
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(line) => line,
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
                }
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line, next_id) {
            Err(msg) => write_error(error_line(None, format!("bad request: {msg}")))?,
            Ok((id, req, deadline_ms)) => {
                next_id = next_id.max(id) + 1;
                let deadline = deadline_ms
                    .or(default_deadline_ms)
                    .map(|ms| Instant::now() + Duration::from_secs_f64(ms / 1e3));
                if let Err(e) = pool.submit_with_deadline(id, req, deadline) {
                    // Queue full: shed this request, keep serving.
                    write_error(error_line(Some(id), e.to_string()))?;
                }
            }
        }
    }
    // EOF: let the workers drain the queue, take the final heartbeat while
    // the pool is still alive, then shut down and collect the report.
    while pool.pending_len() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    if metrics_every > 0 {
        let m = pool.metrics();
        rdd_obs::emit_serve_metrics(&m);
        eprintln!("{}", m.status_line());
    }
    let report = pool.shutdown();
    let sink = match writer.join() {
        Ok(Ok(sink)) => sink,
        Ok(Err(e)) => return Err(RddError::Cli(e)),
        Err(_) => return Err(RddError::Cli("serve reply writer panicked".into())),
    };
    let stats = report.stats;
    rdd_obs::emit_serve_run(
        stats.requests,
        stats.batches,
        stats.cache_hits,
        stats.cache_misses,
        stats.shed,
        stats.expired,
        stats.failed,
        stats.rejected,
        started.elapsed().as_secs_f64() * 1e3,
    );
    eprintln!(
        "served {} requests in {} batches across {} workers (cache hit rate {:.1}%, \
         shed {}, expired {}, failed {}, rejected {}, breaker trips {})",
        stats.requests,
        stats.batches,
        report.workers.len(),
        100.0 * stats.hit_rate(),
        stats.shed,
        stats.expired,
        stats.failed,
        stats.rejected,
        report.breaker_trips
    );
    for w in &report.workers {
        eprintln!(
            "  worker {}: {} requests in {} batches, busy {:.1}ms ({:.1}% utilization), \
             {} panic(s), {} respawn(s)",
            w.worker,
            w.requests,
            w.batches,
            w.busy_ms,
            100.0 * w.utilization,
            w.panics,
            w.respawns
        );
    }
    sink.finish(args)
}

/// Render the serve-bench result table on stdout.
fn print_bench_results(results: &[rdd_serve::BenchResult]) {
    println!(
        "{:<20} {:>6} {:>7} {:>9} {:>10} {:>9} {:>9} {:>9} {:>6}",
        "mode", "batch", "workers", "requests", "rps", "p50 ms", "p99 ms", "hit rate", "util"
    );
    println!("{}", "-".repeat(93));
    for r in results {
        println!(
            "{:<20} {:>6} {:>7} {:>9} {:>10.0} {:>9.4} {:>9.4} {:>8.1}% {:>5.0}%",
            r.mode,
            r.batch_size,
            r.workers,
            r.requests,
            r.rps,
            r.p50_ms,
            r.p99_ms,
            100.0 * r.hit_rate,
            100.0 * r.utilization
        );
    }
}

/// Honor `--out FILE` for serve-bench: one JSON object with the run's
/// shape and every mode's row.
fn write_bench_report(
    args: &Args,
    meta: &ArtifactMeta,
    requests: usize,
    workers: usize,
    features_mode: bool,
    results: &[rdd_serve::BenchResult],
) -> Result<(), RddError> {
    let Some(out_path) = args.options.get("out") else {
        return Ok(());
    };
    let mut text = String::new();
    Json::Obj(vec![
        ("bench".into(), Json::from("serve-throughput")),
        ("features_mode".into(), Json::from(features_mode)),
        ("dataset".into(), Json::from(meta.dataset_name.as_str())),
        ("nodes".into(), Json::from(meta.dataset_n)),
        ("classes".into(), Json::from(meta.num_classes)),
        ("members".into(), Json::from(meta.members)),
        ("requests_per_mode".into(), Json::from(requests)),
        ("workers".into(), Json::from(workers)),
        (
            "threads".into(),
            Json::from(rdd_tensor::par::num_threads() as u64),
        ),
        (
            "modes".into(),
            Json::Arr(results.iter().map(|r| r.to_json()).collect()),
        ),
    ])
    .write(&mut text);
    text.push('\n');
    std::fs::write(out_path, text)
        .map_err(|e| RddError::Cli(format!("failed to write {out_path}: {e}")))?;
    println!("wrote bench report to {out_path}");
    Ok(())
}

/// The `serve-bench --features-mode` path: obtain a v3 (mlp) artifact —
/// reuse `--artifact` when it already holds one, otherwise train a fast
/// teacher and distill it — then drive the closed-loop feature-vector
/// bench (cache disabled: feature rows are uncacheable by design).
fn serve_bench_features(args: &Args, source: &str, requests: usize) -> Result<(), RddError> {
    let models: usize = args.get_or("models", 3)?;
    let reuse = args
        .options
        .get("artifact")
        .map(PathBuf::from)
        .filter(|p| p.exists());
    let mlp = match reuse {
        Some(path) => {
            eprintln!("reusing artifact {}", path.display());
            MlpArtifact::load(&path)?
        }
        None => {
            let data = load(source, None)?;
            let cfg = RddConfig::fast()
                .to_builder()
                .num_base_models(models)
                .build()?;
            let run_dir =
                std::env::temp_dir().join(format!("rdd_serve_bench_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&run_dir);
            eprintln!("training {} fast teacher(s) on {}...", models, data.name);
            RddTrainer::new(cfg).run_crash_safe(&data, &run_dir, source)?;
            let keep = args.options.get("artifact").map(PathBuf::from);
            let artifact_path = keep.clone().unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("rdd_serve_bench_{}.artifact", std::process::id()))
            });
            eprintln!("distilling the ensemble into an MLP student...");
            let (out, _) = distill_run_to_artifact(args, &run_dir, &artifact_path, false, true)?;
            eprintln!(
                "student test acc {:.1}% (teacher {:.1}%, gap {:+.1}%)",
                100.0 * out.student_test_acc,
                100.0 * out.ensemble_test_acc,
                100.0 * out.accuracy_gap()
            );
            let mlp = MlpArtifact::load(&artifact_path)?;
            let _ = std::fs::remove_dir_all(&run_dir);
            if keep.is_none() {
                let _ = std::fs::remove_file(&artifact_path);
            }
            mlp
        }
    };
    let results = bench_artifact_features(&mlp, requests)?;
    print_bench_results(&results);
    write_bench_report(args, mlp.meta(), requests, 1, true, &results)
}

/// `rdd serve-bench <preset|dir> [--models N] [--requests N] [--out FILE]`
/// — train a fast teacher (unless `--artifact` points at an existing
/// file), export it, and run the closed-loop throughput bench across
/// {unbatched, batched} × {cache cold, warm}. With `--workers N` the bench
/// instead drives a [`ServePool`] of N threads (cold then warm) — run it at
/// 1/2/4/8 workers for the serve scaling curve. `--features-mode` benches
/// feature-vector serving instead: distill the teacher into an MLP student
/// (or reuse a v3 `--artifact`) and drive `{"features": ...}` requests.
pub fn serve_bench(args: &Args) -> Result<(), RddError> {
    let source = args.positional.get(1).ok_or_else(|| {
        RddError::Cli(
            "usage: rdd serve-bench <preset|dir> [--models N] [--requests N] [--workers N] \
             [--out FILE] [--artifact FILE] [--features-mode]"
                .into(),
        )
    })?;
    let requests: usize = args.get_or("requests", 2000)?;
    if args.has_flag("features-mode") {
        return serve_bench_features(args, source, requests);
    }
    let models: usize = args.get_or("models", 3)?;
    let workers: Option<usize> = if args.options.contains_key("workers") {
        let w: usize = args.get_or("workers", 1)?;
        if w == 0 {
            return Err(RddError::Cli("--workers must be >= 1".into()));
        }
        Some(w)
    } else {
        None
    };

    let reuse = args
        .options
        .get("artifact")
        .map(PathBuf::from)
        .filter(|p| p.exists());
    let artifact = match reuse {
        Some(path) => {
            eprintln!("reusing artifact {}", path.display());
            Artifact::load(&path)?
        }
        None => {
            let data = load(source, None)?;
            let cfg = RddConfig::fast()
                .to_builder()
                .num_base_models(models)
                .build()?;
            let run_dir =
                std::env::temp_dir().join(format!("rdd_serve_bench_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&run_dir);
            eprintln!("training {} fast teacher(s) on {}...", models, data.name);
            RddTrainer::new(cfg).run_crash_safe(&data, &run_dir, source)?;
            let keep = args.options.get("artifact").map(PathBuf::from);
            let artifact_path = keep.clone().unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("rdd_serve_bench_{}.artifact", std::process::id()))
            });
            let artifact = export_run_as(&run_dir, &artifact_path, ArtifactFormat::V1)?;
            let _ = std::fs::remove_dir_all(&run_dir);
            if keep.is_none() {
                let _ = std::fs::remove_file(&artifact_path);
            }
            artifact
        }
    };

    let results = match workers {
        Some(w) => bench_artifact_pooled(&artifact, requests, w)?,
        None => bench_artifact(&artifact, requests)?,
    };
    print_bench_results(&results);
    write_bench_report(
        args,
        artifact.meta(),
        requests,
        workers.unwrap_or(1),
        false,
        &results,
    )
}
