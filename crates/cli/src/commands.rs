//! Command implementations for the `rdd` CLI.

use std::path::Path;

use rdd_baselines::lp::{predict as lp_predict, LpConfig};
use rdd_baselines::{
    bagging, bans, co_training, mean_teacher, self_training, snapshot_ensemble, BansConfig,
    MeanTeacherConfig, PseudoLabelConfig, SnapshotConfig,
};
use rdd_core::{RddConfig, RddTrainer};
use rdd_graph::{io, Dataset, DatasetStats, SynthConfig};
use rdd_models::{
    predict, train as train_model, Gat, GatConfig, Gcn, GcnConfig, GraphContext, GraphSage,
    SageConfig, TrainConfig,
};
use rdd_tensor::seeded_rng;

use crate::args::Args;

/// Honor `--save <path>` after training a single model.
fn maybe_save(model: &dyn rdd_models::Model, args: &Args) -> Result<(), String> {
    if let Some(path) = args.options.get("save") {
        rdd_models::save_checkpoint(model, Path::new(path)).map_err(|e| e.to_string())?;
        println!("saved checkpoint to {path}");
    }
    Ok(())
}

/// Honor `--pred-out <file>`: the ensemble's hard predictions, one class id
/// per line (the ci fault matrix compares these byte-for-byte across
/// killed-then-resumed and uninterrupted runs).
fn maybe_write_preds(args: &Args, preds: &[usize]) -> Result<(), String> {
    if let Some(path) = args.options.get("pred-out") {
        let mut out = String::with_capacity(preds.len() * 2);
        for p in preds {
            out.push_str(&p.to_string());
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("wrote {} predictions to {path}", preds.len());
    }
    Ok(())
}

fn preset(name: &str) -> Option<SynthConfig> {
    match name {
        "cora" | "cora-sim" => Some(SynthConfig::cora_sim()),
        "citeseer" | "citeseer-sim" => Some(SynthConfig::citeseer_sim()),
        "pubmed" | "pubmed-sim" => Some(SynthConfig::pubmed_sim()),
        "nell" | "nell-sim" => Some(SynthConfig::nell_sim()),
        "tiny" => Some(SynthConfig::tiny()),
        _ => None,
    }
}

/// Load a dataset from a preset name or a saved TSV directory.
fn load(source: &str, seed: Option<u64>) -> Result<Dataset, String> {
    if let Some(cfg) = preset(source) {
        return Ok(match seed {
            Some(s) => cfg.generate_with_seed(s),
            None => cfg.generate(),
        });
    }
    let path = Path::new(source);
    if path.is_dir() {
        io::load_dataset(path).map_err(|e| format!("failed to load {source}: {e}"))
    } else {
        Err(format!(
            "{source:?} is neither a preset (cora|citeseer|pubmed|nell|tiny) nor a dataset directory"
        ))
    }
}

/// Per-dataset model configuration (paper §5.1).
fn configs_for(data: &Dataset) -> (GcnConfig, TrainConfig, RddConfig) {
    if data.name.starts_with("nell") {
        (
            GcnConfig::nell(),
            TrainConfig::nell(),
            RddConfig::for_dataset("nell"),
        )
    } else if data.name.starts_with("citeseer") {
        (
            GcnConfig::citation(),
            TrainConfig::citation(),
            RddConfig::for_dataset("citeseer"),
        )
    } else if data.name.starts_with("pubmed") {
        (
            GcnConfig::citation(),
            TrainConfig::citation(),
            RddConfig::for_dataset("pubmed"),
        )
    } else {
        (
            GcnConfig::citation(),
            TrainConfig::citation(),
            RddConfig::for_dataset("cora"),
        )
    }
}

/// `rdd generate <preset> <dir>`
pub fn generate(args: &Args) -> Result<(), String> {
    let [_, name, dir] = args.positional.as_slice() else {
        return Err("usage: rdd generate <preset> <dir>".into());
    };
    let cfg = preset(name).ok_or_else(|| format!("unknown preset {name}"))?;
    let seed: u64 = args.get_or("seed", cfg.seed)?;
    let data = cfg.generate_with_seed(seed);
    io::save_dataset(&data, Path::new(dir)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges) to {dir}",
        data.name,
        data.n(),
        data.graph.num_edges()
    );
    Ok(())
}

/// `rdd info <preset|dir>`
pub fn info(args: &Args) -> Result<(), String> {
    let [_, source] = args.positional.as_slice() else {
        return Err("usage: rdd info <preset|dir>".into());
    };
    let data = load(source, None)?;
    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::of(&data).row());
    let hist = rdd_graph::stats::degree_histogram(&data);
    println!("degree histogram [0, 1, 2-3, 4-7, 8-15, 16+]: {hist:?}");
    Ok(())
}

/// `rdd train <preset|dir> [--method M] [--models N] [--seed N] ...`
pub fn train_cmd_inner(args: &Args, print: bool) -> Result<(String, f32), String> {
    let source = args
        .positional
        .get(1)
        .ok_or("usage: rdd train <preset|dir> [--method M]")?;
    let seed: u64 = args.get_or("seed", 1)?;
    let data = load(source, None)?;
    let (gcn_cfg, train_cfg, mut rdd_cfg) = configs_for(&data);
    let models: usize = args.get_or("models", 5)?;
    let method: String = args.get_or("method", "rdd".to_string())?;

    let acc = match method.as_str() {
        "gcn" => {
            let ctx = GraphContext::new(&data);
            let mut rng = seeded_rng(seed);
            let mut m = Gcn::new(&ctx, gcn_cfg, &mut rng);
            train_model(&mut m, &ctx, &data, &train_cfg, &mut rng, None);
            maybe_save(&m, args)?;
            data.test_accuracy(&predict(&m, &ctx))
        }
        "sage" => {
            let ctx = GraphContext::new(&data);
            let mut rng = seeded_rng(seed);
            let mut m = GraphSage::new(&ctx, SageConfig::default(), &mut rng);
            train_model(&mut m, &ctx, &data, &train_cfg, &mut rng, None);
            maybe_save(&m, args)?;
            data.test_accuracy(&predict(&m, &ctx))
        }
        "gat" => {
            let ctx = GraphContext::new(&data);
            let mut rng = seeded_rng(seed);
            let mut m = Gat::new(&ctx, GatConfig::default(), &mut rng);
            train_model(&mut m, &ctx, &data, &train_cfg, &mut rng, None);
            maybe_save(&m, args)?;
            data.test_accuracy(&predict(&m, &ctx))
        }
        "rdd" => {
            rdd_cfg.num_base_models = models;
            rdd_cfg.seed = seed;
            rdd_cfg.gamma_initial = args.get_or("gamma", rdd_cfg.gamma_initial)?;
            rdd_cfg.beta = args.get_or("beta", rdd_cfg.beta)?;
            rdd_cfg.p = args.get_or("p", rdd_cfg.p)?;
            let trainer = RddTrainer::new(rdd_cfg);
            let out = match args.options.get("run-dir") {
                // Crash-safe mode: every member commits to the run
                // directory, and a failed run restarts with `rdd resume`.
                Some(dir) => trainer
                    .run_crash_safe(&data, Path::new(dir), source)
                    .map_err(|e| e.to_string())?,
                None => trainer.run(&data),
            };
            if print {
                println!("RDD single: {:.1}%", 100.0 * out.single_test_acc);
            }
            maybe_write_preds(args, &out.ensemble_pred)?;
            out.ensemble_test_acc
        }
        "bagging" => bagging(&data, &gcn_cfg, &train_cfg, models, seed).ensemble_test_acc,
        "bans" => {
            bans(
                &data,
                &gcn_cfg,
                &train_cfg,
                models,
                &BansConfig::default(),
                seed,
            )
            .ensemble_test_acc
        }
        "lp" => data.test_accuracy(&lp_predict(&data, &LpConfig::default())),
        "self-training" => {
            let preds = self_training(
                &data,
                &gcn_cfg,
                &train_cfg,
                &PseudoLabelConfig::default(),
                seed,
            );
            data.test_accuracy(&preds)
        }
        "co-training" => {
            let preds = co_training(
                &data,
                &gcn_cfg,
                &train_cfg,
                &PseudoLabelConfig::default(),
                seed,
            );
            data.test_accuracy(&preds)
        }
        "snapshot" => {
            let cfg = SnapshotConfig {
                cycle: 100,
                cycles: models,
            };
            snapshot_ensemble(&data, &gcn_cfg, &train_cfg, &cfg, seed).ensemble_test_acc
        }
        "mean-teacher" => {
            mean_teacher(
                &data,
                &gcn_cfg,
                &train_cfg,
                &MeanTeacherConfig::default(),
                seed,
            )
            .teacher_test_acc
        }
        other => return Err(format!("unknown method {other}")),
    };
    if print {
        println!(
            "{method} on {}: test accuracy {:.1}%",
            data.name,
            100.0 * acc
        );
    }
    Ok((method, acc))
}

pub fn train(args: &Args) -> Result<(), String> {
    train_cmd_inner(args, true).map(|_| ())
}

/// `rdd resume <run-dir> [--pred-out <file>]` — finish an interrupted
/// crash-safe run. The dataset source comes from the run's manifest, and
/// the completed run is bitwise-identical to one that was never
/// interrupted.
pub fn resume(args: &Args) -> Result<(), String> {
    let [_, dir] = args.positional.as_slice() else {
        return Err("usage: rdd resume <run-dir> [--pred-out <file>]".into());
    };
    let dir = Path::new(dir);
    let source = rdd_core::manifest_source(dir).map_err(|e| e.to_string())?;
    let data = load(&source, None)?;
    let out = RddTrainer::resume(dir, &data).map_err(|e| e.to_string())?;
    println!("RDD single: {:.1}%", 100.0 * out.single_test_acc);
    println!(
        "rdd on {}: test accuracy {:.1}%",
        data.name,
        100.0 * out.ensemble_test_acc
    );
    maybe_write_preds(args, &out.ensemble_pred)?;
    Ok(())
}

/// `rdd trace-summary <file.jsonl>` — validate and render an RDD_TRACE file.
pub fn trace_summary(args: &Args) -> Result<(), String> {
    let [_, path] = args.positional.as_slice() else {
        return Err("usage: rdd trace-summary <file.jsonl>".into());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
    let summary = rdd_obs::validate(&src).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", summary.render());
    Ok(())
}

/// `rdd compare <preset|dir>` — every method side by side.
pub fn compare(args: &Args) -> Result<(), String> {
    let source = args
        .positional
        .get(1)
        .ok_or("usage: rdd compare <preset|dir>")?
        .clone();
    let methods = [
        "lp",
        "gcn",
        "sage",
        "self-training",
        "co-training",
        "bagging",
        "bans",
        "snapshot",
        "mean-teacher",
        "rdd",
    ];
    println!("{:<16} {:>9}", "method", "test acc");
    println!("{}", "-".repeat(26));
    for m in methods {
        let mut sub = args.clone();
        sub.options.insert("method".into(), m.into());
        sub.positional = vec!["train".into(), source.clone()];
        let (_, acc) = train_cmd_inner(&sub, false)?;
        println!("{m:<16} {:>8.1}%", 100.0 * acc);
    }
    Ok(())
}
