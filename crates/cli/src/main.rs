//! `rdd` — command-line front end for the RDD (SIGMOD 2020) reproduction.
//!
//! ```text
//! rdd generate <preset> <dir> [--seed N]        write a synthetic dataset as TSV
//! rdd info <preset|dir>                         dataset statistics (Table 2 row)
//! rdd train <preset|dir> [--method M] [...]     train and report test accuracy
//! rdd resume <run-dir>                          finish an interrupted crash-safe run
//! rdd compare <preset|dir> [--models N]         run every method side by side
//! rdd trace-summary <file.jsonl>                render an RDD_TRACE telemetry file
//! rdd report <trace.jsonl|run-dir>              full run report: convergence, reliability
//!                                               evolution, kernel self-times, serve metrics
//! rdd export <run-dir> <artifact>               freeze a completed run into an artifact
//!                      [--quantize int8]        (int8-quantized v2q format, ~0.3x size)
//! rdd distill-mlp <run-dir> <artifact>          distill the frozen ensemble into a graph-free
//!                      [--quantize int8]        MLP student, frozen as a v3 (mlp) artifact
//! rdd artifact-info <artifact>                  validate and describe an artifact
//! rdd serve --artifact <path>                   JSON request loop over the artifact
//!                                               ({"nodes":[..]} or {"features":[..]} requests)
//! rdd serve-bench <preset|dir> [--requests N]   closed-loop serving throughput bench
//! ```
//!
//! Set `RDD_TRACE=<path|stderr>` to capture structured telemetry (JSONL) from
//! any command; inspect it afterwards with `rdd trace-summary`.
//!
//! Methods: `gcn`, `gat`, `sage`, `rdd` (default), `bagging`, `bans`, `lp`,
//! `self-training`, `co-training`, `snapshot`, `mean-teacher`.

mod args;
mod commands;

use args::Args;

const USAGE: &str = "usage:
  rdd generate <preset> <dir> [--seed N]
  rdd info <preset|dir>
  rdd train <preset|dir> [--method gcn|gat|sage|rdd|bagging|bans|lp|self-training|co-training|snapshot|mean-teacher]
            [--models N] [--seed N] [--gamma F] [--beta F] [--p F]
            [--run-dir <dir>] [--pred-out <file>]      (rdd method only)
  rdd resume <run-dir> [--pred-out <file>]
  rdd compare <preset|dir> [--models N] [--seed N]
  rdd trace-summary <file.jsonl>
  rdd report <trace.jsonl|run-dir>
  rdd export <run-dir> <artifact> [--quantize int8] [--shards K]
  rdd distill-mlp <run-dir> <artifact> [--quantize int8] [--lambda F] [--p F] [--seed N]
            [--epochs N] [--fast]
  rdd artifact-info <artifact> [--proba-out <file>] [--features-in <file>] [--reference <artifact>]
            [--assert-max-ulp N]
  rdd serve --artifact <path> [--workers N] [--batch N] [--delay-ms N] [--cache N] [--queue N]
            [--deadline-ms MS] [--watch-artifact] [--breaker-p99-ms MS] [--metrics-every SECS]
            [--proba-out <file>] [--served-out <file>]
  rdd serve-bench <preset|dir> [--models N] [--requests N] [--workers N] [--out FILE] [--artifact FILE]
            [--features-mode]

presets: cora, citeseer, pubmed, nell, tiny
env: RDD_TRACE=<path|stderr|off> structured telemetry sink, RDD_THREADS=N worker pool size,
     RDD_SIMD=<auto|off|sse2|avx2> kernel tier (default auto: best the host supports),
     RDD_METRICS_EVERY=N serve heartbeat seconds (same as --metrics-every),
     RDD_FAULT=<kind>@<site>:<n>[x<k>] deterministic fault injection (nan_loss@epoch, io_fail@ckpt,
       panic@member, panic@serve_worker, panic@serve_batch, slow@serve_batch, io_fail@swap_load,
       corrupt@shard_load; :<n>x<k> fires on k consecutive passes)";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.has_flag("help") {
        println!("{USAGE}");
        return;
    }
    let Some(command) = args.positional.first().cloned() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let result = match command.as_str() {
        "generate" => commands::generate(&args),
        "info" => commands::info(&args),
        "train" => commands::train(&args),
        "resume" => commands::resume(&args),
        "compare" => commands::compare(&args),
        "trace-summary" => commands::trace_summary(&args),
        "report" => commands::report(&args),
        "export" => commands::export(&args),
        "distill-mlp" => commands::distill_mlp(&args),
        "artifact-info" => commands::artifact_info(&args),
        "serve" => commands::serve(&args),
        "serve-bench" => commands::serve_bench(&args),
        "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(rdd_serve::RddError::Cli(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    };
    // Push any buffered telemetry out before exiting, on both paths.
    rdd_obs::flush();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
