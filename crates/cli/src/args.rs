//! Tiny hand-rolled argument parser (the offline dependency set has no
//! `clap`): positional arguments plus `--key value` / `--flag` options.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, options by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    pub positional: Vec<String>,
    pub options: BTreeMap<String, String>,
    pub flags: Vec<String>,
}

impl Args {
    /// Parse raw arguments. A token starting with `--` either carries its
    /// value inline (`--key=value`) or consumes the next token as its value
    /// unless that token also starts with `--` (then it is a bare flag).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty option name '--'".into());
                }
                if let Some((key, value)) = name.split_once('=') {
                    if key.is_empty() {
                        return Err(format!("empty option name in {tok:?}"));
                    }
                    out.options.insert(key.to_string(), value.to_string());
                    continue;
                }
                let takes_value = iter.peek().is_some_and(|next| !next.starts_with("--"));
                if takes_value {
                    if let Some(value) = iter.next() {
                        out.options.insert(name.to_string(), value);
                    }
                } else {
                    out.flags.push(name.to_string());
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// The option value, parsed, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                format!(
                    "invalid value {v:?} for --{name} (expected {})",
                    std::any::type_name::<T>()
                )
            }),
        }
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parse")
    }

    #[test]
    fn positionals_and_options() {
        let a = parse("train cora --models 5 --seed 7");
        assert_eq!(a.positional, vec!["train", "cora"]);
        assert_eq!(a.options.get("models").map(String::as_str), Some("5"));
        assert_eq!(a.get_or("models", 1usize).unwrap(), 5);
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_or("missing", 42usize).unwrap(), 42);
    }

    #[test]
    fn bare_flags() {
        let a = parse("info data --verbose --models 3");
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("models"));
        assert_eq!(a.get_or("models", 0usize).unwrap(), 3);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("--quiet --fast");
        assert!(a.has_flag("quiet"));
        assert!(a.has_flag("fast"));
    }

    #[test]
    fn invalid_value_errors() {
        let a = parse("--models abc");
        let err = a.get_or("models", 1usize).unwrap_err();
        assert!(err.contains("--models"), "names the flag: {err}");
        assert!(err.contains("\"abc\""), "names the value: {err}");
        assert!(err.contains("usize"), "names the expected type: {err}");
    }

    #[test]
    fn empty_option_name_errors() {
        let e = Args::parse(vec!["--".to_string()]);
        assert!(e.is_err());
    }

    #[test]
    fn inline_equals_values() {
        let a = parse("train cora --models=5 --method=rdd --gamma=0.5");
        assert_eq!(a.positional, vec!["train", "cora"]);
        assert_eq!(a.get_or("models", 1usize).unwrap(), 5);
        assert_eq!(a.options.get("method").map(String::as_str), Some("rdd"));
        assert_eq!(a.get_or("gamma", 0.0f32).unwrap(), 0.5);
    }

    #[test]
    fn inline_equals_keeps_later_equals_in_value() {
        let a = parse("--filter=key=value");
        assert_eq!(
            a.options.get("filter").map(String::as_str),
            Some("key=value")
        );
    }

    #[test]
    fn inline_equals_empty_value_is_kept() {
        let a = parse("--trace=");
        assert_eq!(a.options.get("trace").map(String::as_str), Some(""));
    }

    #[test]
    fn inline_equals_empty_key_errors() {
        let e = Args::parse(vec!["--=5".to_string()]);
        assert!(e.is_err());
    }
}
