//! Label Propagation (Zhu et al. 2003), the classic graph-SSL baseline in
//! the paper's Table 4.
//!
//! Iterates `F ← α·T·F + (1−α)·Y⁰` where `T = D⁻¹A` is the random-walk
//! transition matrix and `Y⁰` one-hot encodes the training labels, then
//! clamps labeled rows back to their labels each round.

use rdd_graph::Dataset;
use rdd_tensor::Matrix;

/// Label Propagation hyperparameters.
#[derive(Clone, Debug)]
pub struct LpConfig {
    /// Propagation weight (`1 − α` pulls toward the seed labels).
    pub alpha: f32,
    /// Maximum propagation iterations.
    pub iterations: usize,
    /// Early-exit tolerance on the total absolute change.
    pub tol: f32,
}

impl Default for LpConfig {
    fn default() -> Self {
        Self {
            alpha: 0.9,
            iterations: 100,
            tol: 1e-5,
        }
    }
}

/// Run label propagation; returns the soft label matrix (`n x k`).
pub fn label_propagation(data: &Dataset, cfg: &LpConfig) -> Matrix {
    let n = data.n();
    let k = data.num_classes;
    let t = data.graph.transition_matrix();

    let mut seed = Matrix::zeros(n, k);
    for &i in &data.train_idx {
        seed.set(i, data.labels[i], 1.0);
    }
    let mut f = seed.clone();
    for _ in 0..cfg.iterations {
        let mut next = t.spmm(&f);
        next.scale_assign(cfg.alpha);
        next.add_scaled_assign(&seed, 1.0 - cfg.alpha);
        // Clamp training rows to their true labels.
        for &i in &data.train_idx {
            let row = next.row_mut(i);
            row.fill(0.0);
            row[data.labels[i]] = 1.0;
        }
        let delta = next.max_abs_diff(&f);
        f = next;
        if delta < cfg.tol {
            break;
        }
    }
    f
}

/// Hard predictions from label propagation.
pub fn predict(data: &Dataset, cfg: &LpConfig) -> Vec<usize> {
    label_propagation(data, cfg).argmax_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;

    #[test]
    fn lp_beats_chance_on_homophilous_graph() {
        let data = SynthConfig::tiny().generate();
        let preds = predict(&data, &LpConfig::default());
        let acc = data.test_accuracy(&preds);
        assert!(
            acc > 1.0 / 3.0 + 0.1,
            "LP accuracy {acc} barely above chance"
        );
    }

    #[test]
    fn labeled_nodes_keep_their_labels() {
        let data = SynthConfig::tiny().generate();
        let preds = predict(&data, &LpConfig::default());
        for &i in &data.train_idx {
            assert_eq!(preds[i], data.labels[i], "clamped node {i} drifted");
        }
    }

    #[test]
    fn zero_iterations_returns_seed() {
        let data = SynthConfig::tiny().generate();
        let cfg = LpConfig {
            iterations: 0,
            ..Default::default()
        };
        let f = label_propagation(&data, &cfg);
        for &i in &data.train_idx {
            assert_eq!(f.get(i, data.labels[i]), 1.0);
        }
    }
}
