//! Consistency-regularization / snapshot ensemble baselines discussed in
//! the paper's related work (§1.1, §2.3):
//!
//! * **Snapshot Ensemble** (Huang et al. 2017) — one GCN trained with SGDR
//!   cosine warm restarts; the model is snapshotted at the end of every
//!   restart cycle and the snapshots soft-vote.
//! * **Mean Teacher** (Tarvainen & Valpola 2017) — the teacher is an
//!   exponential moving average of the student's weights; the student adds
//!   a consistency loss toward the teacher's predictions on all nodes.

use std::rc::Rc;
use std::time::Instant;

use rdd_graph::Dataset;
use rdd_models::{Gcn, GcnConfig, GraphContext, LrSchedule, Model, PredictorExt, TrainConfig};
use rdd_tensor::{seeded_rng, Adam, Matrix, Tape};

use crate::ensembles::EnsembleOutcome;

/// Snapshot Ensemble configuration.
#[derive(Clone, Debug)]
pub struct SnapshotConfig {
    /// Epochs per cosine-restart cycle.
    pub cycle: usize,
    /// Number of cycles (= snapshots = base models).
    pub cycles: usize,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        Self {
            cycle: 100,
            cycles: 5,
        }
    }
}

/// Train one GCN under cosine warm restarts, snapshotting at every cycle
/// end, and soft-vote the snapshots.
pub fn snapshot_ensemble(
    data: &Dataset,
    gcn: &GcnConfig,
    train_cfg: &TrainConfig,
    cfg: &SnapshotConfig,
    seed: u64,
) -> EnsembleOutcome {
    assert!(cfg.cycle >= 1 && cfg.cycles >= 1);
    let start = Instant::now();
    let ctx = GraphContext::new(data);
    let mut rng = seeded_rng(seed);
    let mut model = Gcn::new(&ctx, gcn.clone(), &mut rng);
    let mut opt = Adam::new(train_cfg.lr, train_cfg.weight_decay, model.decay_mask());
    let schedule = LrSchedule::CosineRestarts { period: cfg.cycle };
    let labels = Rc::new(data.labels.clone());
    let train_idx = Rc::new(data.train_idx.clone());

    let mut probas: Vec<Matrix> = Vec::with_capacity(cfg.cycles);
    let mut accs = Vec::with_capacity(cfg.cycles);
    let mut times = Vec::with_capacity(cfg.cycles);
    let mut cycle_start = Instant::now();
    for epoch in 0..cfg.cycle * cfg.cycles {
        opt.set_lr(train_cfg.lr * schedule.factor(epoch));
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ctx, true, &mut rng);
        let logp = tape.log_softmax(logits);
        let loss = tape.nll_masked(logp, Rc::clone(&labels), Rc::clone(&train_idx));
        let grads = tape.backward(loss, model.params().len());
        opt.step(model.params_mut(), &grads);
        if schedule.is_cycle_end(epoch) {
            let proba = model.predictor(&ctx).logits().softmax_rows();
            accs.push(data.test_accuracy(&proba.argmax_rows()));
            probas.push(proba);
            times.push(cycle_start.elapsed().as_secs_f64());
            cycle_start = Instant::now();
        }
    }

    // Uniform soft-vote over the snapshots (prefix accuracies for Table 9
    // compatibility).
    let mut sum = Matrix::zeros(probas[0].rows(), probas[0].cols());
    let mut prefix_test_accs = Vec::with_capacity(probas.len());
    for p in &probas {
        sum.add_assign(p);
        prefix_test_accs.push(data.test_accuracy(&sum.argmax_rows()));
    }
    let pred = sum.argmax_rows();
    EnsembleOutcome {
        ensemble_test_acc: data.test_accuracy(&pred),
        ensemble_val_acc: data.val_accuracy(&pred),
        base_test_accs: accs,
        per_model_time_s: times,
        wall_time_s: start.elapsed().as_secs_f64(),
        prefix_test_accs,
        pred,
    }
}

/// Mean Teacher configuration.
#[derive(Clone, Debug)]
pub struct MeanTeacherConfig {
    /// EMA decay of the teacher weights (0.99 in the original paper).
    pub ema_decay: f32,
    /// Weight of the consistency loss.
    pub consistency: f32,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for MeanTeacherConfig {
    fn default() -> Self {
        Self {
            ema_decay: 0.99,
            consistency: 1.0,
            epochs: 200,
        }
    }
}

/// Outcome of a Mean Teacher run.
#[derive(Clone, Debug)]
pub struct MeanTeacherOutcome {
    /// Test accuracy of the EMA teacher (the model Mean Teacher deploys).
    pub teacher_test_acc: f32,
    /// Test accuracy of the final student.
    pub student_test_acc: f32,
    /// Wall-clock seconds for the whole run.
    pub wall_time_s: f64,
}

/// Train a GCN student with an EMA teacher and a consistency loss toward
/// the teacher's (noisy-forward) predictions on every node.
pub fn mean_teacher(
    data: &Dataset,
    gcn: &GcnConfig,
    train_cfg: &TrainConfig,
    cfg: &MeanTeacherConfig,
    seed: u64,
) -> MeanTeacherOutcome {
    let start = Instant::now();
    let ctx = GraphContext::new(data);
    let mut rng = seeded_rng(seed);
    let mut student = Gcn::new(&ctx, gcn.clone(), &mut rng);
    let mut teacher = Gcn::new(&ctx, gcn.clone(), &mut rng);
    // The teacher starts as a copy of the student.
    teacher.params_mut().clone_from_slice(student.params());
    let mut opt = Adam::new(train_cfg.lr, train_cfg.weight_decay, student.decay_mask());
    let labels = Rc::new(data.labels.clone());
    let train_idx = Rc::new(data.train_idx.clone());
    let all_nodes: Rc<Vec<usize>> = Rc::new((0..data.n()).collect());

    for _ in 0..cfg.epochs {
        // Teacher prediction (eval-mode forward is the transductive analog
        // of the teacher's noisy pass).
        let teacher_logits = Rc::new(teacher.predictor(&ctx).logits());

        let mut tape = Tape::new();
        let logits = student.forward(&mut tape, &ctx, true, &mut rng);
        let logp = tape.log_softmax(logits);
        let ce = tape.nll_masked(logp, Rc::clone(&labels), Rc::clone(&train_idx));
        let cons = tape.mse_rows(logits, teacher_logits, Rc::clone(&all_nodes));
        let loss = tape.weighted_sum(&[(ce, 1.0), (cons, cfg.consistency)]);
        let grads = tape.backward(loss, student.params().len());
        opt.step(student.params_mut(), &grads);

        // EMA update of the teacher.
        let d = cfg.ema_decay;
        for (t, s) in teacher.params_mut().iter_mut().zip(student.params()) {
            t.scale_assign(d);
            t.add_scaled_assign(s, 1.0 - d);
        }
    }

    let teacher_pred = teacher.predictor(&ctx).logits().argmax_rows();
    let student_pred = student.predictor(&ctx).logits().argmax_rows();
    MeanTeacherOutcome {
        teacher_test_acc: data.test_accuracy(&teacher_pred),
        student_test_acc: data.test_accuracy(&student_pred),
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;

    fn fast_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 60,
            patience: 60,
            min_epochs: 0,
            ..TrainConfig::fast()
        }
    }

    #[test]
    fn snapshot_ensemble_collects_cycle_snapshots() {
        let data = SynthConfig::tiny().generate();
        let cfg = SnapshotConfig {
            cycle: 25,
            cycles: 3,
        };
        let out = snapshot_ensemble(&data, &GcnConfig::citation(), &fast_cfg(), &cfg, 1);
        assert_eq!(out.base_test_accs.len(), 3);
        assert_eq!(out.prefix_test_accs.len(), 3);
        assert!(
            out.ensemble_test_acc > 0.5,
            "snapshot acc {}",
            out.ensemble_test_acc
        );
    }

    #[test]
    fn lr_schedule_restarts() {
        let s = LrSchedule::CosineRestarts { period: 10 };
        assert!((s.factor(0) - 1.0).abs() < 1e-6, "cycle starts at full lr");
        assert!(s.factor(9) < 0.05, "cycle ends near zero");
        assert!((s.factor(10) - 1.0).abs() < 1e-6, "restart resets lr");
        assert!(s.is_cycle_end(9));
        assert!(!s.is_cycle_end(5));
    }

    #[test]
    fn mean_teacher_learns() {
        let data = SynthConfig::tiny().generate();
        let cfg = MeanTeacherConfig {
            ema_decay: 0.95,
            consistency: 0.5,
            epochs: 80,
        };
        let out = mean_teacher(&data, &GcnConfig::citation(), &fast_cfg(), &cfg, 2);
        assert!(
            out.teacher_test_acc > 0.55,
            "teacher acc {}",
            out.teacher_test_acc
        );
        assert!(
            out.student_test_acc > 0.55,
            "student acc {}",
            out.student_test_acc
        );
    }

    #[test]
    fn mean_teacher_teacher_tracks_student() {
        // With a fast EMA the teacher should end close to the student.
        let data = SynthConfig::tiny().generate();
        let cfg = MeanTeacherConfig {
            ema_decay: 0.5,
            consistency: 0.1,
            epochs: 60,
        };
        let out = mean_teacher(&data, &GcnConfig::citation(), &fast_cfg(), &cfg, 3);
        assert!(
            (out.teacher_test_acc - out.student_test_acc).abs() < 0.15,
            "teacher {} strayed from student {}",
            out.teacher_test_acc,
            out.student_test_acc
        );
    }
}
