//! Pseudo-labeling baselines: Self-Training and Co-Training (paper §1.1's
//! "most representative" SSL methods, following Li et al. 2018).
//!
//! * **Self-Training** trains a GCN, takes its most confident predictions
//!   per class as pseudo-labels, adds them to the training set and retrains.
//! * **Co-Training** complements the GCN with a random-walk view of the
//!   graph: per-class personalized PageRank from the labeled seeds scores
//!   every node, the top-scored nodes per class become pseudo-labels, and a
//!   GCN is trained on the expanded label set.

use rand::rngs::StdRng;
use rdd_graph::Dataset;
use rdd_models::{train, Gcn, GcnConfig, GraphContext, PredictorExt, TrainConfig};
use rdd_tensor::seeded_rng;

/// Configuration for both pseudo-labeling methods.
#[derive(Clone, Debug)]
pub struct PseudoLabelConfig {
    /// Pseudo-labels added per class per round.
    pub per_class: usize,
    /// Number of expand-retrain rounds (Self-Training only).
    pub rounds: usize,
}

impl Default for PseudoLabelConfig {
    fn default() -> Self {
        Self {
            per_class: 20,
            rounds: 1,
        }
    }
}

/// Expand `data`'s training set with pseudo-labels: for each class, the
/// `per_class` unlabeled nodes with the highest `score`, relabeled to that
/// class. Returns the expanded dataset copy.
fn expand_with_pseudo_labels(
    data: &Dataset,
    scores: impl Fn(usize, usize) -> f32, // (node, class) -> confidence
    predicted_class: &[usize],
    per_class: usize,
) -> Dataset {
    let mut expanded = data.clone();
    let mut is_train = vec![false; data.n()];
    for &i in &data.train_idx {
        is_train[i] = true;
    }
    for c in 0..data.num_classes {
        let mut candidates: Vec<usize> = (0..data.n())
            .filter(|&i| !is_train[i] && predicted_class[i] == c)
            .collect();
        candidates.sort_by(|&a, &b| scores(b, c).total_cmp(&scores(a, c)));
        for &i in candidates.iter().take(per_class) {
            expanded.labels[i] = c; // pseudo-label (may be wrong!)
            expanded.train_idx.push(i);
            is_train[i] = true;
        }
    }
    expanded.train_idx.sort_unstable();
    expanded
}

fn train_gcn(
    data: &Dataset,
    gcn: &GcnConfig,
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> (Gcn, GraphContext) {
    let ctx = GraphContext::new(data);
    let mut model = Gcn::new(&ctx, gcn.clone(), rng);
    train(&mut model, &ctx, data, cfg, rng, None);
    (model, ctx)
}

/// Self-Training: iteratively add the GCN's most confident predictions as
/// pseudo-labels and retrain. Returns hard predictions over all nodes.
///
/// Accuracy must always be evaluated against the *original* dataset's
/// labels — the expanded copy contains pseudo-labels.
pub fn self_training(
    data: &Dataset,
    gcn: &GcnConfig,
    train_cfg: &TrainConfig,
    cfg: &PseudoLabelConfig,
    seed: u64,
) -> Vec<usize> {
    let mut rng = seeded_rng(seed);
    let mut working = data.clone();
    let mut last_pred: Vec<usize>;
    let mut round = 0;
    loop {
        let (model, ctx) = train_gcn(&working, gcn, train_cfg, &mut rng);
        let proba = model.predictor(&ctx).proba();
        last_pred = proba.argmax_rows();
        if round >= cfg.rounds {
            return last_pred;
        }
        round += 1;
        let pred = last_pred.clone();
        working = expand_with_pseudo_labels(&working, |i, c| proba.get(i, c), &pred, cfg.per_class);
    }
}

/// Per-class personalized PageRank: restart uniformly over that class's
/// labeled seeds. Returns an `n`-vector per class.
fn class_ppr(data: &Dataset, damping: f32, iterations: usize) -> Vec<Vec<f32>> {
    let n = data.n();
    let mut out = Vec::with_capacity(data.num_classes);
    for c in 0..data.num_classes {
        let seeds: Vec<usize> = data
            .train_idx
            .iter()
            .copied()
            .filter(|&i| data.labels[i] == c)
            .collect();
        if seeds.is_empty() {
            out.push(vec![0.0; n]);
            continue;
        }
        let restart = 1.0 / seeds.len() as f32;
        let mut rank = vec![0.0f32; n];
        for &s in &seeds {
            rank[s] = restart;
        }
        let seed_mass = rank.clone();
        for _ in 0..iterations {
            let mut next = vec![0.0f32; n];
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let d = data.graph.degree(i);
                if d == 0 {
                    continue;
                }
                let share = rank[i] / d as f32;
                for &j in data.graph.neighbors(i) {
                    next[j as usize] += share;
                }
            }
            for i in 0..n {
                next[i] = damping * next[i] + (1.0 - damping) * seed_mass[i];
            }
            rank = next;
        }
        out.push(rank);
    }
    out
}

/// Co-Training: the random-walk view proposes pseudo-labels (top-PPR nodes
/// per class), then a GCN trains on the expanded label set. Returns hard
/// predictions over all nodes.
pub fn co_training(
    data: &Dataset,
    gcn: &GcnConfig,
    train_cfg: &TrainConfig,
    cfg: &PseudoLabelConfig,
    seed: u64,
) -> Vec<usize> {
    let ppr = class_ppr(data, 0.85, 30);
    // Random-walk class assignment: argmax over per-class PPR scores.
    let rw_class: Vec<usize> = (0..data.n())
        .map(|i| {
            let mut best = 0;
            for c in 1..data.num_classes {
                if ppr[c][i] > ppr[best][i] {
                    best = c;
                }
            }
            best
        })
        .collect();
    let expanded = expand_with_pseudo_labels(data, |i, c| ppr[c][i], &rw_class, cfg.per_class);
    let mut rng = seeded_rng(seed);
    let (model, ctx) = train_gcn(&expanded, gcn, train_cfg, &mut rng);
    model.predictor(&ctx).proba().argmax_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;

    #[test]
    fn self_training_beats_chance() {
        let data = SynthConfig::tiny().generate();
        let cfg = PseudoLabelConfig {
            per_class: 10,
            rounds: 1,
        };
        let preds = self_training(&data, &GcnConfig::citation(), &TrainConfig::fast(), &cfg, 3);
        let acc = data.test_accuracy(&preds);
        assert!(acc > 0.5, "self-training acc {acc}");
    }

    #[test]
    fn co_training_beats_chance() {
        let data = SynthConfig::tiny().generate();
        let cfg = PseudoLabelConfig {
            per_class: 10,
            rounds: 1,
        };
        let preds = co_training(&data, &GcnConfig::citation(), &TrainConfig::fast(), &cfg, 3);
        let acc = data.test_accuracy(&preds);
        assert!(acc > 0.5, "co-training acc {acc}");
    }

    #[test]
    fn expansion_grows_training_set_without_duplicates() {
        let data = SynthConfig::tiny().generate();
        let pred: Vec<usize> = (0..data.n()).map(|i| i % 3).collect();
        let expanded = expand_with_pseudo_labels(&data, |_, _| 1.0, &pred, 5);
        assert!(expanded.train_idx.len() > data.train_idx.len());
        assert!(expanded.train_idx.len() <= data.train_idx.len() + 15);
        let mut sorted = expanded.train_idx.clone();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            expanded.train_idx.len(),
            "duplicate train idx"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn class_ppr_mass_concentrates_near_seeds() {
        let data = SynthConfig::tiny().generate();
        let ppr = class_ppr(&data, 0.85, 30);
        // A class's own seeds should on average outscore other classes'.
        for c in 0..data.num_classes {
            let own: f32 = data
                .train_idx
                .iter()
                .filter(|&&i| data.labels[i] == c)
                .map(|&i| ppr[c][i])
                .sum();
            let other: f32 = data
                .train_idx
                .iter()
                .filter(|&&i| data.labels[i] != c)
                .map(|&i| ppr[c][i])
                .sum();
            assert!(own > other, "class {c} PPR not concentrated");
        }
    }
}
