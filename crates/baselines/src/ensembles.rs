//! Ensemble baselines: Bagging and Born-Again Networks (BANs).
//!
//! Both use the same two-layer GCN base model as RDD (the paper's fairness
//! requirement, §5.1). Per the paper, Bagging does **not** subsample the
//! training set — the labeled set is already tiny — it trains independent
//! GCNs from different seeds and averages their softmax outputs uniformly.
//! BANs trains each generation under a KD loss toward the previous
//! generation and averages all generations uniformly.

use std::rc::Rc;
use std::time::Instant;

use rdd_graph::Dataset;
use rdd_models::{train, Gcn, GcnConfig, GraphContext, PredictorExt, TrainConfig};
use rdd_tensor::{seeded_rng, Matrix, Tape, Var};

/// Outcome shared by the ensemble baselines (feeds Tables 3, 6 and 9).
#[derive(Clone, Debug)]
pub struct EnsembleOutcome {
    /// Test accuracy of the combined model.
    pub ensemble_test_acc: f32,
    /// Validation accuracy of the combined model.
    pub ensemble_val_acc: f32,
    /// Per-base-model test accuracies, in training order.
    pub base_test_accs: Vec<f32>,
    /// Wall-clock seconds per base model.
    pub per_model_time_s: Vec<f64>,
    /// Total wall-clock seconds.
    pub wall_time_s: f64,
    /// Test accuracy of the uniform soft-vote truncated to the first `t+1`
    /// base models (feeds Table 9).
    pub prefix_test_accs: Vec<f32>,
    /// Hard predictions of the combined model.
    pub pred: Vec<usize>,
}

impl EnsembleOutcome {
    /// Mean base-model test accuracy (Table 6's "Average" row).
    pub fn average_base_test_acc(&self) -> f32 {
        if self.base_test_accs.is_empty() {
            return 0.0;
        }
        self.base_test_accs.iter().sum::<f32>() / self.base_test_accs.len() as f32
    }

    /// Ensemble-minus-average gain (Table 6's "Gain" row).
    pub fn gain(&self) -> f32 {
        self.ensemble_test_acc - self.average_base_test_acc()
    }
}

fn finish(
    data: &Dataset,
    probas: Vec<Matrix>,
    base_test_accs: Vec<f32>,
    per_model_time_s: Vec<f64>,
    start: Instant,
) -> EnsembleOutcome {
    // Running (unnormalized) soft-vote sum gives the prefix accuracies in
    // one pass; argmax is scale-invariant.
    let mut sum = Matrix::zeros(probas[0].rows(), probas[0].cols());
    let mut prefix_test_accs = Vec::with_capacity(probas.len());
    for p in &probas {
        sum.add_assign(p);
        prefix_test_accs.push(data.test_accuracy(&sum.argmax_rows()));
    }
    let pred = sum.argmax_rows();
    EnsembleOutcome {
        ensemble_test_acc: data.test_accuracy(&pred),
        ensemble_val_acc: data.val_accuracy(&pred),
        base_test_accs,
        per_model_time_s,
        wall_time_s: start.elapsed().as_secs_f64(),
        prefix_test_accs,
        pred,
    }
}

/// Bagging: `num_models` independently-seeded GCNs, uniform soft-vote.
pub fn bagging(
    data: &Dataset,
    gcn: &GcnConfig,
    train_cfg: &TrainConfig,
    num_models: usize,
    seed: u64,
) -> EnsembleOutcome {
    assert!(num_models >= 1);
    let start = Instant::now();
    let ctx = GraphContext::new(data);
    let mut probas = Vec::with_capacity(num_models);
    let mut accs = Vec::with_capacity(num_models);
    let mut times = Vec::with_capacity(num_models);
    for t in 0..num_models {
        let t0 = Instant::now();
        let mut rng = seeded_rng(seed.wrapping_add(t as u64));
        let mut model = Gcn::new(&ctx, gcn.clone(), &mut rng);
        train(&mut model, &ctx, data, train_cfg, &mut rng, None);
        let proba = model.predictor(&ctx).logits().softmax_rows();
        accs.push(data.test_accuracy(&proba.argmax_rows()));
        probas.push(proba);
        times.push(t0.elapsed().as_secs_f64());
    }
    finish(data, probas, accs, times, start)
}

/// BANs hyperparameters.
#[derive(Clone, Debug)]
pub struct BansConfig {
    /// Weight of the KD term pulling generation `t` toward generation
    /// `t−1`'s predictions.
    pub kd_weight: f32,
    /// Softmax temperature applied to the teacher's logits before the
    /// dark-knowledge transfer (Hinton et al. 2015). `1.0` uses the raw
    /// distribution; `T > 1` softens it, exposing more inter-class
    /// structure.
    pub temperature: f32,
}

impl Default for BansConfig {
    fn default() -> Self {
        Self {
            kd_weight: 1.0,
            temperature: 1.0,
        }
    }
}

/// Born-Again Networks: generation `t` minimizes
/// `CE + kd_weight · H(p_{t−1}, p_t)` over all nodes — soft cross-entropy
/// against the previous generation's softmax outputs (the dark-knowledge
/// transfer of Furlanello et al. 2018) — then all generations soft-vote
/// uniformly.
pub fn bans(
    data: &Dataset,
    gcn: &GcnConfig,
    train_cfg: &TrainConfig,
    num_models: usize,
    cfg: &BansConfig,
    seed: u64,
) -> EnsembleOutcome {
    assert!(num_models >= 1);
    let start = Instant::now();
    let ctx = GraphContext::new(data);
    let mut probas: Vec<Matrix> = Vec::with_capacity(num_models);
    let mut accs = Vec::with_capacity(num_models);
    let mut times = Vec::with_capacity(num_models);
    assert!(cfg.temperature > 0.0, "temperature must be positive");
    let mut prev_proba: Option<Rc<Matrix>> = None;
    let all_nodes: Rc<Vec<usize>> = Rc::new((0..data.n()).collect());

    for t in 0..num_models {
        let t0 = Instant::now();
        let mut rng = seeded_rng(seed.wrapping_add(t as u64));
        let mut model = Gcn::new(&ctx, gcn.clone(), &mut rng);
        match &prev_proba {
            None => {
                train(&mut model, &ctx, data, train_cfg, &mut rng, None);
            }
            Some(teacher) => {
                let teacher = Rc::clone(teacher);
                let nodes = Rc::clone(&all_nodes);
                let kd = cfg.kd_weight;
                let mut hook = move |tape: &mut Tape, logits: Var, _epoch: usize| {
                    // Classic KD: mimic the teacher's full softmax on every
                    // node, no reliability filtering (the contrast RDD
                    // improves on).
                    let logp = tape.log_softmax(logits);
                    let l = tape.soft_ce_masked(logp, Rc::clone(&teacher), Rc::clone(&nodes));
                    vec![(l, kd)]
                };
                train(&mut model, &ctx, data, train_cfg, &mut rng, Some(&mut hook));
            }
        }
        let logits = model.predictor(&ctx).logits();
        let proba = logits.softmax_rows();
        accs.push(data.test_accuracy(&proba.argmax_rows()));
        // Next generation's target: temperature-softened teacher output.
        prev_proba = Some(Rc::new(if (cfg.temperature - 1.0).abs() < 1e-6 {
            proba.clone()
        } else {
            logits.scaled(1.0 / cfg.temperature).softmax_rows()
        }));
        probas.push(proba);
        times.push(t0.elapsed().as_secs_f64());
    }
    finish(data, probas, accs, times, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;

    #[test]
    fn bagging_combines_models() {
        let data = SynthConfig::tiny().generate();
        let out = bagging(&data, &GcnConfig::citation(), &TrainConfig::fast(), 2, 7);
        assert_eq!(out.base_test_accs.len(), 2);
        assert!(out.ensemble_test_acc > 0.5, "acc {}", out.ensemble_test_acc);
        assert_eq!(out.pred.len(), data.n());
        assert_eq!(out.per_model_time_s.len(), 2);
    }

    #[test]
    fn bagging_base_models_differ() {
        let data = SynthConfig::tiny().generate();
        let out = bagging(&data, &GcnConfig::citation(), &TrainConfig::fast(), 2, 7);
        // Different seeds should give (at least slightly) different models.
        assert!(
            (out.base_test_accs[0] - out.base_test_accs[1]).abs() > 1e-6
                || out.base_test_accs[0] != out.ensemble_test_acc,
            "suspiciously identical base models"
        );
    }

    #[test]
    fn bans_trains_generations() {
        let data = SynthConfig::tiny().generate();
        let out = bans(
            &data,
            &GcnConfig::citation(),
            &TrainConfig::fast(),
            2,
            &BansConfig::default(),
            7,
        );
        assert_eq!(out.base_test_accs.len(), 2);
        assert!(out.ensemble_test_acc > 0.5, "acc {}", out.ensemble_test_acc);
    }

    #[test]
    fn gain_is_ensemble_minus_average() {
        let out = EnsembleOutcome {
            ensemble_test_acc: 0.9,
            ensemble_val_acc: 0.9,
            base_test_accs: vec![0.8, 0.84],
            per_model_time_s: vec![0.0, 0.0],
            wall_time_s: 0.0,
            prefix_test_accs: vec![0.8, 0.9],
            pred: vec![],
        };
        assert!((out.average_base_test_acc() - 0.82).abs() < 1e-6);
        assert!((out.gain() - 0.08).abs() < 1e-6);
    }
}

#[cfg(test)]
mod temperature_tests {
    use super::*;
    use rdd_graph::SynthConfig;

    #[test]
    fn bans_with_temperature_trains() {
        let data = SynthConfig::tiny().generate();
        let cfg = BansConfig {
            kd_weight: 1.0,
            temperature: 3.0,
        };
        let out = bans(
            &data,
            &GcnConfig::citation(),
            &TrainConfig::fast(),
            2,
            &cfg,
            5,
        );
        assert!(out.ensemble_test_acc > 0.5, "acc {}", out.ensemble_test_acc);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        let data = SynthConfig::tiny().generate();
        let cfg = BansConfig {
            kd_weight: 1.0,
            temperature: 0.0,
        };
        let _ = bans(
            &data,
            &GcnConfig::citation(),
            &TrainConfig::fast(),
            2,
            &cfg,
            5,
        );
    }
}
