#![warn(missing_docs)]
//! # rdd-baselines
//!
//! The comparison methods the paper evaluates RDD against, all implemented
//! over the same two-layer GCN base model for fairness (§5.1):
//!
//! * [`lp`] — Label Propagation (Table 4);
//! * [`ensembles`] — Bagging and Born-Again Networks (Tables 3, 6, 9);
//! * [`pseudo_label`] — Self-Training and Co-Training (§1.1's
//!   pseudo-labeling family);
//! * [`consistency`] — Snapshot Ensemble and Mean Teacher (§2.3's
//!   KD/consistency-based ensemble family).
//!
//! ```
//! use rdd_baselines::lp::{predict, LpConfig};
//! use rdd_graph::SynthConfig;
//!
//! let data = SynthConfig::tiny().generate();
//! let preds = predict(&data, &LpConfig::default());
//! assert!(data.test_accuracy(&preds) > 0.3);
//! ```

pub mod consistency;
pub mod ensembles;
pub mod lp;
pub mod pseudo_label;

pub use consistency::{
    mean_teacher, snapshot_ensemble, MeanTeacherConfig, MeanTeacherOutcome, SnapshotConfig,
};
pub use ensembles::{bagging, bans, BansConfig, EnsembleOutcome};
pub use lp::{label_propagation, LpConfig};
pub use pseudo_label::{co_training, self_training, PseudoLabelConfig};
