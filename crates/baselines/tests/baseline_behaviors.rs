//! Behavioural tests for the baselines: degenerate graphs, label-budget
//! effects and ensemble bookkeeping.

use rdd_baselines::lp::{label_propagation, predict as lp_predict, LpConfig};
use rdd_baselines::{bagging, bans, co_training, self_training, BansConfig, PseudoLabelConfig};
use rdd_graph::{Dataset, Graph, SynthConfig};
use rdd_models::{GcnConfig, TrainConfig};
use rdd_tensor::CsrMatrix;

fn fast_train() -> TrainConfig {
    TrainConfig {
        epochs: 50,
        patience: 50,
        min_epochs: 0,
        ..TrainConfig::fast()
    }
}

/// LP on a graph with an isolated component: unreachable nodes keep zero
/// scores (argmax falls back to class 0) without panicking.
#[test]
fn lp_handles_disconnected_graph() {
    let n = 10;
    // Nodes 8, 9 are isolated.
    let graph = Graph::from_edges(n, &(0..7).map(|i| (i, i + 1)).collect::<Vec<_>>());
    let labels = vec![0, 0, 0, 0, 1, 1, 1, 1, 0, 1];
    let data = Dataset {
        name: "disconnected".into(),
        graph,
        features: CsrMatrix::identity(n),
        labels,
        num_classes: 2,
        train_idx: vec![0, 4],
        val_idx: vec![1, 5],
        test_idx: vec![2, 3, 6, 7],
    };
    let f = label_propagation(&data, &LpConfig::default());
    // Connected labeled mass propagates.
    assert!(f.get(1, 0) > 0.0);
    // Isolated nodes receive nothing.
    assert_eq!(f.row(8), &[0.0, 0.0]);
    let preds = lp_predict(&data, &LpConfig::default());
    assert_eq!(preds.len(), n);
}

/// LP accuracy should grow with the number of seeds.
#[test]
fn lp_improves_with_more_labels() {
    let cfg = SynthConfig::tiny();
    let mut rng = rdd_tensor::seeded_rng(1);
    let mut scarce = cfg.generate();
    scarce.resample_train(2, &mut rng);
    let mut rich = cfg.generate();
    rich.resample_train(40, &mut rng);
    let a = scarce.test_accuracy(&lp_predict(&scarce, &LpConfig::default()));
    let b = rich.test_accuracy(&lp_predict(&rich, &LpConfig::default()));
    assert!(b > a, "more seeds should help LP: {b} !> {a}");
}

/// Self-training rounds must keep the original labels intact on the
/// *caller's* dataset (pseudo-labels only live in the working copy).
#[test]
fn self_training_does_not_mutate_input() {
    let data = SynthConfig::tiny().generate();
    let labels_before = data.labels.clone();
    let train_before = data.train_idx.clone();
    let cfg = PseudoLabelConfig {
        per_class: 5,
        rounds: 1,
    };
    let _ = self_training(&data, &GcnConfig::citation(), &fast_train(), &cfg, 1);
    assert_eq!(data.labels, labels_before);
    assert_eq!(data.train_idx, train_before);
}

/// Zero rounds of self-training is exactly a plain GCN run.
#[test]
fn self_training_zero_rounds_is_plain_gcn() {
    let data = SynthConfig::tiny().generate();
    let cfg = PseudoLabelConfig {
        per_class: 5,
        rounds: 0,
    };
    let preds = self_training(&data, &GcnConfig::citation(), &fast_train(), &cfg, 2);
    assert_eq!(preds.len(), data.n());
    assert!(data.test_accuracy(&preds) > 0.5);
}

/// Co-training's random-walk pseudo-labels should not collapse accuracy
/// below the plain GCN by a large margin.
#[test]
fn co_training_is_sane() {
    let data = SynthConfig::tiny().generate();
    let cfg = PseudoLabelConfig {
        per_class: 8,
        rounds: 1,
    };
    let preds = co_training(&data, &GcnConfig::citation(), &fast_train(), &cfg, 3);
    assert!(data.test_accuracy(&preds) > 0.5);
}

/// Ensemble bookkeeping: per-model times and prefix accuracies line up.
#[test]
fn ensemble_outcome_bookkeeping() {
    let data = SynthConfig::tiny().generate();
    let out = bagging(&data, &GcnConfig::citation(), &fast_train(), 3, 5);
    assert_eq!(out.per_model_time_s.len(), 3);
    assert!(out.per_model_time_s.iter().all(|&t| t > 0.0));
    assert!(out.wall_time_s >= out.per_model_time_s.iter().sum::<f64>() * 0.9);
    assert_eq!(out.prefix_test_accs.len(), 3);
    assert!((out.prefix_test_accs[2] - out.ensemble_test_acc).abs() < 1e-6);
}

/// BANs generations should agree with each other more than independently
/// trained Bagging members do (the limited-diversity effect the paper
/// criticizes).
#[test]
fn bans_less_diverse_than_bagging() {
    let data = SynthConfig::tiny().generate();
    let t = fast_train();
    let kd = BansConfig {
        kd_weight: 5.0,
        ..Default::default()
    };
    let b = bagging(&data, &GcnConfig::citation(), &t, 2, 11);
    let bn = bans(&data, &GcnConfig::citation(), &t, 2, &kd, 11);
    // Diversity proxy: |acc gap| between the pair is not a great measure;
    // instead compare each pair's prediction agreement via the ensembles'
    // stored outputs. We only have hard predictions here, so use the gain:
    // a strongly-mimicking BANs pair should produce a combined model closer
    // to its average than bagging's (smaller ensemble gain).
    assert!(
        bn.gain() <= b.gain() + 0.02,
        "BANs gain {} should not exceed Bagging gain {} (limited diversity)",
        bn.gain(),
        b.gain()
    );
}
