//! Property-based invariants of the graph substrate: PageRank, the GCN
//! normalization, split protocol and generator statistics under randomized
//! inputs.

use proptest::prelude::*;
use rdd_graph::{planetoid_split, Graph, SynthConfig};

/// Strategy: a random edge list over `n` nodes.
fn edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pagerank_is_a_distribution(e in edges(20, 60)) {
        let g = Graph::from_edges(20, &e);
        let pr = g.pagerank(0.85, 100, 1e-10);
        let sum: f32 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "pagerank sums to {sum}");
        prop_assert!(pr.iter().all(|&p| p > 0.0), "all ranks positive");
    }

    #[test]
    fn normalized_adjacency_is_symmetric_and_bounded(e in edges(15, 40)) {
        let g = Graph::from_edges(15, &e);
        let a = g.normalized_adjacency();
        for (i, j, v) in a.iter() {
            prop_assert!((a.get(j, i) - v).abs() < 1e-6, "asymmetry at ({i},{j})");
            prop_assert!(v > 0.0 && v <= 1.0, "Â entry {v} out of (0,1]");
        }
        // Self-loops always present.
        for i in 0..15 {
            prop_assert!(a.get(i, i) > 0.0, "missing self-loop at {i}");
        }
        // Row sums of Â are at most 1 for the renormalized operator...
        // actually they can slightly exceed; instead check spectral-safe
        // bound: each row sum ≤ sqrt(deg+1) is loose, so just check finite.
        prop_assert!(a.row_sums().iter().all(|s| s.is_finite()));
    }

    #[test]
    fn adjacency_is_undirected_and_loopless(e in edges(12, 30)) {
        let g = Graph::from_edges(12, &e);
        for (i, j, _) in g.adjacency().iter() {
            prop_assert!(i != j, "self-loop survived");
            prop_assert!(g.has_edge(j, i), "asymmetric adjacency");
        }
        // Degree equals neighbor count equals adjacency row nnz.
        for i in 0..12 {
            prop_assert_eq!(g.degree(i), g.neighbors(i).len());
        }
    }

    #[test]
    fn components_are_edge_consistent(e in edges(12, 25)) {
        let g = Graph::from_edges(12, &e);
        let comp = g.connected_components();
        for &(a, b) in g.edges() {
            prop_assert_eq!(comp[a as usize], comp[b as usize], "edge crosses components");
        }
    }

    #[test]
    fn planetoid_split_is_disjoint_and_balanced(
        seed in 0u64..1000,
        per_class in 1usize..5,
    ) {
        let n = 90;
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut rng = rdd_tensor::seeded_rng(seed);
        let (train, val, test) = planetoid_split(&labels, 3, per_class, 10, 10, &mut rng);
        prop_assert_eq!(train.len(), 3 * per_class);
        prop_assert_eq!(val.len(), 10);
        prop_assert_eq!(test.len(), 10);
        let mut seen = std::collections::HashSet::new();
        for &i in train.iter().chain(&val).chain(&test) {
            prop_assert!(seen.insert(i), "node {} in two splits", i);
        }
        // Per-class balance of the training set.
        for c in 0..3 {
            let count = train.iter().filter(|&&i| labels[i] == c).count();
            prop_assert_eq!(count, per_class);
        }
    }

    #[test]
    fn generator_feature_rows_are_normalized(seed in 0u64..50) {
        let mut cfg = SynthConfig::tiny();
        cfg.n = 120;
        cfg.val_size = 30;
        cfg.test_size = 30;
        let d = cfg.generate_with_seed(seed);
        for (i, s) in d.features.row_sums().iter().enumerate() {
            prop_assert!((s - 1.0).abs() < 1e-4, "row {} sums to {}", i, s);
        }
        // Labels in range, splits within bounds.
        prop_assert!(d.labels.iter().all(|&c| c < d.num_classes));
        prop_assert!(d.train_idx.iter().all(|&i| i < d.n()));
    }

    #[test]
    fn homophily_increases_with_config(seed in 0u64..20) {
        let mut low = SynthConfig::tiny();
        low.homophily = 0.3;
        low.class_mixing = 0.0;
        let mut high = SynthConfig::tiny();
        high.homophily = 0.95;
        high.class_mixing = 0.0;
        let dl = low.generate_with_seed(seed);
        let dh = high.generate_with_seed(seed);
        let hl = dl.graph.edge_homophily(&dl.labels);
        let hh = dh.graph.edge_homophily(&dh.labels);
        prop_assert!(hh > hl, "homophily knob inverted: {} !> {}", hh, hl);
    }
}
