//! Synthetic citation-network / knowledge-graph generator.
//!
//! The paper evaluates on Cora, Citeseer, Pubmed (Planetoid splits) and
//! NELL — none of which can be redistributed here — so each dataset is
//! replaced by a calibrated synthetic equivalent. The generator is a
//! degree-corrected planted-partition model with topic-model bag-of-words
//! features, which preserves the three properties RDD's mechanisms depend
//! on (see DESIGN.md):
//!
//! 1. **Homophily** — edges are intra-class with probability `homophily`
//!    (citation networks sit around 0.74–0.81).
//! 2. **Feature–class correlation** — each class owns a block of the
//!    vocabulary; a node draws each word from its class block with
//!    probability `feature_purity`, else from the whole vocabulary.
//! 3. **Label scarcity** — Planetoid splits (20 labeled/class, 500 val,
//!    1000 test).
//!
//! Degrees follow a Pareto-ish weight distribution so the graphs have hubs,
//! which matters for the PageRank-weighted ensemble (Eq. 12).

use rand::Rng;
use rdd_tensor::CsrMatrix;
use std::collections::HashSet;

use crate::dataset::{planetoid_split, Dataset};
use crate::graph::Graph;

/// Full parameterization of one synthetic dataset.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Preset name (also the generated dataset name).
    pub name: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Vocabulary size / feature dimensionality.
    pub num_features: usize,
    /// Target mean degree (2·|E|/n).
    pub avg_degree: f32,
    /// Probability that a generated edge connects two same-class nodes.
    pub homophily: f32,
    /// Probability a word is drawn from the node's class-topic block.
    pub feature_purity: f32,
    /// Inclusive range of words per document.
    pub words_per_doc: (usize, usize),
    /// Pareto tail exponent for degree weights (larger = more uniform).
    pub degree_exponent: f32,
    /// Fraction of nodes with *mixed* class membership: a mixed node keeps
    /// its primary label but draws half of its topic words and half of its
    /// edge endpoints from a secondary class. These are the genuinely
    /// ambiguous near-boundary nodes that cap attainable accuracy (real
    /// citation networks have them; a generator without them lets GCN reach
    /// ~96%, far above the paper's 81.8% Cora ceiling).
    pub class_mixing: f32,
    /// Labeled training nodes per class (Planetoid protocol).
    pub train_per_class: usize,
    /// Validation-set size.
    pub val_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Default generation seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Cora-like: 2708 nodes, 1433 features, ~5429 edges, 7 classes
    /// (paper Table 2).
    pub fn cora_sim() -> Self {
        Self {
            name: "cora-sim",
            n: 2708,
            num_classes: 7,
            num_features: 1433,
            avg_degree: 4.0,
            homophily: 0.87,
            feature_purity: 0.62,
            words_per_doc: (8, 24),
            degree_exponent: 2.5,
            class_mixing: 0.42,
            train_per_class: 20,
            val_size: 500,
            test_size: 1000,
            seed: 0xC04A,
        }
    }

    /// Citeseer-like: 3327 nodes, 3703 features, ~4732 edges, 6 classes.
    pub fn citeseer_sim() -> Self {
        Self {
            name: "citeseer-sim",
            n: 3327,
            num_classes: 6,
            num_features: 3703,
            avg_degree: 2.84,
            homophily: 0.85,
            feature_purity: 0.63,
            words_per_doc: (6, 20),
            degree_exponent: 2.5,
            class_mixing: 0.38,
            train_per_class: 20,
            val_size: 500,
            test_size: 1000,
            seed: 0xC17E,
        }
    }

    /// Pubmed-like: 19717 nodes, 500 features, ~44338 edges, 3 classes.
    pub fn pubmed_sim() -> Self {
        Self {
            name: "pubmed-sim",
            n: 19717,
            num_classes: 3,
            num_features: 500,
            avg_degree: 4.5,
            homophily: 0.85,
            feature_purity: 0.55,
            words_per_doc: (10, 30),
            degree_exponent: 2.5,
            class_mixing: 0.48,
            train_per_class: 20,
            val_size: 500,
            test_size: 1000,
            seed: 0x9B3D,
        }
    }

    /// NELL-like, scaled to harness size: 8000 nodes, 4096 sparse features,
    /// 42 classes, 10% label rate per class (paper's NELL protocol). The
    /// full-size variant is [`SynthConfig::nell_sim_full`].
    pub fn nell_sim() -> Self {
        Self {
            name: "nell-sim",
            n: 8000,
            num_classes: 42,
            num_features: 4096,
            avg_degree: 8.0,
            homophily: 0.70,
            feature_purity: 0.55,
            words_per_doc: (3, 10),
            degree_exponent: 2.2,
            class_mixing: 0.50,
            train_per_class: 19, // ≈10% of 8000/42 per class
            val_size: 500,
            test_size: 1000,
            seed: 0x4E11,
        }
    }

    /// Full-size NELL (65755 nodes, 61278 features, 210 classes). Slow on
    /// CPU; provided for completeness.
    pub fn nell_sim_full() -> Self {
        Self {
            name: "nell-sim-full",
            n: 65755,
            num_classes: 210,
            num_features: 61278,
            avg_degree: 8.1,
            homophily: 0.90,
            feature_purity: 0.55,
            words_per_doc: (2, 6),
            degree_exponent: 2.2,
            class_mixing: 0.28,
            train_per_class: 31, // ≈10% of 65755/210 per class
            val_size: 500,
            test_size: 1000,
            seed: 0x4E12,
        }
    }

    /// A small dataset for unit/integration tests (fast to train on).
    pub fn tiny() -> Self {
        Self {
            name: "tiny",
            n: 300,
            num_classes: 3,
            num_features: 64,
            avg_degree: 6.0,
            homophily: 0.85,
            feature_purity: 0.7,
            words_per_doc: (4, 10),
            degree_exponent: 2.5,
            class_mixing: 0.20,
            train_per_class: 5,
            val_size: 60,
            test_size: 100,
            seed: 0x7171,
        }
    }

    /// All four paper datasets in Table 2 order.
    pub fn paper_datasets() -> Vec<SynthConfig> {
        vec![
            Self::cora_sim(),
            Self::citeseer_sim(),
            Self::pubmed_sim(),
            Self::nell_sim(),
        ]
    }

    /// Generate the dataset with this configuration's seed.
    pub fn generate(&self) -> Dataset {
        let mut rng = rdd_tensor::seeded_rng(self.seed);
        generate(self, &mut rng)
    }

    /// Generate with an explicit seed override (for repeated-trial runs).
    pub fn generate_with_seed(&self, seed: u64) -> Dataset {
        let mut rng = rdd_tensor::seeded_rng(seed);
        generate(self, &mut rng)
    }
}

/// Sample an index from cumulative weights via binary search.
fn sample_cum(cum: &[f64], total: f64, rng: &mut impl Rng) -> usize {
    let x = rng.gen::<f64>() * total;
    match cum.binary_search_by(|&c| c.partial_cmp(&x).expect("no NaN weights")) {
        Ok(i) => (i + 1).min(cum.len() - 1),
        Err(i) => i.min(cum.len() - 1),
    }
}

/// Generate a dataset from `cfg` using `rng`.
pub fn generate<R: Rng>(cfg: &SynthConfig, rng: &mut R) -> Dataset {
    let n = cfg.n;
    let k = cfg.num_classes;
    assert!(k >= 2, "need at least two classes");
    assert!(
        n >= k * (cfg.train_per_class + 2),
        "graph too small for split"
    );

    // --- class assignment: balanced round-robin ---
    let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    // A fixed round-robin keeps classes balanced; node ids are later
    // irrelevant because edges and features are sampled, not positional.

    // Mixed-membership nodes: a `class_mixing` fraction keeps its primary
    // label but behaves half the time like a secondary class, in both edge
    // formation and word choice. These near-boundary nodes bound attainable
    // accuracy the way genuinely ambiguous papers do in real citation data.
    let secondary: Vec<Option<usize>> = (0..n)
        .map(|i| {
            if rng.gen::<f32>() < cfg.class_mixing {
                let mut c2 = rng.gen_range(0..k);
                if c2 == labels[i] {
                    c2 = (c2 + 1) % k;
                }
                Some(c2)
            } else {
                None
            }
        })
        .collect();
    // The class a node momentarily acts as (for one edge draw or one word).
    let momentary_class = |i: usize, rng: &mut R| -> usize {
        match secondary[i] {
            Some(c2) if rng.gen::<f32>() < 0.5 => c2,
            _ => labels[i],
        }
    };

    // --- degree weights: Pareto tail, clamped ---
    let alpha = cfg.degree_exponent as f64;
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            u.powf(-1.0 / alpha).min(30.0)
        })
        .collect();

    // Cumulative weights: global and per class.
    let mut cum_global = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for &w in &weights {
        acc += w;
        cum_global.push(acc);
    }
    let total_global = acc;

    let mut class_nodes: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in labels.iter().enumerate() {
        class_nodes[c].push(i);
    }
    let mut cum_class: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut total_class = vec![0.0f64; k];
    for c in 0..k {
        let mut cum = Vec::with_capacity(class_nodes[c].len());
        let mut a = 0.0;
        for &i in &class_nodes[c] {
            a += weights[i];
            cum.push(a);
        }
        total_class[c] = a;
        cum_class.push(cum);
    }

    // --- edges: degree-corrected planted partition ---
    let m_target = ((n as f32 * cfg.avg_degree) / 2.0).round() as usize;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(m_target);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m_target * 2);
    let mut attempts = 0usize;
    let max_attempts = m_target * 50;
    while edges.len() < m_target && attempts < max_attempts {
        attempts += 1;
        let i = sample_cum(&cum_global, total_global, rng);
        // A mixed node half the time forms edges as its secondary class.
        let ci = momentary_class(i, rng);
        let j = if rng.gen::<f32>() < cfg.homophily {
            // Intra-class endpoint (w.r.t. the momentary class).
            class_nodes[ci][sample_cum(&cum_class[ci], total_class[ci], rng)]
        } else {
            // Inter-class endpoint: resample until the class differs.
            let mut j;
            loop {
                j = sample_cum(&cum_global, total_global, rng);
                if labels[j] != ci {
                    break;
                }
            }
            j
        };
        if i == j {
            continue;
        }
        let key = if i < j {
            (i as u32, j as u32)
        } else {
            (j as u32, i as u32)
        };
        if seen.insert(key) {
            edges.push((i, j));
        }
    }
    let graph = Graph::from_edges(n, &edges);

    // --- features: topic-model bag of words ---
    let d = cfg.num_features;
    let block = (d / k).max(1);
    let (wmin, wmax) = cfg.words_per_doc;
    assert!(wmin >= 1 && wmax >= wmin, "invalid words_per_doc range");
    let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(n * wmax);
    let mut doc: HashSet<usize> = HashSet::new();
    for i in 0..n {
        doc.clear();
        let len = rng.gen_range(wmin..=wmax);
        for _ in 0..len {
            let w = if rng.gen::<f32>() < cfg.feature_purity {
                // Each topic word independently comes from the node's
                // momentary class, so mixed nodes blend two topic blocks.
                let c = momentary_class(i, rng);
                let block_start = (c * block).min(d - block);
                block_start + rng.gen_range(0..block)
            } else {
                rng.gen_range(0..d)
            };
            doc.insert(w);
        }
        let inv = 1.0 / doc.len() as f32;
        for &w in &doc {
            triplets.push((i, w, inv));
        }
    }
    let features = CsrMatrix::from_triplets(n, d, &triplets);

    // --- Planetoid split ---
    let (train_idx, val_idx, test_idx) = planetoid_split(
        &labels,
        k,
        cfg.train_per_class,
        cfg.val_size,
        cfg.test_size,
        rng,
    );

    Dataset {
        name: cfg.name.to_string(),
        graph,
        features,
        labels,
        num_classes: k,
        train_idx,
        val_idx,
        test_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_respects_config() {
        let cfg = SynthConfig::tiny();
        let d = cfg.generate();
        assert_eq!(d.n(), 300);
        assert_eq!(d.num_classes, 3);
        assert_eq!(d.num_features(), 64);
        assert_eq!(d.train_idx.len(), 15);
        assert_eq!(d.val_idx.len(), 60);
        assert_eq!(d.test_idx.len(), 100);
    }

    #[test]
    fn homophily_close_to_target_without_mixing() {
        let mut cfg = SynthConfig::tiny();
        cfg.class_mixing = 0.0;
        let d = cfg.generate();
        let h = d.graph.edge_homophily(&d.labels);
        assert!(
            (h - cfg.homophily).abs() < 0.10,
            "homophily {h} too far from target {}",
            cfg.homophily
        );
    }

    #[test]
    fn class_mixing_erodes_measured_homophily() {
        // Mixed-membership endpoints act as their secondary class half the
        // time, so measured primary-label homophily sits below the
        // configured momentary-class homophily — by roughly mixing/2 per
        // endpoint — but must stay well above the inter-class floor.
        let cfg = SynthConfig::tiny();
        let d = cfg.generate();
        let h = d.graph.edge_homophily(&d.labels);
        assert!(h < cfg.homophily, "mixing should erode homophily (got {h})");
        assert!(
            h > cfg.homophily - 0.3,
            "homophily {h} eroded far more than mixing {} explains",
            cfg.class_mixing
        );
    }

    #[test]
    fn avg_degree_close_to_target() {
        let cfg = SynthConfig::tiny();
        let d = cfg.generate();
        let avg = d.graph.avg_degree();
        assert!(
            (avg - cfg.avg_degree).abs() / cfg.avg_degree < 0.15,
            "avg degree {avg}"
        );
    }

    #[test]
    fn features_row_normalized() {
        let d = SynthConfig::tiny().generate();
        for (i, s) in d.features.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-4, "feature row {i} sums to {s}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::tiny();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.train_idx, b.train_idx);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.features.nnz(), b.features.nnz());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig::tiny();
        let a = cfg.generate_with_seed(1);
        let b = cfg.generate_with_seed(2);
        assert_ne!(a.train_idx, b.train_idx);
    }

    #[test]
    fn cora_sim_matches_table2_shape() {
        let cfg = SynthConfig::cora_sim();
        assert_eq!(cfg.n, 2708);
        assert_eq!(cfg.num_features, 1433);
        assert_eq!(cfg.num_classes, 7);
    }

    #[test]
    fn class_blocks_are_informative() {
        // The mean feature block index of class-c nodes should match c's
        // block, i.e., features carry class signal.
        let cfg = SynthConfig::tiny();
        let d = cfg.generate();
        let block = 64 / 3;
        let mut hits = 0usize;
        let mut total = 0usize;
        for i in 0..d.n() {
            let c = d.labels[i];
            let start = c * block;
            let (cols, _) = d.features.row(i);
            for &w in cols {
                total += 1;
                if (w as usize) >= start && (w as usize) < start + block {
                    hits += 1;
                }
            }
        }
        let frac = hits as f32 / total as f32;
        assert!(frac > 0.5, "class block fraction only {frac}");
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;

    /// Full-size NELL generation (65,755 nodes, 61,278 features): verifies
    /// the generator scales to the paper's largest dataset. Ignored by
    /// default — takes a few seconds and ~1 GB transiently.
    /// Run with `cargo test -p rdd-graph -- --ignored`.
    #[test]
    #[ignore = "large allocation; run explicitly"]
    fn nell_full_size_generates() {
        let cfg = SynthConfig::nell_sim_full();
        let d = cfg.generate();
        assert_eq!(d.n(), 65755);
        assert_eq!(d.num_features(), 61278);
        assert_eq!(d.num_classes, 210);
        assert!(d.graph.num_edges() > 200_000);
        assert_eq!(d.train_idx.len(), 210 * 31);
    }

    /// Pubmed-size generation runs in bounded time (regression guard for
    /// the edge-sampling rejection loop).
    #[test]
    fn pubmed_size_generates_quickly() {
        let start = std::time::Instant::now();
        let d = SynthConfig::pubmed_sim().generate();
        assert_eq!(d.n(), 19717);
        assert!(
            start.elapsed().as_secs() < 30,
            "generation took {:?}",
            start.elapsed()
        );
    }
}
