//! Plain-text dataset IO.
//!
//! For users who have real graph data, datasets round-trip through a simple
//! directory layout of TSV files (one value per line-column, `#` comments
//! allowed):
//!
//! * `meta.tsv` — `n`, `num_features`, `num_classes` as `key\tvalue` rows.
//! * `edges.tsv` — one `src\tdst` pair per line (undirected).
//! * `features.tsv` — sparse rows: `node\tfeature\tvalue`.
//! * `labels.tsv` — `node\tclass`.
//! * `split.tsv` — `node\t{train|val|test}`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use rdd_tensor::CsrMatrix;

use crate::dataset::Dataset;
use crate::graph::Graph;

/// Errors raised while loading a dataset directory.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed content at `file:line`.
    Parse {
        /// Offending file.
        file: String,
        /// 1-indexed line (0 for whole-file problems).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "{file}:{line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_lines<T>(
    path: &Path,
    mut parse: impl FnMut(&[&str]) -> Result<T, String>,
) -> Result<Vec<T>, IoError> {
    let text = fs::read_to_string(path)?;
    let fname = path.display().to_string();
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        out.push(parse(&fields).map_err(|message| IoError::Parse {
            file: fname.clone(),
            line: ln + 1,
            message,
        })?);
    }
    Ok(out)
}

/// Save `dataset` into directory `dir` (created if missing).
pub fn save_dataset(dataset: &Dataset, dir: &Path) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    let mut meta = String::new();
    let _ = writeln!(meta, "n\t{}", dataset.n());
    let _ = writeln!(meta, "num_features\t{}", dataset.num_features());
    let _ = writeln!(meta, "num_classes\t{}", dataset.num_classes);
    let _ = writeln!(meta, "name\t{}", dataset.name);
    fs::write(dir.join("meta.tsv"), meta)?;

    let mut edges = String::new();
    for &(a, b) in dataset.graph.edges() {
        let _ = writeln!(edges, "{a}\t{b}");
    }
    fs::write(dir.join("edges.tsv"), edges)?;

    let mut feats = String::new();
    for (r, c, v) in dataset.features.iter() {
        let _ = writeln!(feats, "{r}\t{c}\t{v}");
    }
    fs::write(dir.join("features.tsv"), feats)?;

    let mut labels = String::new();
    for (i, &c) in dataset.labels.iter().enumerate() {
        let _ = writeln!(labels, "{i}\t{c}");
    }
    fs::write(dir.join("labels.tsv"), labels)?;

    let mut split = String::new();
    for &i in &dataset.train_idx {
        let _ = writeln!(split, "{i}\ttrain");
    }
    for &i in &dataset.val_idx {
        let _ = writeln!(split, "{i}\tval");
    }
    for &i in &dataset.test_idx {
        let _ = writeln!(split, "{i}\ttest");
    }
    fs::write(dir.join("split.tsv"), split)?;
    Ok(())
}

/// Load a dataset from the directory layout written by [`save_dataset`].
pub fn load_dataset(dir: &Path) -> Result<Dataset, IoError> {
    let meta = parse_lines(&dir.join("meta.tsv"), |f| {
        if f.len() != 2 {
            return Err("expected key\\tvalue".into());
        }
        Ok((f[0].to_string(), f[1].to_string()))
    })?;
    let get = |key: &str| -> Result<String, IoError> {
        meta.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| IoError::Parse {
                file: "meta.tsv".into(),
                line: 0,
                message: format!("missing key {key}"),
            })
    };
    let n: usize = get("n")?.parse().map_err(|e| IoError::Parse {
        file: "meta.tsv".into(),
        line: 0,
        message: format!("bad n: {e}"),
    })?;
    let num_features: usize = get("num_features")?.parse().unwrap_or(0);
    let num_classes: usize = get("num_classes")?.parse().unwrap_or(0);
    let name = get("name").unwrap_or_else(|_| "unnamed".into());

    let edges: Vec<(usize, usize)> = parse_lines(&dir.join("edges.tsv"), |f| {
        if f.len() != 2 {
            return Err("expected src\\tdst".into());
        }
        let a = f[0].parse().map_err(|e| format!("bad src: {e}"))?;
        let b = f[1].parse().map_err(|e| format!("bad dst: {e}"))?;
        Ok((a, b))
    })?;

    let feats: Vec<(usize, usize, f32)> = parse_lines(&dir.join("features.tsv"), |f| {
        if f.len() != 3 {
            return Err("expected node\\tfeature\\tvalue".into());
        }
        Ok((
            f[0].parse().map_err(|e| format!("bad node: {e}"))?,
            f[1].parse().map_err(|e| format!("bad feature: {e}"))?,
            f[2].parse().map_err(|e| format!("bad value: {e}"))?,
        ))
    })?;

    let label_rows: Vec<(usize, usize)> = parse_lines(&dir.join("labels.tsv"), |f| {
        if f.len() != 2 {
            return Err("expected node\\tclass".into());
        }
        Ok((
            f[0].parse().map_err(|e| format!("bad node: {e}"))?,
            f[1].parse().map_err(|e| format!("bad class: {e}"))?,
        ))
    })?;
    let mut labels = vec![0usize; n];
    for (i, c) in label_rows {
        if i >= n {
            return Err(IoError::Parse {
                file: "labels.tsv".into(),
                line: 0,
                message: format!("node {i} out of bounds"),
            });
        }
        labels[i] = c;
    }

    let split_rows: Vec<(usize, String)> = parse_lines(&dir.join("split.tsv"), |f| {
        if f.len() != 2 {
            return Err("expected node\\tsplit".into());
        }
        Ok((
            f[0].parse().map_err(|e| format!("bad node: {e}"))?,
            f[1].to_string(),
        ))
    })?;
    let mut train_idx = Vec::new();
    let mut val_idx = Vec::new();
    let mut test_idx = Vec::new();
    for (i, s) in split_rows {
        match s.as_str() {
            "train" => train_idx.push(i),
            "val" => val_idx.push(i),
            "test" => test_idx.push(i),
            other => {
                return Err(IoError::Parse {
                    file: "split.tsv".into(),
                    line: 0,
                    message: format!("unknown split {other}"),
                })
            }
        }
    }

    Ok(Dataset {
        name,
        graph: Graph::from_edges(n, &edges),
        features: CsrMatrix::from_triplets(n, num_features, &feats),
        labels,
        num_classes,
        train_idx,
        val_idx,
        test_idx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    #[test]
    fn save_load_roundtrip() {
        let d = SynthConfig::tiny().generate();
        let dir = std::env::temp_dir().join(format!("rdd_io_test_{}", std::process::id()));
        save_dataset(&d, &dir).expect("save");
        let l = load_dataset(&dir).expect("load");
        assert_eq!(l.n(), d.n());
        assert_eq!(l.num_classes, d.num_classes);
        assert_eq!(l.labels, d.labels);
        assert_eq!(l.train_idx, d.train_idx);
        assert_eq!(l.val_idx, d.val_idx);
        assert_eq!(l.test_idx, d.test_idx);
        assert_eq!(l.graph.num_edges(), d.graph.num_edges());
        assert_eq!(l.features.nnz(), d.features.nnz());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        let err = load_dataset(Path::new("/nonexistent/rdd-data"));
        assert!(err.is_err());
    }
}
