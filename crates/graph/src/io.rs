//! Plain-text dataset IO.
//!
//! For users who have real graph data, datasets round-trip through a simple
//! directory layout of TSV files (one value per line-column, `#` comments
//! allowed):
//!
//! * `meta.tsv` — `n`, `num_features`, `num_classes` as `key\tvalue` rows.
//! * `edges.tsv` — one `src\tdst` pair per line (undirected).
//! * `features.tsv` — sparse rows: `node\tfeature\tvalue`.
//! * `labels.tsv` — `node\tclass`.
//! * `split.tsv` — `node\t{train|val|test}`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use rdd_tensor::CsrMatrix;

use crate::dataset::Dataset;
use crate::graph::Graph;

/// Errors raised while loading a dataset directory.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed content at `file:line`.
    Parse {
        /// Offending file.
        file: String,
        /// 1-indexed line (0 for whole-file problems).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "{file}:{line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_lines<T>(
    path: &Path,
    mut parse: impl FnMut(&[&str]) -> Result<T, String>,
) -> Result<Vec<T>, IoError> {
    let text = fs::read_to_string(path)?;
    let fname = path.display().to_string();
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        out.push(parse(&fields).map_err(|message| IoError::Parse {
            file: fname.clone(),
            line: ln + 1,
            message,
        })?);
    }
    Ok(out)
}

/// Save `dataset` into directory `dir` (created if missing).
pub fn save_dataset(dataset: &Dataset, dir: &Path) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    let mut meta = String::new();
    let _ = writeln!(meta, "n\t{}", dataset.n());
    let _ = writeln!(meta, "num_features\t{}", dataset.num_features());
    let _ = writeln!(meta, "num_classes\t{}", dataset.num_classes);
    let _ = writeln!(meta, "name\t{}", dataset.name);
    fs::write(dir.join("meta.tsv"), meta)?;

    let mut edges = String::new();
    for &(a, b) in dataset.graph.edges() {
        let _ = writeln!(edges, "{a}\t{b}");
    }
    fs::write(dir.join("edges.tsv"), edges)?;

    let mut feats = String::new();
    for (r, c, v) in dataset.features.iter() {
        let _ = writeln!(feats, "{r}\t{c}\t{v}");
    }
    fs::write(dir.join("features.tsv"), feats)?;

    let mut labels = String::new();
    for (i, &c) in dataset.labels.iter().enumerate() {
        let _ = writeln!(labels, "{i}\t{c}");
    }
    fs::write(dir.join("labels.tsv"), labels)?;

    let mut split = String::new();
    for &i in &dataset.train_idx {
        let _ = writeln!(split, "{i}\ttrain");
    }
    for &i in &dataset.val_idx {
        let _ = writeln!(split, "{i}\tval");
    }
    for &i in &dataset.test_idx {
        let _ = writeln!(split, "{i}\ttest");
    }
    fs::write(dir.join("split.tsv"), split)?;
    Ok(())
}

/// Load a dataset from the directory layout written by [`save_dataset`].
pub fn load_dataset(dir: &Path) -> Result<Dataset, IoError> {
    let meta = parse_lines(&dir.join("meta.tsv"), |f| {
        if f.len() != 2 {
            return Err("expected key\\tvalue".into());
        }
        Ok((f[0].to_string(), f[1].to_string()))
    })?;
    let get = |key: &str| -> Result<String, IoError> {
        meta.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| IoError::Parse {
                file: "meta.tsv".into(),
                line: 0,
                message: format!("missing key {key}"),
            })
    };
    let meta_num = |key: &str| -> Result<usize, IoError> {
        let v = get(key)?;
        v.parse().map_err(|e| IoError::Parse {
            file: "meta.tsv".into(),
            line: 0,
            message: format!("bad {key} {v:?}: {e}"),
        })
    };
    let n = meta_num("n")?;
    let num_features = meta_num("num_features")?;
    let num_classes = meta_num("num_classes")?;
    let name = get("name").unwrap_or_else(|_| "unnamed".into());

    // Every record below is validated against the meta declaration before
    // any matrix/graph construction: a malformed directory must surface as
    // an `IoError` naming the file and line, never as a panic inside
    // `Graph::from_edges` or `CsrMatrix::from_triplets`.
    let edges: Vec<(usize, usize)> = parse_lines(&dir.join("edges.tsv"), |f| {
        if f.len() != 2 {
            return Err("expected src\\tdst".into());
        }
        let a: usize = f[0].parse().map_err(|e| format!("bad src: {e}"))?;
        let b: usize = f[1].parse().map_err(|e| format!("bad dst: {e}"))?;
        if a >= n || b >= n {
            return Err(format!("edge ({a}, {b}) out of bounds for n = {n}"));
        }
        Ok((a, b))
    })?;

    let mut seen_feats = std::collections::HashSet::new();
    let feats: Vec<(usize, usize, f32)> = parse_lines(&dir.join("features.tsv"), |f| {
        if f.len() != 3 {
            return Err("expected node\\tfeature\\tvalue".into());
        }
        let node: usize = f[0].parse().map_err(|e| format!("bad node: {e}"))?;
        let col: usize = f[1].parse().map_err(|e| format!("bad feature: {e}"))?;
        let value: f32 = f[2].parse().map_err(|e| format!("bad value: {e}"))?;
        if node >= n {
            return Err(format!("feature node {node} out of bounds for n = {n}"));
        }
        if col >= num_features {
            return Err(format!(
                "feature column {col} out of bounds for num_features = {num_features}"
            ));
        }
        if !value.is_finite() {
            return Err(format!(
                "non-finite feature value {value} at ({node}, {col})"
            ));
        }
        if !seen_feats.insert((node, col)) {
            return Err(format!("duplicate feature entry for ({node}, {col})"));
        }
        Ok((node, col, value))
    })?;

    let label_rows: Vec<(usize, usize)> = parse_lines(&dir.join("labels.tsv"), |f| {
        if f.len() != 2 {
            return Err("expected node\\tclass".into());
        }
        let node: usize = f[0].parse().map_err(|e| format!("bad node: {e}"))?;
        let class: usize = f[1].parse().map_err(|e| format!("bad class: {e}"))?;
        if node >= n {
            return Err(format!("label node {node} out of bounds for n = {n}"));
        }
        if class >= num_classes {
            return Err(format!(
                "class id {class} out of bounds for num_classes = {num_classes}"
            ));
        }
        Ok((node, class))
    })?;
    let mut labels = vec![0usize; n];
    for (i, c) in label_rows {
        labels[i] = c;
    }

    let split_rows: Vec<(usize, String)> = parse_lines(&dir.join("split.tsv"), |f| {
        if f.len() != 2 {
            return Err("expected node\\tsplit".into());
        }
        let node: usize = f[0].parse().map_err(|e| format!("bad node: {e}"))?;
        if node >= n {
            return Err(format!("split node {node} out of bounds for n = {n}"));
        }
        match f[1] {
            "train" | "val" | "test" => Ok((node, f[1].to_string())),
            other => Err(format!("unknown split {other:?} (expected train|val|test)")),
        }
    })?;
    let mut train_idx = Vec::new();
    let mut val_idx = Vec::new();
    let mut test_idx = Vec::new();
    for (i, s) in split_rows {
        match s.as_str() {
            "train" => train_idx.push(i),
            "val" => val_idx.push(i),
            _ => test_idx.push(i),
        }
    }

    Ok(Dataset {
        name,
        graph: Graph::from_edges(n, &edges),
        features: CsrMatrix::from_triplets(n, num_features, &feats),
        labels,
        num_classes,
        train_idx,
        val_idx,
        test_idx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    #[test]
    fn save_load_roundtrip() {
        let d = SynthConfig::tiny().generate();
        let dir = std::env::temp_dir().join(format!("rdd_io_test_{}", std::process::id()));
        save_dataset(&d, &dir).expect("save");
        let l = load_dataset(&dir).expect("load");
        assert_eq!(l.n(), d.n());
        assert_eq!(l.num_classes, d.num_classes);
        assert_eq!(l.labels, d.labels);
        assert_eq!(l.train_idx, d.train_idx);
        assert_eq!(l.val_idx, d.val_idx);
        assert_eq!(l.test_idx, d.test_idx);
        assert_eq!(l.graph.num_edges(), d.graph.num_edges());
        assert_eq!(l.features.nnz(), d.features.nnz());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        let err = load_dataset(Path::new("/nonexistent/rdd-data"));
        assert!(err.is_err());
    }

    /// Write a valid tiny dataset, corrupt one file, and assert the load
    /// reports an `IoError::Parse` mentioning `needle` instead of panicking.
    fn assert_rejects(tag: &str, file: &str, content: &str, needle: &str) {
        let d = SynthConfig::tiny().generate();
        let dir = std::env::temp_dir().join(format!("rdd_io_bad_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        save_dataset(&d, &dir).expect("save");
        std::fs::write(dir.join(file), content).expect("corrupt");
        let err = load_dataset(&dir).expect_err("corrupt dataset must not load");
        let msg = err.to_string();
        assert!(
            matches!(err, IoError::Parse { .. }) && msg.contains(needle),
            "{tag}: expected Parse error mentioning {needle:?}, got: {msg}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn edge_endpoint_out_of_bounds_is_rejected() {
        assert_rejects("edge_oob", "edges.tsv", "0\t999999\n", "out of bounds");
    }

    #[test]
    fn feature_column_out_of_bounds_is_rejected() {
        assert_rejects(
            "feat_col",
            "features.tsv",
            "0\t999999\t1.0\n",
            "out of bounds",
        );
    }

    #[test]
    fn feature_node_out_of_bounds_is_rejected() {
        assert_rejects(
            "feat_node",
            "features.tsv",
            "999999\t0\t1.0\n",
            "out of bounds",
        );
    }

    #[test]
    fn non_finite_feature_value_is_rejected() {
        assert_rejects("feat_nan", "features.tsv", "0\t0\tNaN\n", "non-finite");
    }

    #[test]
    fn duplicate_feature_entry_is_rejected() {
        assert_rejects(
            "feat_dup",
            "features.tsv",
            "0\t0\t1.0\n0\t0\t2.0\n",
            "duplicate",
        );
    }

    #[test]
    fn label_class_out_of_bounds_is_rejected() {
        assert_rejects("label_class", "labels.tsv", "0\t999999\n", "out of bounds");
    }

    #[test]
    fn split_node_out_of_bounds_is_rejected() {
        assert_rejects(
            "split_node",
            "split.tsv",
            "999999\ttrain\n",
            "out of bounds",
        );
    }

    #[test]
    fn bad_meta_count_is_rejected_not_defaulted() {
        let d = SynthConfig::tiny().generate();
        let dir = std::env::temp_dir().join(format!("rdd_io_bad_meta_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        save_dataset(&d, &dir).expect("save");
        let meta = format!(
            "n\t{}\nnum_features\tlots\nnum_classes\t{}\n",
            d.n(),
            d.num_classes
        );
        std::fs::write(dir.join("meta.tsv"), meta).expect("corrupt");
        let err = load_dataset(&dir).expect_err("bad num_features must not default to 0");
        assert!(err.to_string().contains("num_features"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
