//! A semi-supervised node-classification dataset and the Planetoid-style
//! split protocol the paper evaluates with.

use rand::seq::SliceRandom;
use rand::Rng;
use rdd_tensor::CsrMatrix;

use crate::graph::Graph;

/// Graph + features + labels + a train/val/test split.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (preset name or user label).
    pub name: String,
    /// The undirected graph.
    pub graph: Graph,
    /// Row-normalized sparse feature matrix, `n x d`.
    pub features: CsrMatrix,
    /// Ground-truth class of every node.
    pub labels: Vec<usize>,
    /// Number of target classes.
    pub num_classes: usize,
    /// Labeled training nodes (the only labels a model may look at).
    pub train_idx: Vec<usize>,
    /// Validation nodes for early stopping / hyperparameter tuning.
    pub val_idx: Vec<usize>,
    /// Held-out test nodes.
    pub test_idx: Vec<usize>,
}

impl Dataset {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Fraction of nodes carrying a training label.
    pub fn label_rate(&self) -> f32 {
        self.train_idx.len() as f32 / self.n() as f32
    }

    /// Unlabeled = everything outside the training set (val/test included,
    /// matching the transductive protocol: their labels are never trained on).
    pub fn unlabeled_idx(&self) -> Vec<usize> {
        let mut is_train = vec![false; self.n()];
        for &i in &self.train_idx {
            is_train[i] = true;
        }
        (0..self.n()).filter(|&i| !is_train[i]).collect()
    }

    /// Classification accuracy of `predictions` over the test split.
    pub fn test_accuracy(&self, predictions: &[usize]) -> f32 {
        accuracy_over(&self.labels, predictions, &self.test_idx)
    }

    /// Classification accuracy of `predictions` over the validation split.
    pub fn val_accuracy(&self, predictions: &[usize]) -> f32 {
        accuracy_over(&self.labels, predictions, &self.val_idx)
    }

    /// Planetoid split: `per_class` labeled nodes per class, then `val` and
    /// `test` nodes sampled from the remainder. Panics when a class has
    /// fewer than `per_class` nodes or the remainder is too small.
    pub fn resplit(&mut self, per_class: usize, val: usize, test: usize, rng: &mut impl Rng) {
        let (train, val_idx, test_idx) =
            planetoid_split(&self.labels, self.num_classes, per_class, val, test, rng);
        self.train_idx = train;
        self.val_idx = val_idx;
        self.test_idx = test_idx;
    }

    /// Keep the current val/test sets but resample the training set to
    /// `per_class` labeled nodes per class from outside val/test. Used by
    /// the label-scarcity sweeps (Figures 1 and 6), which hold evaluation
    /// sets fixed while varying the label budget.
    pub fn resample_train(&mut self, per_class: usize, rng: &mut impl Rng) {
        let mut excluded = vec![false; self.n()];
        for &i in self.val_idx.iter().chain(&self.test_idx) {
            excluded[i] = true;
        }
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for i in 0..self.n() {
            if !excluded[i] {
                by_class[self.labels[i]].push(i);
            }
        }
        let mut train = Vec::with_capacity(per_class * self.num_classes);
        for (c, pool) in by_class.iter_mut().enumerate() {
            assert!(
                pool.len() >= per_class,
                "class {c} has only {} candidates for {per_class} labels",
                pool.len()
            );
            pool.shuffle(rng);
            train.extend_from_slice(&pool[..per_class]);
        }
        train.sort_unstable();
        self.train_idx = train;
    }
}

/// Accuracy of `predictions` against `labels` restricted to `idx`.
pub fn accuracy_over(labels: &[usize], predictions: &[usize], idx: &[usize]) -> f32 {
    assert_eq!(
        labels.len(),
        predictions.len(),
        "prediction length mismatch"
    );
    if idx.is_empty() {
        return 0.0;
    }
    let correct = idx.iter().filter(|&&i| labels[i] == predictions[i]).count();
    correct as f32 / idx.len() as f32
}

/// The Planetoid split used throughout the paper: `per_class` labeled
/// training nodes per class, then `val` validation and `test` test nodes
/// drawn from the remaining pool.
pub fn planetoid_split(
    labels: &[usize],
    num_classes: usize,
    per_class: usize,
    val: usize,
    test: usize,
    rng: &mut impl Rng,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n = labels.len();
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &c) in labels.iter().enumerate() {
        assert!(c < num_classes, "label {c} out of range");
        by_class[c].push(i);
    }
    let mut train = Vec::with_capacity(per_class * num_classes);
    let mut taken = vec![false; n];
    for (c, pool) in by_class.iter_mut().enumerate() {
        assert!(
            pool.len() >= per_class,
            "class {c} has {} nodes, needs {per_class}",
            pool.len()
        );
        pool.shuffle(rng);
        for &i in &pool[..per_class] {
            taken[i] = true;
            train.push(i);
        }
    }
    let mut rest: Vec<usize> = (0..n).filter(|&i| !taken[i]).collect();
    assert!(rest.len() >= val + test, "not enough nodes for val+test");
    rest.shuffle(rng);
    let mut val_idx: Vec<usize> = rest[..val].to_vec();
    let mut test_idx: Vec<usize> = rest[val..val + test].to_vec();
    train.sort_unstable();
    val_idx.sort_unstable();
    test_idx.sort_unstable();
    (train, val_idx, test_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_tensor::seeded_rng;

    fn toy_dataset() -> Dataset {
        let n = 60;
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let graph = Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let features = CsrMatrix::identity(n);
        let mut rng = seeded_rng(3);
        let (train, val, test) = planetoid_split(&labels, 3, 4, 15, 15, &mut rng);
        Dataset {
            name: "toy".into(),
            graph,
            features,
            labels,
            num_classes: 3,
            train_idx: train,
            val_idx: val,
            test_idx: test,
        }
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = toy_dataset();
        assert_eq!(d.train_idx.len(), 12);
        assert_eq!(d.val_idx.len(), 15);
        assert_eq!(d.test_idx.len(), 15);
        let mut seen = std::collections::HashSet::new();
        for &i in d.train_idx.iter().chain(&d.val_idx).chain(&d.test_idx) {
            assert!(seen.insert(i), "node {i} in two splits");
        }
    }

    #[test]
    fn split_is_class_balanced() {
        let d = toy_dataset();
        let mut per_class = [0usize; 3];
        for &i in &d.train_idx {
            per_class[d.labels[i]] += 1;
        }
        assert_eq!(per_class, [4, 4, 4]);
    }

    #[test]
    fn unlabeled_complements_train() {
        let d = toy_dataset();
        let u = d.unlabeled_idx();
        assert_eq!(u.len(), d.n() - d.train_idx.len());
        for &i in &d.train_idx {
            assert!(!u.contains(&i));
        }
    }

    #[test]
    fn accuracy_is_fraction_correct() {
        let labels = vec![0, 1, 2, 0];
        let preds = vec![0, 1, 0, 1];
        let acc = accuracy_over(&labels, &preds, &[0, 1, 2, 3]);
        assert!((acc - 0.5).abs() < 1e-6);
        assert_eq!(accuracy_over(&labels, &preds, &[]), 0.0);
    }

    #[test]
    fn resample_train_respects_eval_sets() {
        let mut d = toy_dataset();
        let val: std::collections::HashSet<_> = d.val_idx.iter().copied().collect();
        let test: std::collections::HashSet<_> = d.test_idx.iter().copied().collect();
        let mut rng = seeded_rng(9);
        d.resample_train(6, &mut rng);
        assert_eq!(d.train_idx.len(), 18);
        for &i in &d.train_idx {
            assert!(!val.contains(&i) && !test.contains(&i));
        }
        // Eval sets untouched.
        assert_eq!(d.val_idx.len(), 15);
        assert_eq!(d.test_idx.len(), 15);
    }

    #[test]
    fn label_rate_matches() {
        let d = toy_dataset();
        assert!((d.label_rate() - 12.0 / 60.0).abs() < 1e-6);
    }
}
