#![warn(missing_docs)]
//! # rdd-graph
//!
//! Graph substrate for the RDD (SIGMOD 2020) reproduction: undirected
//! graphs in CSR form, the GCN renormalized propagation operator, PageRank,
//! synthetic dataset generation calibrated to the paper's four benchmarks
//! (Cora, Citeseer, Pubmed, NELL), Planetoid splits and plain-text IO.
//!
//! ```
//! use rdd_graph::SynthConfig;
//!
//! let dataset = SynthConfig::tiny().generate();
//! assert_eq!(dataset.num_classes, 3);
//! let a_hat = dataset.graph.normalized_adjacency();
//! assert_eq!(a_hat.rows(), dataset.n());
//! ```

pub mod analysis;
pub mod dataset;
pub mod graph;
pub mod io;
pub mod stats;
pub mod synth;

pub use dataset::{accuracy_over, planetoid_split, Dataset};
pub use graph::Graph;
pub use stats::DatasetStats;
pub use synth::SynthConfig;
