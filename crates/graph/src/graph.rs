//! Undirected graph with the derived operators GCN training needs.
//!
//! The graph is stored once as a symmetric CSR adjacency (unit weights, no
//! self-loops) plus the unique undirected edge list `(i < j)`. The GCN
//! propagation operator Â = D^-1/2 (A + I) D^-1/2 is derived on demand and
//! cached by callers (it is constant across a whole experiment).

use rdd_tensor::CsrMatrix;

/// An undirected, unweighted graph.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    /// Symmetric 0/1 adjacency without self-loops.
    adj: CsrMatrix,
    /// Unique undirected edges with `i < j`.
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Build from an edge list. Self-loops are dropped; duplicate and
    /// reversed pairs are merged. `n` is the number of nodes.
    pub fn from_edges(n: usize, raw_edges: &[(usize, usize)]) -> Self {
        let mut edges: Vec<(u32, u32)> = raw_edges
            .iter()
            .filter(|&&(a, b)| a != b)
            .map(|&(a, b)| {
                assert!(a < n && b < n, "edge ({a},{b}) out of bounds for n={n}");
                if a < b {
                    (a as u32, b as u32)
                } else {
                    (b as u32, a as u32)
                }
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let mut triplets = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in &edges {
            triplets.push((a as usize, b as usize, 1.0));
            triplets.push((b as usize, a as usize, 1.0));
        }
        let adj = CsrMatrix::from_triplets(n, n, &triplets);
        Self { n, adj, edges }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of unique undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The unique undirected edge list (`i < j`).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// The symmetric adjacency in CSR form (no self-loops).
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Degree of node `i` (self-loops excluded).
    pub fn degree(&self, i: usize) -> usize {
        self.adj.row_nnz(i)
    }

    /// Neighbor ids of node `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        self.adj.row(i).0
    }

    /// Whether `(a, b)` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj.get(a, b) != 0.0
    }

    /// The symmetric GCN propagation operator
    /// `Â = D^-1/2 (A + I) D^-1/2` (Kipf & Welling renormalization trick).
    pub fn normalized_adjacency(&self) -> CsrMatrix {
        let mut triplets: Vec<(usize, usize, f32)> =
            Vec::with_capacity(self.edges.len() * 2 + self.n);
        // Degrees of A + I.
        let deg: Vec<f32> = (0..self.n).map(|i| (self.degree(i) + 1) as f32).collect();
        let inv_sqrt: Vec<f32> = deg.iter().map(|&d| 1.0 / d.sqrt()).collect();
        for &(a, b) in &self.edges {
            let (a, b) = (a as usize, b as usize);
            let w = inv_sqrt[a] * inv_sqrt[b];
            triplets.push((a, b, w));
            triplets.push((b, a, w));
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.n {
            triplets.push((i, i, inv_sqrt[i] * inv_sqrt[i]));
        }
        CsrMatrix::from_triplets(self.n, self.n, &triplets)
    }

    /// Random-walk transition matrix `D^-1 A` (used by label propagation and
    /// co-training's random walks). Dangling nodes get an empty row.
    pub fn transition_matrix(&self) -> CsrMatrix {
        self.adj.map_values(|r, _, v| {
            let d = self.degree(r) as f32;
            if d > 0.0 {
                v / d
            } else {
                0.0
            }
        })
    }

    /// PageRank by power iteration with damping `d` (the paper uses PageRank
    /// node importance in the ensemble weights, Eq. 12). Returns a
    /// probability vector.
    ///
    /// Dangling nodes redistribute their mass uniformly, so the result sums
    /// to 1 up to floating-point error.
    pub fn pagerank(&self, damping: f32, iterations: usize, tol: f32) -> Vec<f32> {
        let n = self.n;
        assert!(n > 0, "pagerank on empty graph");
        let uniform = 1.0 / n as f32;
        let mut rank = vec![uniform; n];
        // Transposed walk on the transition matrix P = D^-1 A: incoming mass
        // is P^T rank, computed by the parallel scatter kernel. Dangling
        // nodes have empty rows in P, so their mass is redistributed
        // uniformly by hand.
        let transition = self.transition_matrix();
        let dangling_nodes: Vec<usize> = (0..n).filter(|&i| self.degree(i) == 0).collect();
        for _ in 0..iterations {
            let mut next = transition.spmv_t(&rank);
            let dangling: f32 = dangling_nodes.iter().map(|&i| rank[i]).sum();
            let base = (1.0 - damping) * uniform + damping * dangling * uniform;
            let mut delta = 0.0f32;
            for (i, nx) in next.iter_mut().enumerate() {
                *nx = base + damping * *nx;
                delta += (*nx - rank[i]).abs();
            }
            rank = next;
            if delta < tol {
                break;
            }
        }
        rank
    }

    /// Connected component id of each node (BFS labelling, ids are dense
    /// from 0 in discovery order).
    pub fn connected_components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.n];
        let mut next_id = 0;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next_id;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in self.neighbors(u) {
                    let v = v as usize;
                    if comp[v] == usize::MAX {
                        comp[v] = next_id;
                        queue.push_back(v);
                    }
                }
            }
            next_id += 1;
        }
        comp
    }

    /// Fraction of edges whose endpoints share a label (edge homophily).
    pub fn edge_homophily(&self, labels: &[usize]) -> f32 {
        assert_eq!(labels.len(), self.n);
        if self.edges.is_empty() {
            return 0.0;
        }
        let same = self
            .edges
            .iter()
            .filter(|&&(a, b)| labels[a as usize] == labels[b as usize])
            .count();
        same as f32 / self.edges.len() as f32
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f32 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f32 / self.n as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        // 0 - 1 - 2
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn dedups_and_symmetrizes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2), "self-loop dropped");
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path3();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn normalized_adjacency_rows() {
        let g = path3();
        let a = g.normalized_adjacency();
        // Node 0: deg+1 = 2, node 1: deg+1 = 3.
        let d0 = 2.0f32;
        let d1 = 3.0f32;
        assert!((a.get(0, 0) - 1.0 / d0).abs() < 1e-6);
        assert!((a.get(0, 1) - 1.0 / (d0 * d1).sqrt()).abs() < 1e-6);
        assert!((a.get(1, 1) - 1.0 / d1).abs() < 1e-6);
        assert_eq!(a.get(0, 2), 0.0);
        // Symmetry.
        assert!((a.get(0, 1) - a.get(1, 0)).abs() < 1e-7);
    }

    #[test]
    fn pagerank_is_distribution_and_ranks_hub_highest() {
        // Star: 0 is the hub.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pr = g.pagerank(0.85, 100, 1e-9);
        let sum: f32 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "pagerank sums to {sum}");
        for i in 1..5 {
            assert!(pr[0] > pr[i], "hub must outrank leaf {i}");
        }
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = g.pagerank(0.85, 200, 1e-10);
        for &p in &pr {
            assert!((p - 0.25).abs() < 1e-4);
        }
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]); // node 2 isolated
        let pr = g.pagerank(0.85, 100, 1e-9);
        let sum: f32 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(pr[2] > 0.0);
    }

    #[test]
    fn components_found() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let c = g.connected_components();
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[3]);
    }

    #[test]
    fn homophily_counts_same_label_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let labels = [0, 0, 1, 1];
        let h = g.edge_homophily(&labels);
        assert!((h - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn transition_matrix_rows_sum_to_one() {
        let g = path3();
        let t = g.transition_matrix();
        for (i, s) in t.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
    }
}
