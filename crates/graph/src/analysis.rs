//! Structural graph analysis used to validate that the synthetic datasets
//! behave like their real counterparts: clustering, k-core structure,
//! degree assortativity and label-to-seed distance distributions.
//!
//! The `dataset_analysis` bench binary prints these per preset; DESIGN.md's
//! substitution table leans on them.

use std::collections::VecDeque;

use crate::graph::Graph;

/// Local clustering coefficient of node `i`: the fraction of its neighbor
/// pairs that are themselves connected. Nodes of degree < 2 score 0.
pub fn local_clustering(graph: &Graph, i: usize) -> f32 {
    let neighbors = graph.neighbors(i);
    let d = neighbors.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (a_idx, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[a_idx + 1..] {
            if graph.has_edge(a as usize, b as usize) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f32 / (d * (d - 1)) as f32
}

/// Mean local clustering coefficient over all nodes.
pub fn average_clustering(graph: &Graph) -> f32 {
    if graph.n() == 0 {
        return 0.0;
    }
    (0..graph.n())
        .map(|i| local_clustering(graph, i))
        .sum::<f32>()
        / graph.n() as f32
}

/// K-core decomposition: `core[i]` is the largest `k` such that node `i`
/// belongs to a subgraph where every node has degree ≥ `k` (Matula &
/// Beck's peeling algorithm, O(E)).
pub fn k_core(graph: &Graph) -> Vec<usize> {
    let n = graph.n();
    let mut degree: Vec<usize> = (0..n).map(|i| graph.degree(i)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by current degree.
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for (i, &d) in degree.iter().enumerate() {
        bins[d].push(i);
    }
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut current_k = 0usize;
    for d in 0..=max_deg {
        // Bins can refill below d as we peel; process lazily.
        let mut stack = std::mem::take(&mut bins[d]);
        while let Some(v) = stack.pop() {
            if removed[v] || degree[v] > d {
                // Stale entry (degree changed since binning).
                if !removed[v] && degree[v] > d {
                    bins[degree[v]].push(v);
                }
                continue;
            }
            current_k = current_k.max(d);
            core[v] = current_k;
            removed[v] = true;
            for &u in graph.neighbors(v) {
                let u = u as usize;
                if !removed[u] && degree[u] > d {
                    degree[u] -= 1;
                    if degree[u] <= d {
                        stack.push(u);
                    } else {
                        bins[degree[u]].push(u);
                    }
                }
            }
        }
    }
    core
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Citation networks are mildly disassortative (negative).
pub fn degree_assortativity(graph: &Graph) -> f32 {
    let edges = graph.edges();
    if edges.is_empty() {
        return 0.0;
    }
    // Each undirected edge contributes both (da, db) and (db, da).
    let m = (edges.len() * 2) as f64;
    let (mut sx, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64);
    for &(a, b) in edges {
        let da = graph.degree(a as usize) as f64;
        let db = graph.degree(b as usize) as f64;
        sx += da + db;
        sxx += da * da + db * db;
        sxy += 2.0 * da * db;
    }
    let mean = sx / m;
    let var = sxx / m - mean * mean;
    if var <= 0.0 {
        return 0.0;
    }
    ((sxy / m - mean * mean) / var) as f32
}

/// BFS distance from every node to the nearest node in `sources`
/// (`usize::MAX` when unreachable). The paper's motivation (§2.2) is that
/// a K-layer GCN only propagates labels K hops, so the distribution of
/// distances to the labeled set bounds how much supervision reaches each
/// node.
pub fn distance_to_set(graph: &Graph, sources: &[usize]) -> Vec<usize> {
    let n = graph.n();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s < n, "source {s} out of bounds");
        if dist[s] != 0 || !queue.contains(&s) {
            dist[s] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Histogram of `distance_to_set` bucketed as `[0, 1, 2, 3, 4+, unreachable]`.
pub fn distance_histogram(distances: &[usize]) -> [usize; 6] {
    let mut h = [0usize; 6];
    for &d in distances {
        let bucket = match d {
            usize::MAX => 5,
            0..=3 => d,
            _ => 4,
        };
        h[bucket] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle plus a pendant node.
    fn triangle_tail() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn clustering_of_triangle_nodes() {
        let g = triangle_tail();
        assert!(
            (local_clustering(&g, 0) - 1.0).abs() < 1e-6,
            "triangle corner fully clustered"
        );
        // Node 2 has neighbors {0, 1, 3}; only (0,1) connected -> 1/3.
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(local_clustering(&g, 3), 0.0, "degree-1 node");
        let avg = average_clustering(&g);
        assert!(avg > 0.0 && avg < 1.0);
    }

    #[test]
    fn k_core_of_triangle_tail() {
        let g = triangle_tail();
        let core = k_core(&g);
        assert_eq!(core[0], 2, "triangle is the 2-core");
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1, "pendant is 1-core");
    }

    #[test]
    fn k_core_of_clique() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in i + 1..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges);
        assert!(k_core(&g).iter().all(|&c| c == 4), "5-clique is a 4-core");
    }

    #[test]
    fn k_core_isolated_nodes_are_zero() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let core = k_core(&g);
        assert_eq!(core[2], 0);
        assert_eq!(core[0], 1);
    }

    #[test]
    fn star_is_disassortative() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        assert!(
            degree_assortativity(&g) < 0.0,
            "hub-leaf mixing is disassortative"
        );
    }

    #[test]
    fn regular_graph_assortativity_is_degenerate_zero() {
        // Cycle: every degree equal -> zero variance -> defined as 0.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn distances_from_sources() {
        // Path 0-1-2-3-4, source {0}.
        let g = Graph::from_edges(5, &(0..4).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let d = distance_to_set(&g, &[0]);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let h = distance_histogram(&d);
        assert_eq!(h, [1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn unreachable_nodes_marked() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = distance_to_set(&g, &[0]);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(distance_histogram(&d)[5], 1);
    }

    #[test]
    fn multiple_sources_take_minimum() {
        let g = Graph::from_edges(5, &(0..4).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let d = distance_to_set(&g, &[0, 4]);
        assert_eq!(d, vec![0, 1, 2, 1, 0]);
    }
}
