//! Descriptive statistics for datasets (Table 2 of the paper).

use crate::dataset::Dataset;

/// The columns of the paper's Table 2 plus the generator-relevant extras.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Class count.
    pub classes: usize,
    /// Fraction of nodes with a training label.
    pub label_rate: f32,
    /// Mean degree 2|E|/N.
    pub avg_degree: f32,
    /// Fraction of intra-class edges.
    pub edge_homophily: f32,
    /// Mean stored feature entries per node.
    pub feature_nnz_per_node: f32,
}

impl DatasetStats {
    /// Compute the statistics of `d`.
    pub fn of(d: &Dataset) -> Self {
        Self {
            name: d.name.clone(),
            nodes: d.n(),
            features: d.num_features(),
            edges: d.graph.num_edges(),
            classes: d.num_classes,
            label_rate: d.label_rate(),
            avg_degree: d.graph.avg_degree(),
            edge_homophily: d.graph.edge_homophily(&d.labels),
            feature_nnz_per_node: d.features.nnz() as f32 / d.n() as f32,
        }
    }

    /// One row of a fixed-width table, matching [`DatasetStats::header`].
    pub fn row(&self) -> String {
        format!(
            "{:<14} {:>7} {:>9} {:>8} {:>8} {:>10.3} {:>8.2} {:>10.3} {:>9.1}",
            self.name,
            self.nodes,
            self.features,
            self.edges,
            self.classes,
            self.label_rate,
            self.avg_degree,
            self.edge_homophily,
            self.feature_nnz_per_node,
        )
    }

    /// Header for [`DatasetStats::row`].
    pub fn header() -> String {
        format!(
            "{:<14} {:>7} {:>9} {:>8} {:>8} {:>10} {:>8} {:>10} {:>9}",
            "dataset",
            "nodes",
            "features",
            "edges",
            "classes",
            "label_rate",
            "avg_deg",
            "homophily",
            "nnz/node"
        )
    }
}

/// Histogram of node degrees, bucketed as `[0, 1, 2-3, 4-7, 8-15, 16+]`.
pub fn degree_histogram(d: &Dataset) -> [usize; 6] {
    let mut h = [0usize; 6];
    for i in 0..d.n() {
        let deg = d.graph.degree(i);
        let bucket = match deg {
            0 => 0,
            1 => 1,
            2..=3 => 2,
            4..=7 => 3,
            8..=15 => 4,
            _ => 5,
        };
        h[bucket] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    #[test]
    fn stats_are_consistent() {
        let d = SynthConfig::tiny().generate();
        let s = DatasetStats::of(&d);
        assert_eq!(s.nodes, 300);
        assert_eq!(s.classes, 3);
        assert!(s.edges > 0);
        assert!((s.avg_degree - 2.0 * s.edges as f32 / s.nodes as f32).abs() < 1e-5);
        assert!(s.label_rate > 0.0 && s.label_rate < 1.0);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let d = SynthConfig::tiny().generate();
        let h = degree_histogram(&d);
        assert_eq!(h.iter().sum::<usize>(), d.n());
    }

    #[test]
    fn row_and_header_align() {
        let d = SynthConfig::tiny().generate();
        let s = DatasetStats::of(&d);
        // Same number of whitespace-separated fields.
        assert_eq!(
            s.row().split_whitespace().count(),
            DatasetStats::header().split_whitespace().count()
        );
    }
}
