//! Offline consumption of a JSONL trace: parse, validate against the event
//! schema, and render the per-epoch table plus kernel-time breakdown that
//! `rdd trace-summary <file.jsonl>` prints.

use super::json::{parse, Json};

/// Cumulative wall time of one kernel (last snapshot in the trace wins —
/// snapshots are cumulative per process).
#[derive(Clone, Debug)]
pub struct KernelStat {
    pub name: String,
    pub calls: f64,
    pub total_ms: f64,
}

/// Everything a trace contains, grouped by event kind.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// `epoch` events, in trace order.
    pub epochs: Vec<Json>,
    /// `member` events (one per trained ensemble member).
    pub members: Vec<Json>,
    /// `run` events (final outcomes).
    pub runs: Vec<Json>,
    /// Last cumulative snapshot per kernel name.
    pub kernels: Vec<KernelStat>,
    /// Last value per counter name.
    pub counters: Vec<(String, f64)>,
    /// Last value per gauge name.
    pub gauges: Vec<(String, f64)>,
    /// Recovery-path events (`fault` / `rollback` / `divergence` /
    /// `member_dropped` / `checkpoint` / `resume`), in trace order.
    pub recovery: Vec<Json>,
    /// `serve_batch` events (one per serve-engine flush), in trace order.
    pub serves: Vec<Json>,
    /// `serve_run` events (final serve-session counters).
    pub serve_runs: Vec<Json>,
    /// `warn` event messages.
    pub warnings: Vec<String>,
    /// Events of kinds this module does not aggregate (kept for callers).
    pub other: Vec<Json>,
    /// Total number of events parsed.
    pub total_events: usize,
}

fn upsert(slot: &mut Vec<(String, f64)>, name: &str, value: f64) {
    match slot.iter_mut().find(|(n, _)| n == name) {
        Some(entry) => entry.1 = value,
        None => slot.push((name.to_string(), value)),
    }
}

impl TraceSummary {
    /// Parse a JSONL trace. Fails with a line number on the first malformed
    /// line; every event must carry a string `ev` and numeric `t_ms`.
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut out = TraceSummary::default();
        for (idx, line) in src.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let event = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let kind = event
                .get("ev")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {lineno}: missing string field \"ev\""))?
                .to_string();
            event
                .get("t_ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {lineno}: missing numeric field \"t_ms\""))?;
            out.total_events += 1;
            match kind.as_str() {
                "epoch" => {
                    validate_epoch(&event).map_err(|e| format!("line {lineno}: {e}"))?;
                    out.epochs.push(event);
                }
                "member" => out.members.push(event),
                "run" => out.runs.push(event),
                "kernel" => {
                    let name =
                        req_str(&event, "name").map_err(|e| format!("line {lineno}: {e}"))?;
                    let calls =
                        req_num(&event, "calls").map_err(|e| format!("line {lineno}: {e}"))?;
                    let total_ms =
                        req_num(&event, "total_ms").map_err(|e| format!("line {lineno}: {e}"))?;
                    match out.kernels.iter_mut().find(|k| k.name == name) {
                        Some(k) => {
                            k.calls = calls;
                            k.total_ms = total_ms;
                        }
                        None => out.kernels.push(KernelStat {
                            name,
                            calls,
                            total_ms,
                        }),
                    }
                }
                "counter" | "gauge" => {
                    let name =
                        req_str(&event, "name").map_err(|e| format!("line {lineno}: {e}"))?;
                    let value =
                        req_num(&event, "value").map_err(|e| format!("line {lineno}: {e}"))?;
                    let slot = if kind == "counter" {
                        &mut out.counters
                    } else {
                        &mut out.gauges
                    };
                    upsert(slot, &name, value);
                }
                "warn" => {
                    out.warnings
                        .push(req_str(&event, "msg").map_err(|e| format!("line {lineno}: {e}"))?);
                }
                "serve_batch" => {
                    validate_serve_batch(&event).map_err(|e| format!("line {lineno}: {e}"))?;
                    out.serves.push(event);
                }
                "serve_run" => out.serve_runs.push(event),
                "fault" | "rollback" | "divergence" | "member_dropped" | "checkpoint"
                | "resume" => out.recovery.push(event),
                _ => out.other.push(event),
            }
        }
        Ok(out)
    }

    /// Render the human-facing summary: per-epoch table, member table,
    /// kernel-time breakdown, counters/gauges, warnings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.epochs.is_empty() {
            out.push_str(&format!("Epochs ({} records)\n", self.epochs.len()));
            let headers = [
                "model", "mem", "epoch", "loss", "l1", "l2", "lreg", "gamma", "v_r", "v_b", "e_r",
                "agree", "alpha", "train", "val", "test",
            ];
            let keys = [
                "model",
                "member",
                "epoch",
                "loss",
                "l1",
                "l2",
                "lreg",
                "gamma",
                "v_r",
                "v_b",
                "e_r",
                "agreement",
                "alpha",
                "train_acc",
                "val_acc",
                "test_acc",
            ];
            let rows: Vec<Vec<String>> = self
                .epochs
                .iter()
                .map(|e| keys.iter().map(|k| fmt_field(e.get(k))).collect())
                .collect();
            out.push_str(&render_table(&headers, &rows));
        }
        if !self.members.is_empty() {
            out.push_str("\nEnsemble members\n");
            let headers = ["mem", "alpha", "val", "test", "epochs"];
            let keys = ["member", "alpha", "val_acc", "test_acc", "epochs"];
            let rows: Vec<Vec<String>> = self
                .members
                .iter()
                .map(|e| keys.iter().map(|k| fmt_field(e.get(k))).collect())
                .collect();
            out.push_str(&render_table(&headers, &rows));
        }
        for run in &self.runs {
            out.push_str(&format!(
                "\nRun: ensemble test acc {}  single test acc {}  members {}\n",
                fmt_field(run.get("ensemble_test_acc")),
                fmt_field(run.get("single_test_acc")),
                fmt_field(run.get("members")),
            ));
        }
        if !self.kernels.is_empty() {
            out.push_str("\nKernel time\n");
            let mut kernels: Vec<&KernelStat> = self.kernels.iter().collect();
            kernels.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
            let rows: Vec<Vec<String>> = kernels
                .iter()
                .map(|k| {
                    let per_call = if k.calls > 0.0 {
                        k.total_ms / k.calls
                    } else {
                        0.0
                    };
                    vec![
                        k.name.clone(),
                        format!("{}", k.calls),
                        format!("{:.3}", k.total_ms),
                        format!("{:.4}", per_call),
                    ]
                })
                .collect();
            out.push_str(&render_table(
                &["kernel", "calls", "total_ms", "ms/call"],
                &rows,
            ));
        }
        if !self.serves.is_empty() || !self.serve_runs.is_empty() {
            out.push_str(&self.render_serving());
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("\nCounters & gauges\n");
            let rows: Vec<Vec<String>> = self
                .counters
                .iter()
                .map(|(n, v)| vec![n.clone(), "counter".into(), format!("{v}")])
                .chain(
                    self.gauges
                        .iter()
                        .map(|(n, v)| vec![n.clone(), "gauge".into(), format!("{v}")]),
                )
                .collect();
            out.push_str(&render_table(&["name", "kind", "value"], &rows));
        }
        if !self.recovery.is_empty() {
            out.push_str(&format!(
                "\nRecovery events ({} records)\n",
                self.recovery.len()
            ));
            for e in &self.recovery {
                let kind = e.get("ev").and_then(Json::as_str).unwrap_or("?");
                let mut parts = Vec::new();
                if let Json::Obj(fields) = e {
                    for (k, v) in fields {
                        if k != "ev" && k != "t_ms" {
                            parts.push(format!("{k}={}", fmt_field(Some(v))));
                        }
                    }
                }
                out.push_str(&format!("  {kind}: {}\n", parts.join(" ")));
            }
        }
        for w in &self.warnings {
            out.push_str(&format!("\nwarning: {w}\n"));
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }
}

impl TraceSummary {
    /// The "Serving" section: per-flush aggregates (batches, requests,
    /// cache hit rate) plus p50/p99 over every request latency recorded in
    /// the trace's `serve_batch` events.
    fn render_serving(&self) -> String {
        let mut out = String::from("\nServing\n");
        let sum = |key: &str| -> f64 {
            self.serves
                .iter()
                .filter_map(|e| e.get(key).and_then(Json::as_f64))
                .sum()
        };
        let requests = sum("requests");
        let nodes = sum("nodes");
        let hits = sum("hits");
        let misses = sum("misses");
        let exec_ms = sum("exec_ms");
        let lat: Vec<f64> = self
            .serves
            .iter()
            .filter_map(|e| e.get("lat_ms").and_then(Json::as_arr))
            .flatten()
            .filter_map(Json::as_f64)
            .collect();
        // Json::as_f64 only yields finite numbers, so the NaN-rejecting
        // path cannot trigger here.
        let stats = sample_stats(&lat).unwrap_or_default();
        let hit_rate = if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        };
        let rows = vec![
            vec!["batches".to_string(), fmt_num(self.serves.len() as f64)],
            vec!["requests".to_string(), fmt_num(requests)],
            vec!["node rows".to_string(), fmt_num(nodes)],
            vec![
                "cache hit rate".to_string(),
                format!("{:.1}%", 100.0 * hit_rate),
            ],
            vec!["exec total_ms".to_string(), format!("{exec_ms:.3}")],
            vec!["p50 latency ms".to_string(), format!("{:.3}", stats.p50)],
            vec!["p99 latency ms".to_string(), format!("{:.3}", stats.p99)],
        ];
        out.push_str(&render_table(&["metric", "value"], &rows));
        for run in &self.serve_runs {
            out.push_str(&format!(
                "Serve run: requests {}  batches {}  hits {}  misses {}  wall_ms {}\n",
                fmt_field(run.get("requests")),
                fmt_field(run.get("batches")),
                fmt_field(run.get("hits")),
                fmt_field(run.get("misses")),
                fmt_field(run.get("wall_ms")),
            ));
        }
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (`q` in [0, 1]);
/// 0 on an empty slice. Shared by `trace-summary` and the serve bench.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Summary statistics over one set of latency/throughput samples.
///
/// Produced by [`sample_stats`]; the zero value (via `Default`) stands in
/// for "no samples" wherever a renderer cannot propagate an error.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SampleStats {
    /// Number of samples summarized.
    pub count: usize,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Nearest-rank median (0 when empty).
    pub p50: f64,
    /// Nearest-rank 99th percentile (0 when empty).
    pub p99: f64,
}

/// Sort-and-summarize one sample set: count, min/max/mean and the
/// nearest-rank p50/p99 used by both `rdd trace-summary` and
/// `rdd serve-bench`.
///
/// Non-finite samples (NaN, ±inf) are *rejected* — a benchmark that
/// produced one has a bug upstream, and quietly sorting NaNs would
/// corrupt every percentile — with an error naming the first offending
/// index. An empty slice is not an error: it yields the all-zero stats.
pub fn sample_stats(samples: &[f64]) -> Result<SampleStats, String> {
    if let Some(i) = samples.iter().position(|v| !v.is_finite()) {
        return Err(format!(
            "non-finite sample {} at index {i} of {}",
            samples[i],
            samples.len()
        ));
    }
    if samples.is_empty() {
        return Ok(SampleStats::default());
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(SampleStats {
        count: sorted.len(),
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: percentile(&sorted, 0.50),
        p99: percentile(&sorted, 0.99),
    })
}

const SERVE_BATCH_NUMERIC: &[&str] = &["requests", "nodes", "hits", "misses", "exec_ms"];

fn validate_serve_batch(event: &Json) -> Result<(), String> {
    for key in SERVE_BATCH_NUMERIC {
        req_num(event, key)?;
    }
    match event.get("lat_ms") {
        Some(Json::Arr(a)) if a.iter().all(|v| matches!(v, Json::Num(_))) => {}
        _ => return Err("serve_batch field \"lat_ms\" must be an array of numbers".to_string()),
    }
    let hits = req_num(event, "hits")?;
    let misses = req_num(event, "misses")?;
    let nodes = req_num(event, "nodes")?;
    if hits + misses != nodes {
        return Err(format!(
            "serve_batch has hits={hits} + misses={misses} != nodes={nodes}"
        ));
    }
    Ok(())
}

/// Keys every `epoch` event must carry. RDD-only quantities may be `null`
/// (plain baseline runs have no distillation hook) but must be present.
const EPOCH_NUMERIC: &[&str] = &["epoch", "loss", "l1", "train_acc", "val_acc", "test_acc"];
const EPOCH_NULLABLE: &[&str] = &[
    "member",
    "l2",
    "lreg",
    "gamma",
    "v_r",
    "v_b",
    "e_r",
    "agreement",
    "teacher_entropy_thresh",
    "student_entropy_thresh",
];

fn validate_epoch(event: &Json) -> Result<(), String> {
    req_str(event, "model")?;
    for key in EPOCH_NUMERIC {
        req_num(event, key)?;
    }
    for key in EPOCH_NULLABLE {
        match event.get(key) {
            Some(Json::Null) | Some(Json::Num(_)) => {}
            Some(_) => return Err(format!("epoch field {key:?} must be number or null")),
            None => return Err(format!("epoch event missing field {key:?}")),
        }
    }
    match event.get("alpha") {
        Some(Json::Arr(a)) if a.iter().all(|v| matches!(v, Json::Num(_))) => {}
        _ => return Err("epoch field \"alpha\" must be an array of numbers".to_string()),
    }
    if let (Some(v_r), Some(v_b)) = (
        event.get("v_r").and_then(Json::as_f64),
        event.get("v_b").and_then(Json::as_f64),
    ) {
        if v_b > v_r {
            return Err(format!(
                "epoch has v_b={v_b} > v_r={v_r} (V_b ⊆ V_r violated)"
            ));
        }
    }
    Ok(())
}

/// Parse and schema-check a trace; alias for [`TraceSummary::parse`],
/// named for the `tools/trace_check.rs` validator.
pub fn validate(src: &str) -> Result<TraceSummary, String> {
    TraceSummary::parse(src)
}

fn req_str(event: &Json, key: &str) -> Result<String, String> {
    event
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn req_num(event: &Json, key: &str) -> Result<f64, String> {
    event
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

/// Compact cell formatting: integers without decimals, reals to 4 places,
/// arrays joined with commas, nulls as `-`.
fn fmt_field(v: Option<&Json>) -> String {
    match v {
        None | Some(Json::Null) => "-".to_string(),
        Some(Json::Bool(b)) => b.to_string(),
        Some(Json::Num(n)) => fmt_num(*n),
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Arr(a)) => {
            if a.is_empty() {
                "-".to_string()
            } else {
                a.iter()
                    .map(|x| fmt_field(Some(x)))
                    .collect::<Vec<_>>()
                    .join(",")
            }
        }
        Some(obj @ Json::Obj(_)) => obj.to_string(),
    }
}

fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        "-".to_string()
    } else if n.fract() == 0.0 && n.abs() < 1e12 {
        format!("{}", n as i64)
    } else {
        format!("{n:.4}")
    }
}

/// Fixed-width plain-text table: first column left-aligned, the rest
/// right-aligned. Shared by `trace-summary` and the bench binaries.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let mut write_row = |cells: &[String]| {
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map_or("", String::as_str);
            if i > 0 {
                out.push_str("  ");
            }
            let pad = w.saturating_sub(cell.chars().count());
            if i == 0 {
                out.push_str(cell);
                if i + 1 < cols {
                    out.push_str(&" ".repeat(pad));
                }
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    write_row(&header_cells);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    write_row(&rule);
    for row in rows {
        write_row(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch_line(epoch: usize, v_r: usize, v_b: usize) -> String {
        format!(
            concat!(
                "{{\"ev\":\"epoch\",\"t_ms\":1.5,\"model\":\"gcn\",\"member\":1,",
                "\"epoch\":{},\"loss\":1.5,\"l1\":1.0,\"l2\":0.25,\"lreg\":0.1,",
                "\"gamma\":0.5,\"v_r\":{},\"v_b\":{},\"e_r\":12,\"agreement\":0.9,",
                "\"teacher_entropy_thresh\":1.2,\"student_entropy_thresh\":null,",
                "\"alpha\":[1.0,2.0],\"train_acc\":0.9,\"val_acc\":0.8,\"test_acc\":0.7}}"
            ),
            epoch, v_r, v_b
        )
    }

    #[test]
    fn parses_and_aggregates_a_trace() {
        let src = [
            epoch_line(0, 100, 40),
            epoch_line(1, 90, 30),
            "{\"ev\":\"kernel\",\"t_ms\":2.0,\"name\":\"matmul\",\"calls\":5,\"total_ms\":1.0}"
                .to_string(),
            "{\"ev\":\"kernel\",\"t_ms\":3.0,\"name\":\"matmul\",\"calls\":9,\"total_ms\":2.5}"
                .to_string(),
            "{\"ev\":\"counter\",\"t_ms\":3.0,\"name\":\"pool.tasks\",\"value\":64}".to_string(),
            "{\"ev\":\"warn\",\"t_ms\":3.0,\"msg\":\"careful\"}".to_string(),
            "{\"ev\":\"pool_init\",\"t_ms\":0.1,\"threads\":8}".to_string(),
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.epochs.len(), 2);
        assert_eq!(summary.kernels.len(), 1);
        assert_eq!(summary.kernels[0].calls, 9.0, "last snapshot wins");
        assert_eq!(summary.counters, vec![("pool.tasks".to_string(), 64.0)]);
        assert_eq!(summary.warnings, vec!["careful".to_string()]);
        assert_eq!(summary.other.len(), 1);
        assert_eq!(summary.total_events, 7);
        let rendered = summary.render();
        assert!(rendered.contains("Epochs (2 records)"));
        assert!(rendered.contains("matmul"));
        assert!(rendered.contains("pool.tasks"));
        assert!(rendered.contains("warning: careful"));
    }

    #[test]
    fn collects_and_renders_recovery_events() {
        let src = [
            "{\"ev\":\"fault\",\"t_ms\":1.0,\"kind\":\"nan_loss\",\"site\":\"epoch\",\"n\":7}",
            concat!(
                "{\"ev\":\"rollback\",\"t_ms\":1.1,\"model\":\"gcn\",\"epoch\":7,",
                "\"retry\":1,\"lr_scale\":1.0,\"reason\":\"nonfinite_loss\"}"
            ),
            "{\"ev\":\"resume\",\"t_ms\":2.0,\"next_member\":2,\"loaded\":2,\"dir\":\"run\"}",
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.recovery.len(), 3);
        assert!(summary.other.is_empty());
        let rendered = summary.render();
        assert!(
            rendered.contains("Recovery events (3 records)"),
            "{rendered}"
        );
        assert!(rendered.contains("rollback: model=gcn"), "{rendered}");
        assert!(rendered.contains("site=epoch"), "{rendered}");
    }

    #[test]
    fn aggregates_and_renders_serve_events() {
        let src = [
            concat!(
                "{\"ev\":\"serve_batch\",\"t_ms\":1.0,\"requests\":2,\"nodes\":3,",
                "\"hits\":1,\"misses\":2,\"exec_ms\":0.5,\"lat_ms\":[0.2,0.9]}"
            ),
            concat!(
                "{\"ev\":\"serve_batch\",\"t_ms\":2.0,\"requests\":1,\"nodes\":1,",
                "\"hits\":1,\"misses\":0,\"exec_ms\":0.0,\"lat_ms\":[0.1]}"
            ),
            concat!(
                "{\"ev\":\"serve_run\",\"t_ms\":3.0,\"requests\":3,\"batches\":2,",
                "\"hits\":2,\"misses\":2,\"wall_ms\":4.0}"
            ),
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.serves.len(), 2);
        assert_eq!(summary.serve_runs.len(), 1);
        assert!(summary.other.is_empty());
        let rendered = summary.render();
        assert!(rendered.contains("Serving"), "{rendered}");
        assert!(rendered.contains("cache hit rate"), "{rendered}");
        assert!(rendered.contains("50.0%"), "{rendered}");
        assert!(rendered.contains("p99 latency ms"), "{rendered}");
        assert!(rendered.contains("Serve run: requests 3"), "{rendered}");
    }

    #[test]
    fn rejects_inconsistent_serve_batches() {
        let bad_counts = concat!(
            "{\"ev\":\"serve_batch\",\"t_ms\":1.0,\"requests\":2,\"nodes\":3,",
            "\"hits\":1,\"misses\":1,\"exec_ms\":0.5,\"lat_ms\":[0.2]}"
        );
        let err = TraceSummary::parse(bad_counts).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("hits"), "{err}");

        let bad_lat = concat!(
            "{\"ev\":\"serve_batch\",\"t_ms\":1.0,\"requests\":1,\"nodes\":1,",
            "\"hits\":0,\"misses\":1,\"exec_ms\":0.5,\"lat_ms\":\"oops\"}"
        );
        let err = TraceSummary::parse(bad_lat).unwrap_err();
        assert!(err.contains("lat_ms"), "{err}");
    }

    #[test]
    fn percentile_is_nearest_rank_on_sorted_data() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&xs, 0.50), 51.0); // nearest rank on 0..=99
        assert_eq!(percentile(&xs, 0.99), 99.0);
    }

    #[test]
    fn sample_stats_empty_is_zero_not_error() {
        assert_eq!(sample_stats(&[]).unwrap(), SampleStats::default());
    }

    #[test]
    fn sample_stats_single_sample_is_that_sample_everywhere() {
        let s = sample_stats(&[3.25]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 3.25);
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.p50, 3.25);
        assert_eq!(s.p99, 3.25);
    }

    #[test]
    fn sample_stats_sorts_unordered_input() {
        let xs: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        let s = sample_stats(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.p50, 51.0); // nearest rank, matches `percentile`
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn sample_stats_rejects_non_finite_with_index() {
        let err = sample_stats(&[1.0, f64::NAN, 2.0]).unwrap_err();
        assert!(err.contains("index 1"), "got: {err}");
        let err = sample_stats(&[f64::INFINITY]).unwrap_err();
        assert!(err.contains("index 0"), "got: {err}");
        let err = sample_stats(&[0.0, 1.0, f64::NEG_INFINITY]).unwrap_err();
        assert!(err.contains("index 2"), "got: {err}");
    }

    #[test]
    fn rejects_epoch_records_violating_subset_invariant() {
        let err = TraceSummary::parse(&epoch_line(0, 40, 100)).unwrap_err();
        assert!(err.contains("V_b ⊆ V_r"), "got: {err}");
    }

    #[test]
    fn rejects_missing_fields_with_line_numbers() {
        let src = format!(
            "{}\n{{\"ev\":\"kernel\",\"t_ms\":1.0,\"name\":\"matmul\"}}",
            epoch_line(0, 10, 5)
        );
        let err = TraceSummary::parse(&src).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
        assert!(err.contains("calls"), "got: {err}");

        let err = TraceSummary::parse("{\"t_ms\":1.0}").unwrap_err();
        assert!(err.contains("\"ev\""), "got: {err}");

        let err = TraceSummary::parse("not json").unwrap_err();
        assert!(err.starts_with("line 1:"), "got: {err}");
    }

    #[test]
    fn renders_fixed_width_tables() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer".to_string(), "12345".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "name    value");
        assert_eq!(lines[1], "------  -----");
        assert_eq!(lines[2], "a           1");
        assert_eq!(lines[3], "longer  12345");
    }
}
