//! Offline consumption of a JSONL trace: parse, validate against the event
//! schema, and render the per-epoch table plus kernel-time breakdown that
//! `rdd trace-summary <file.jsonl>` prints — and the full run report behind
//! `rdd report` ([`TraceSummary::render_report`] / [`render_report`]).

use super::hist::HistSnapshot;
use super::json::{parse, Json};

/// Cumulative wall time of one kernel (last snapshot in the trace wins —
/// snapshots are cumulative per process).
#[derive(Clone, Debug)]
pub struct KernelStat {
    pub name: String,
    pub calls: f64,
    pub total_ms: f64,
    /// Time not covered by child spans; equals `total_ms` in traces
    /// predating hierarchical spans (the field was absent).
    pub self_ms: f64,
}

/// Last snapshot of one named log2-bucket histogram (`hist` events are
/// cumulative, so the last one per name wins).
#[derive(Clone, Debug)]
pub struct HistStat {
    pub name: String,
    pub snapshot: HistSnapshot,
}

/// One observed span-nesting edge: `child` ran directly under `parent`
/// `calls` times (cumulative; last snapshot wins).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEdge {
    pub child: String,
    pub parent: String,
    pub calls: f64,
}

/// Everything a trace contains, grouped by event kind.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// `epoch` events, in trace order.
    pub epochs: Vec<Json>,
    /// `member` events (one per trained ensemble member).
    pub members: Vec<Json>,
    /// `run` events (final outcomes).
    pub runs: Vec<Json>,
    /// Last cumulative snapshot per kernel name.
    pub kernels: Vec<KernelStat>,
    /// Last histogram snapshot per name (`hist` events).
    pub hists: Vec<HistStat>,
    /// Last call count per (child, parent) span edge (`span_parent` events).
    pub span_edges: Vec<SpanEdge>,
    /// Last value per counter name.
    pub counters: Vec<(String, f64)>,
    /// Last value per gauge name.
    pub gauges: Vec<(String, f64)>,
    /// Recovery-path events (`fault` / `rollback` / `divergence` /
    /// `member_dropped` / `checkpoint` / `resume`), in trace order.
    pub recovery: Vec<Json>,
    /// `serve_batch` events (one per serve-engine flush), in trace order.
    pub serves: Vec<Json>,
    /// `serve_run` events (final serve-session counters).
    pub serve_runs: Vec<Json>,
    /// `serve_metrics` rolling-window heartbeats, in trace order.
    pub serve_metrics: Vec<Json>,
    /// `swap` events (hot artifact-generation rolls), in trace order.
    pub swaps: Vec<Json>,
    /// `breaker_state` events (overload circuit-breaker transitions), in
    /// trace order.
    pub breaker_states: Vec<Json>,
    /// `env_warn` events (rejected environment-variable values).
    pub env_warns: Vec<Json>,
    /// `warn` event messages.
    pub warnings: Vec<String>,
    /// Events of kinds this module does not aggregate (kept for callers).
    pub other: Vec<Json>,
    /// Total number of events parsed.
    pub total_events: usize,
    /// Largest `t_ms` seen — the trace's wall-clock span in milliseconds.
    pub wall_ms: f64,
}

fn upsert(slot: &mut Vec<(String, f64)>, name: &str, value: f64) {
    match slot.iter_mut().find(|(n, _)| n == name) {
        Some(entry) => entry.1 = value,
        None => slot.push((name.to_string(), value)),
    }
}

impl TraceSummary {
    /// Parse a JSONL trace. Fails with a line number on the first malformed
    /// line; every event must carry a string `ev` and numeric `t_ms`.
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut out = TraceSummary::default();
        for (idx, line) in src.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let event = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let kind = event
                .get("ev")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {lineno}: missing string field \"ev\""))?
                .to_string();
            let t_ms = event
                .get("t_ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {lineno}: missing numeric field \"t_ms\""))?;
            out.total_events += 1;
            out.wall_ms = out.wall_ms.max(t_ms);
            match kind.as_str() {
                "epoch" => {
                    validate_epoch(&event).map_err(|e| format!("line {lineno}: {e}"))?;
                    out.epochs.push(event);
                }
                "member" => out.members.push(event),
                "run" => out.runs.push(event),
                "kernel" => {
                    let name =
                        req_str(&event, "name").map_err(|e| format!("line {lineno}: {e}"))?;
                    let calls =
                        req_num(&event, "calls").map_err(|e| format!("line {lineno}: {e}"))?;
                    let total_ms =
                        req_num(&event, "total_ms").map_err(|e| format!("line {lineno}: {e}"))?;
                    // Pre-hierarchy traces have no self_ms; a leaf span's
                    // self-time IS its total, so that is the right default.
                    let self_ms = event
                        .get("self_ms")
                        .and_then(Json::as_f64)
                        .unwrap_or(total_ms);
                    match out.kernels.iter_mut().find(|k| k.name == name) {
                        Some(k) => {
                            k.calls = calls;
                            k.total_ms = total_ms;
                            k.self_ms = self_ms;
                        }
                        None => out.kernels.push(KernelStat {
                            name,
                            calls,
                            total_ms,
                            self_ms,
                        }),
                    }
                }
                "hist" => {
                    let name =
                        req_str(&event, "name").map_err(|e| format!("line {lineno}: {e}"))?;
                    let snapshot =
                        validate_hist(&event).map_err(|e| format!("line {lineno}: {e}"))?;
                    match out.hists.iter_mut().find(|h| h.name == name) {
                        Some(h) => h.snapshot = snapshot,
                        None => out.hists.push(HistStat { name, snapshot }),
                    }
                }
                "span_parent" => {
                    let child =
                        req_str(&event, "child").map_err(|e| format!("line {lineno}: {e}"))?;
                    let parent =
                        req_str(&event, "parent").map_err(|e| format!("line {lineno}: {e}"))?;
                    let calls =
                        req_num(&event, "calls").map_err(|e| format!("line {lineno}: {e}"))?;
                    match out
                        .span_edges
                        .iter_mut()
                        .find(|e| e.child == child && e.parent == parent)
                    {
                        Some(e) => e.calls = calls,
                        None => out.span_edges.push(SpanEdge {
                            child,
                            parent,
                            calls,
                        }),
                    }
                }
                "counter" | "gauge" => {
                    let name =
                        req_str(&event, "name").map_err(|e| format!("line {lineno}: {e}"))?;
                    let value =
                        req_num(&event, "value").map_err(|e| format!("line {lineno}: {e}"))?;
                    let slot = if kind == "counter" {
                        &mut out.counters
                    } else {
                        &mut out.gauges
                    };
                    upsert(slot, &name, value);
                }
                "warn" => {
                    out.warnings
                        .push(req_str(&event, "msg").map_err(|e| format!("line {lineno}: {e}"))?);
                }
                "serve_batch" => {
                    validate_serve_batch(&event).map_err(|e| format!("line {lineno}: {e}"))?;
                    out.serves.push(event);
                }
                "serve_run" => out.serve_runs.push(event),
                "serve_metrics" => {
                    validate_serve_metrics(&event).map_err(|e| format!("line {lineno}: {e}"))?;
                    out.serve_metrics.push(event);
                }
                "swap" => {
                    req_num(&event, "generation").map_err(|e| format!("line {lineno}: {e}"))?;
                    req_str(&event, "checksum").map_err(|e| format!("line {lineno}: {e}"))?;
                    req_str(&event, "path").map_err(|e| format!("line {lineno}: {e}"))?;
                    out.swaps.push(event);
                }
                "swap_failed" => {
                    for key in ["path", "error"] {
                        req_str(&event, key).map_err(|e| format!("line {lineno}: {e}"))?;
                    }
                    for key in ["failures", "backoff_ms"] {
                        req_num(&event, key).map_err(|e| format!("line {lineno}: {e}"))?;
                    }
                    out.recovery.push(event);
                }
                "worker_panic" => {
                    for key in ["worker", "requests", "requeued", "failed"] {
                        req_num(&event, key).map_err(|e| format!("line {lineno}: {e}"))?;
                    }
                    out.recovery.push(event);
                }
                "worker_respawn" => {
                    for key in ["worker", "respawns"] {
                        req_num(&event, key).map_err(|e| format!("line {lineno}: {e}"))?;
                    }
                    out.recovery.push(event);
                }
                "breaker_state" => {
                    for key in ["state", "from"] {
                        req_str(&event, key).map_err(|e| format!("line {lineno}: {e}"))?;
                    }
                    for key in ["p99_ms", "shed_rate"] {
                        req_num(&event, key).map_err(|e| format!("line {lineno}: {e}"))?;
                    }
                    out.breaker_states.push(event);
                }
                "env_warn" => {
                    for key in ["var", "value", "expected"] {
                        req_str(&event, key).map_err(|e| format!("line {lineno}: {e}"))?;
                    }
                    out.env_warns.push(event);
                }
                "fault" | "rollback" | "divergence" | "member_dropped" | "checkpoint"
                | "resume" => out.recovery.push(event),
                _ => out.other.push(event),
            }
        }
        Ok(out)
    }

    /// Render the human-facing summary: per-epoch table, member table,
    /// kernel-time breakdown, counters/gauges, warnings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.epochs.is_empty() {
            out.push_str(&format!("Epochs ({} records)\n", self.epochs.len()));
            let headers = [
                "model", "mem", "epoch", "loss", "l1", "l2", "lreg", "gamma", "v_r", "v_b", "e_r",
                "agree", "alpha", "train", "val", "test",
            ];
            let keys = [
                "model",
                "member",
                "epoch",
                "loss",
                "l1",
                "l2",
                "lreg",
                "gamma",
                "v_r",
                "v_b",
                "e_r",
                "agreement",
                "alpha",
                "train_acc",
                "val_acc",
                "test_acc",
            ];
            let rows: Vec<Vec<String>> = self
                .epochs
                .iter()
                .map(|e| keys.iter().map(|k| fmt_field(e.get(k))).collect())
                .collect();
            out.push_str(&render_table(&headers, &rows));
        }
        if !self.members.is_empty() {
            out.push_str("\nEnsemble members\n");
            let headers = ["mem", "alpha", "val", "test", "epochs"];
            let keys = ["member", "alpha", "val_acc", "test_acc", "epochs"];
            let rows: Vec<Vec<String>> = self
                .members
                .iter()
                .map(|e| keys.iter().map(|k| fmt_field(e.get(k))).collect())
                .collect();
            out.push_str(&render_table(&headers, &rows));
        }
        for run in &self.runs {
            out.push_str(&format!(
                "\nRun: ensemble test acc {}  single test acc {}  members {}\n",
                fmt_field(run.get("ensemble_test_acc")),
                fmt_field(run.get("single_test_acc")),
                fmt_field(run.get("members")),
            ));
        }
        if !self.kernels.is_empty() {
            out.push_str("\nKernel time\n");
            out.push_str(&self.render_kernel_table());
        }
        if !self.serves.is_empty()
            || !self.serve_runs.is_empty()
            || !self.swaps.is_empty()
            || !self.breaker_states.is_empty()
        {
            out.push_str(&self.render_serving());
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("\nCounters & gauges\n");
            let rows: Vec<Vec<String>> = self
                .counters
                .iter()
                .map(|(n, v)| vec![n.clone(), "counter".into(), format!("{v}")])
                .chain(
                    self.gauges
                        .iter()
                        .map(|(n, v)| vec![n.clone(), "gauge".into(), format!("{v}")]),
                )
                .collect();
            out.push_str(&render_table(&["name", "kind", "value"], &rows));
        }
        if !self.recovery.is_empty() {
            out.push_str(&format!(
                "\nRecovery events ({} records)\n",
                self.recovery.len()
            ));
            for e in &self.recovery {
                let kind = e.get("ev").and_then(Json::as_str).unwrap_or("?");
                let mut parts = Vec::new();
                if let Json::Obj(fields) = e {
                    for (k, v) in fields {
                        if k != "ev" && k != "t_ms" {
                            parts.push(format!("{k}={}", fmt_field(Some(v))));
                        }
                    }
                }
                out.push_str(&format!("  {kind}: {}\n", parts.join(" ")));
            }
        }
        for w in &self.warnings {
            out.push_str(&format!("\nwarning: {w}\n"));
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }
}

impl TraceSummary {
    /// The "Serving" section: per-flush aggregates (batches, requests,
    /// cache hit rate) plus p50/p99 over every request latency recorded in
    /// the trace's `serve_batch` events.
    fn render_serving(&self) -> String {
        let mut out = String::from("\nServing\n");
        let sum = |key: &str| -> f64 {
            self.serves
                .iter()
                .filter_map(|e| e.get(key).and_then(Json::as_f64))
                .sum()
        };
        let requests = sum("requests");
        let nodes = sum("nodes");
        let hits = sum("hits");
        let misses = sum("misses");
        let exec_ms = sum("exec_ms");
        let lat: Vec<f64> = self
            .serves
            .iter()
            .filter_map(|e| e.get("lat_ms").and_then(Json::as_arr))
            .flatten()
            .filter_map(Json::as_f64)
            .collect();
        // Json::as_f64 only yields finite numbers, so the NaN-rejecting
        // path cannot trigger here.
        let stats = sample_stats(&lat).unwrap_or_default();
        let hit_rate = if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        };
        let rows = vec![
            vec!["batches".to_string(), fmt_num(self.serves.len() as f64)],
            vec!["requests".to_string(), fmt_num(requests)],
            vec!["node rows".to_string(), fmt_num(nodes)],
            vec![
                "cache hit rate".to_string(),
                format!("{:.1}%", 100.0 * hit_rate),
            ],
            vec!["exec total_ms".to_string(), format!("{exec_ms:.3}")],
            vec!["p50 latency ms".to_string(), format!("{:.3}", stats.p50)],
            vec!["p99 latency ms".to_string(), format!("{:.3}", stats.p99)],
        ];
        out.push_str(&render_table(&["metric", "value"], &rows));
        for run in &self.serve_runs {
            out.push_str(&format!(
                "Serve run: requests {}  batches {}  hits {}  misses {}  \
                 shed {} (queue-full) + {} (expired)",
                fmt_field(run.get("requests")),
                fmt_field(run.get("batches")),
                fmt_field(run.get("hits")),
                fmt_field(run.get("misses")),
                fmt_field(run.get("shed")),
                fmt_field(run.get("expired")),
            ));
            // Self-healing-era counters; absent in older traces.
            if run.get("failed").is_some() || run.get("rejected").is_some() {
                out.push_str(&format!(
                    "  failed {}  rejected {}",
                    fmt_field(run.get("failed")),
                    fmt_field(run.get("rejected")),
                ));
            }
            out.push_str(&format!("  wall_ms {}\n", fmt_field(run.get("wall_ms"))));
        }
        for swap in &self.swaps {
            out.push_str(&format!(
                "Swap: generation {}  checksum {}  path {}\n",
                fmt_field(swap.get("generation")),
                fmt_field(swap.get("checksum")),
                fmt_field(swap.get("path")),
            ));
        }
        for bs in &self.breaker_states {
            out.push_str(&format!(
                "Breaker: {} -> {}  (p99 {} ms, shed rate {}, retry_after_ms {})  t_ms {}\n",
                fmt_field(bs.get("from")),
                fmt_field(bs.get("state")),
                fmt_field(bs.get("p99_ms")),
                fmt_field(bs.get("shed_rate")),
                fmt_field(bs.get("retry_after_ms")),
                fmt_field(bs.get("t_ms")),
            ));
        }
        out
    }

    /// The kernel attribution table: per span, calls, total/self wall time,
    /// per-call mean, histogram p50/p99 (ms) and the observed parents.
    /// Sorted by self-time, the column that cannot double count.
    fn render_kernel_table(&self) -> String {
        let mut kernels: Vec<&KernelStat> = self.kernels.iter().collect();
        kernels.sort_by(|a, b| b.self_ms.total_cmp(&a.self_ms));
        let rows: Vec<Vec<String>> = kernels
            .iter()
            .map(|k| {
                let per_call = if k.calls > 0.0 {
                    k.total_ms / k.calls
                } else {
                    0.0
                };
                let (p50, p99) = match self.hists.iter().find(|h| h.name == k.name) {
                    Some(h) if h.snapshot.count() > 0 => (
                        format!("{:.4}", h.snapshot.p50() / 1e6),
                        format!("{:.4}", h.snapshot.p99() / 1e6),
                    ),
                    _ => ("-".to_string(), "-".to_string()),
                };
                let parents: Vec<String> = self
                    .span_edges
                    .iter()
                    .filter(|e| e.child == k.name)
                    .map(|e| format!("{}x{}", e.parent, fmt_num(e.calls)))
                    .collect();
                vec![
                    k.name.clone(),
                    fmt_num(k.calls),
                    format!("{:.3}", k.total_ms),
                    format!("{:.3}", k.self_ms),
                    format!("{per_call:.4}"),
                    p50,
                    p99,
                    if parents.is_empty() {
                        "-".to_string()
                    } else {
                        parents.join(",")
                    },
                ]
            })
            .collect();
        render_table(
            &[
                "kernel", "calls", "total_ms", "self_ms", "ms/call", "p50_ms", "p99_ms", "parents",
            ],
            &rows,
        )
    }

    /// The full run report behind `rdd report`: member convergence,
    /// reliability-set evolution, kernel self-time attribution (self-times
    /// sum to ≤ wall time — no flat-span double counting), the serving
    /// section, rolling-window heartbeats, and env warnings.
    pub fn render_report(&self) -> String {
        let mut out = String::from("RDD run report\n");
        out.push_str(&format!(
            "  events {}  wall_ms {:.1}  warnings {}\n",
            self.total_events,
            self.wall_ms,
            self.warnings.len() + self.env_warns.len()
        ));

        // Member convergence: epochs grouped per (model, member), joined
        // with the final `member` records for alpha.
        if !self.epochs.is_empty() {
            out.push_str("\nMember convergence\n");
            let mut groups: Vec<(String, Vec<&Json>)> = Vec::new();
            for e in &self.epochs {
                let key = format!(
                    "{}/{}",
                    fmt_field(e.get("model")),
                    fmt_field(e.get("member"))
                );
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v.push(e),
                    None => groups.push((key, vec![e])),
                }
            }
            let rows: Vec<Vec<String>> = groups
                .iter()
                .map(|(key, epochs)| {
                    let first = epochs[0];
                    let last = epochs[epochs.len() - 1];
                    let alpha = first
                        .get("member")
                        .and_then(Json::as_f64)
                        .and_then(|m| {
                            self.members
                                .iter()
                                .find(|rec| rec.get("member").and_then(Json::as_f64) == Some(m))
                        })
                        .map(|rec| fmt_field(rec.get("alpha")))
                        .unwrap_or_else(|| "-".to_string());
                    vec![
                        key.clone(),
                        fmt_num(epochs.len() as f64),
                        fmt_field(first.get("loss")),
                        fmt_field(last.get("loss")),
                        alpha,
                        fmt_field(last.get("val_acc")),
                        fmt_field(last.get("test_acc")),
                    ]
                })
                .collect();
            out.push_str(&render_table(
                &[
                    "model/mem",
                    "epochs",
                    "first_loss",
                    "last_loss",
                    "alpha",
                    "val",
                    "test",
                ],
                &rows,
            ));
        }
        for run in &self.runs {
            out.push_str(&format!(
                "\nRun: ensemble test acc {}  single test acc {}  members {}\n",
                fmt_field(run.get("ensemble_test_acc")),
                fmt_field(run.get("single_test_acc")),
                fmt_field(run.get("members")),
            ));
        }

        // Reliability evolution: the |V_r| / |V_b| / |E_r| trajectory of
        // the distillation hook. Epochs without the hook carry nulls, and
        // teacher members emit all-zero sets; both are skipped. Long runs
        // are downsampled to keep the table readable (the raw trajectory
        // stays in the trace).
        let rdd_epochs: Vec<&Json> = self
            .epochs
            .iter()
            .filter(|e| {
                let f = |k| e.get(k).and_then(Json::as_f64);
                f("v_r").is_some()
                    && (f("v_r").unwrap_or(0.0) > 0.0
                        || f("v_b").unwrap_or(0.0) > 0.0
                        || f("e_r").unwrap_or(0.0) > 0.0)
            })
            .collect();
        if !rdd_epochs.is_empty() {
            const MAX_RELIABILITY_ROWS: usize = 24;
            let stride = rdd_epochs.len().div_ceil(MAX_RELIABILITY_ROWS).max(1);
            let shown: Vec<&Json> = rdd_epochs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % stride == 0 || *i == rdd_epochs.len() - 1)
                .map(|(_, e)| *e)
                .collect();
            out.push_str("\nReliability evolution");
            if stride > 1 {
                out.push_str(&format!(
                    " (every {stride} of {} records)",
                    rdd_epochs.len()
                ));
            }
            out.push('\n');
            let keys = ["member", "epoch", "v_r", "v_b", "e_r", "agreement", "gamma"];
            let rows: Vec<Vec<String>> = shown
                .iter()
                .map(|e| keys.iter().map(|k| fmt_field(e.get(k))).collect())
                .collect();
            out.push_str(&render_table(
                &["mem", "epoch", "|V_r|", "|V_b|", "|E_r|", "agree", "gamma"],
                &rows,
            ));
        }

        if !self.kernels.is_empty() {
            out.push_str("\nKernel self-time attribution\n");
            out.push_str(&self.render_kernel_table());
            let self_total: f64 = self.kernels.iter().map(|k| k.self_ms).sum();
            out.push_str(&format!(
                "self-time total {:.3} ms of {:.1} ms wall\n",
                self_total, self.wall_ms
            ));
        }

        if !self.serves.is_empty()
            || !self.serve_runs.is_empty()
            || !self.swaps.is_empty()
            || !self.breaker_states.is_empty()
        {
            out.push_str(&self.render_serving());
        }
        // Histogram-derived serve latencies (the online view; `serve.*`
        // cells record nanoseconds).
        let serve_hists: Vec<&HistStat> = self
            .hists
            .iter()
            .filter(|h| h.name.starts_with("serve.") && h.snapshot.count() > 0)
            .collect();
        if !serve_hists.is_empty() {
            out.push_str("\nServe latency histograms\n");
            let rows: Vec<Vec<String>> = serve_hists
                .iter()
                .map(|h| {
                    vec![
                        h.name.clone(),
                        fmt_num(h.snapshot.count() as f64),
                        format!("{:.4}", h.snapshot.p50() / 1e6),
                        format!("{:.4}", h.snapshot.p90() / 1e6),
                        format!("{:.4}", h.snapshot.p99() / 1e6),
                    ]
                })
                .collect();
            out.push_str(&render_table(
                &["hist", "count", "p50_ms", "p90_ms", "p99_ms"],
                &rows,
            ));
        }
        if !self.serve_metrics.is_empty() {
            out.push_str(&format!(
                "\nServe heartbeats ({} records)\n",
                self.serve_metrics.len()
            ));
            let keys = [
                "t_ms",
                "window_s",
                "requests",
                "p50_ms",
                "p99_ms",
                "queue_peak",
                "hit_rate",
                "shed",
                "shed_expired",
                "breaker",
            ];
            let rows: Vec<Vec<String>> = self
                .serve_metrics
                .iter()
                .map(|e| keys.iter().map(|k| fmt_field(e.get(k))).collect())
                .collect();
            out.push_str(&render_table(&keys, &rows));
        }

        if !self.recovery.is_empty() {
            out.push_str(&format!(
                "\nRecovery events: {} (see trace-summary for detail)\n",
                self.recovery.len()
            ));
        }
        if !self.env_warns.is_empty() {
            out.push_str("\nEnvironment warnings\n");
            let rows: Vec<Vec<String>> = self
                .env_warns
                .iter()
                .map(|e| {
                    ["var", "value", "expected"]
                        .iter()
                        .map(|k| fmt_field(e.get(k)))
                        .collect()
                })
                .collect();
            out.push_str(&render_table(&["var", "value", "expected"], &rows));
        }
        for w in &self.warnings {
            out.push_str(&format!("\nwarning: {w}\n"));
        }
        out
    }
}

/// Free-function form of [`TraceSummary::render_report`] (parse + render),
/// for callers holding raw trace text.
pub fn render_report(src: &str) -> Result<String, String> {
    Ok(TraceSummary::parse(src)?.render_report())
}

/// What went wrong inside [`percentile`] / [`sample_stats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StatsError {
    /// A sample was NaN or ±inf; carries the offending index and value.
    NonFinite { index: usize, value: f64 },
    /// A quantile outside [0, 1] (or NaN) was requested.
    BadQuantile(f64),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NonFinite { index, value } => {
                write!(f, "non-finite sample {value} at index {index}")
            }
            StatsError::BadQuantile(q) => write!(f, "quantile q={q} outside [0, 1]"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Nearest-rank percentile over an ascending-sorted slice; 0 on an empty
/// slice. Shared by `trace-summary` and the serve bench.
///
/// `q` outside [0, 1] (or NaN) is a [`StatsError::BadQuantile`] — callers
/// used to get a silent clamp, which hid real bugs (a caller passing `99`
/// instead of `0.99` read the max and never noticed). Unsorted input is a
/// caller bug: debug builds assert on it, release builds still index by
/// rank (garbage in, garbage out, but never out of bounds).
pub fn percentile(sorted: &[f64], q: f64) -> Result<f64, StatsError> {
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::BadQuantile(q));
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile input must be ascending-sorted"
    );
    if sorted.is_empty() {
        return Ok(0.0);
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    Ok(sorted[rank.min(sorted.len() - 1)])
}

/// Summary statistics over one set of latency/throughput samples.
///
/// Produced by [`sample_stats`]; the zero value (via `Default`) stands in
/// for "no samples" wherever a renderer cannot propagate an error.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SampleStats {
    /// Number of samples summarized.
    pub count: usize,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Nearest-rank median (0 when empty).
    pub p50: f64,
    /// Nearest-rank 99th percentile (0 when empty).
    pub p99: f64,
}

/// Sort-and-summarize one sample set: count, min/max/mean and the
/// nearest-rank p50/p99 used by both `rdd trace-summary` and
/// `rdd serve-bench`.
///
/// Non-finite samples (NaN, ±inf) are *rejected* — a benchmark that
/// produced one has a bug upstream, and quietly sorting NaNs would
/// corrupt every percentile — with a typed error naming the first
/// offending index. An empty slice is not an error: it yields the
/// all-zero stats.
pub fn sample_stats(samples: &[f64]) -> Result<SampleStats, StatsError> {
    if let Some(index) = samples.iter().position(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite {
            index,
            value: samples[index],
        });
    }
    if samples.is_empty() {
        return Ok(SampleStats::default());
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(SampleStats {
        count: sorted.len(),
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        // In-range constants: the quantile error arm cannot fire.
        p50: percentile(&sorted, 0.50).unwrap_or_default(),
        p99: percentile(&sorted, 0.99).unwrap_or_default(),
    })
}

/// Check a `hist` event and rebuild its [`HistSnapshot`]: `count` must be
/// numeric and `buckets` an array of ≤ 64 non-negative numbers whose sum
/// matches `count`.
fn validate_hist(event: &Json) -> Result<HistSnapshot, String> {
    let count = req_num(event, "count")?;
    let buckets = match event.get("buckets") {
        Some(Json::Arr(a)) => a,
        _ => return Err("hist field \"buckets\" must be an array".to_string()),
    };
    let mut counts = Vec::with_capacity(buckets.len());
    for (i, b) in buckets.iter().enumerate() {
        match b.as_f64() {
            Some(v) if v >= 0.0 && v.fract() == 0.0 => counts.push(v as u64),
            _ => return Err(format!("hist bucket {i} must be a non-negative integer")),
        }
    }
    let snapshot = HistSnapshot::from_counts(&counts).ok_or_else(|| {
        format!(
            "hist has {} buckets (max {})",
            counts.len(),
            super::hist::BUCKETS
        )
    })?;
    if snapshot.count() as f64 != count {
        return Err(format!(
            "hist has count={count} but buckets sum to {}",
            snapshot.count()
        ));
    }
    Ok(snapshot)
}

const SERVE_METRICS_NUMERIC: &[&str] = &[
    "window_s",
    "requests",
    "p50_ms",
    "p99_ms",
    "queue_peak",
    "hit_rate",
    "shed",
];

fn validate_serve_metrics(event: &Json) -> Result<(), String> {
    for key in SERVE_METRICS_NUMERIC {
        req_num(event, key)?;
    }
    // Added after the single-worker era; old traces lack it entirely, so
    // only its type is checked when present.
    if let Some(v) = event.get("shed_expired") {
        if v.as_f64().is_none() {
            return Err("serve_metrics field \"shed_expired\" must be numeric".to_string());
        }
    }
    // Circuit-breaker state (self-healing era): a string when a breaker is
    // configured, null when not, absent in older traces.
    match event.get("breaker") {
        None | Some(Json::Null) | Some(Json::Str(_)) => {}
        Some(_) => {
            return Err("serve_metrics field \"breaker\" must be a string or null".to_string())
        }
    }
    let hit_rate = req_num(event, "hit_rate")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(format!(
            "serve_metrics has hit_rate={hit_rate} outside [0, 1]"
        ));
    }
    Ok(())
}

const SERVE_BATCH_NUMERIC: &[&str] = &["requests", "nodes", "hits", "misses", "exec_ms"];

fn validate_serve_batch(event: &Json) -> Result<(), String> {
    for key in SERVE_BATCH_NUMERIC {
        req_num(event, key)?;
    }
    match event.get("lat_ms") {
        Some(Json::Arr(a)) if a.iter().all(|v| matches!(v, Json::Num(_))) => {}
        _ => return Err("serve_batch field \"lat_ms\" must be an array of numbers".to_string()),
    }
    let hits = req_num(event, "hits")?;
    let misses = req_num(event, "misses")?;
    let nodes = req_num(event, "nodes")?;
    if hits + misses != nodes {
        return Err(format!(
            "serve_batch has hits={hits} + misses={misses} != nodes={nodes}"
        ));
    }
    Ok(())
}

/// Keys every `epoch` event must carry. RDD-only quantities may be `null`
/// (plain baseline runs have no distillation hook) but must be present.
const EPOCH_NUMERIC: &[&str] = &["epoch", "loss", "l1", "train_acc", "val_acc", "test_acc"];
const EPOCH_NULLABLE: &[&str] = &[
    "member",
    "l2",
    "lreg",
    "gamma",
    "v_r",
    "v_b",
    "e_r",
    "agreement",
    "teacher_entropy_thresh",
    "student_entropy_thresh",
];

fn validate_epoch(event: &Json) -> Result<(), String> {
    req_str(event, "model")?;
    for key in EPOCH_NUMERIC {
        req_num(event, key)?;
    }
    for key in EPOCH_NULLABLE {
        match event.get(key) {
            Some(Json::Null) | Some(Json::Num(_)) => {}
            Some(_) => return Err(format!("epoch field {key:?} must be number or null")),
            None => return Err(format!("epoch event missing field {key:?}")),
        }
    }
    match event.get("alpha") {
        Some(Json::Arr(a)) if a.iter().all(|v| matches!(v, Json::Num(_))) => {}
        _ => return Err("epoch field \"alpha\" must be an array of numbers".to_string()),
    }
    if let (Some(v_r), Some(v_b)) = (
        event.get("v_r").and_then(Json::as_f64),
        event.get("v_b").and_then(Json::as_f64),
    ) {
        if v_b > v_r {
            return Err(format!(
                "epoch has v_b={v_b} > v_r={v_r} (V_b ⊆ V_r violated)"
            ));
        }
    }
    Ok(())
}

/// Parse and schema-check a trace; alias for [`TraceSummary::parse`],
/// named for the `tools/trace_check.rs` validator.
pub fn validate(src: &str) -> Result<TraceSummary, String> {
    TraceSummary::parse(src)
}

fn req_str(event: &Json, key: &str) -> Result<String, String> {
    event
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn req_num(event: &Json, key: &str) -> Result<f64, String> {
    event
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

/// Compact cell formatting: integers without decimals, reals to 4 places,
/// arrays joined with commas, nulls as `-`.
fn fmt_field(v: Option<&Json>) -> String {
    match v {
        None | Some(Json::Null) => "-".to_string(),
        Some(Json::Bool(b)) => b.to_string(),
        Some(Json::Num(n)) => fmt_num(*n),
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Arr(a)) => {
            if a.is_empty() {
                "-".to_string()
            } else {
                a.iter()
                    .map(|x| fmt_field(Some(x)))
                    .collect::<Vec<_>>()
                    .join(",")
            }
        }
        Some(obj @ Json::Obj(_)) => obj.to_string(),
    }
}

fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        "-".to_string()
    } else if n.fract() == 0.0 && n.abs() < 1e12 {
        format!("{}", n as i64)
    } else {
        format!("{n:.4}")
    }
}

/// Fixed-width plain-text table: first column left-aligned, the rest
/// right-aligned. Shared by `trace-summary` and the bench binaries.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let mut write_row = |cells: &[String]| {
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map_or("", String::as_str);
            if i > 0 {
                out.push_str("  ");
            }
            let pad = w.saturating_sub(cell.chars().count());
            if i == 0 {
                out.push_str(cell);
                if i + 1 < cols {
                    out.push_str(&" ".repeat(pad));
                }
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    write_row(&header_cells);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    write_row(&rule);
    for row in rows {
        write_row(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch_line(epoch: usize, v_r: usize, v_b: usize) -> String {
        format!(
            concat!(
                "{{\"ev\":\"epoch\",\"t_ms\":1.5,\"model\":\"gcn\",\"member\":1,",
                "\"epoch\":{},\"loss\":1.5,\"l1\":1.0,\"l2\":0.25,\"lreg\":0.1,",
                "\"gamma\":0.5,\"v_r\":{},\"v_b\":{},\"e_r\":12,\"agreement\":0.9,",
                "\"teacher_entropy_thresh\":1.2,\"student_entropy_thresh\":null,",
                "\"alpha\":[1.0,2.0],\"train_acc\":0.9,\"val_acc\":0.8,\"test_acc\":0.7}}"
            ),
            epoch, v_r, v_b
        )
    }

    #[test]
    fn parses_and_aggregates_a_trace() {
        let src = [
            epoch_line(0, 100, 40),
            epoch_line(1, 90, 30),
            "{\"ev\":\"kernel\",\"t_ms\":2.0,\"name\":\"matmul\",\"calls\":5,\"total_ms\":1.0}"
                .to_string(),
            "{\"ev\":\"kernel\",\"t_ms\":3.0,\"name\":\"matmul\",\"calls\":9,\"total_ms\":2.5}"
                .to_string(),
            "{\"ev\":\"counter\",\"t_ms\":3.0,\"name\":\"pool.tasks\",\"value\":64}".to_string(),
            "{\"ev\":\"warn\",\"t_ms\":3.0,\"msg\":\"careful\"}".to_string(),
            "{\"ev\":\"pool_init\",\"t_ms\":0.1,\"threads\":8}".to_string(),
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.epochs.len(), 2);
        assert_eq!(summary.kernels.len(), 1);
        assert_eq!(summary.kernels[0].calls, 9.0, "last snapshot wins");
        assert_eq!(summary.counters, vec![("pool.tasks".to_string(), 64.0)]);
        assert_eq!(summary.warnings, vec!["careful".to_string()]);
        assert_eq!(summary.other.len(), 1);
        assert_eq!(summary.total_events, 7);
        let rendered = summary.render();
        assert!(rendered.contains("Epochs (2 records)"));
        assert!(rendered.contains("matmul"));
        assert!(rendered.contains("pool.tasks"));
        assert!(rendered.contains("warning: careful"));
    }

    #[test]
    fn collects_and_renders_recovery_events() {
        let src = [
            "{\"ev\":\"fault\",\"t_ms\":1.0,\"kind\":\"nan_loss\",\"site\":\"epoch\",\"n\":7}",
            concat!(
                "{\"ev\":\"rollback\",\"t_ms\":1.1,\"model\":\"gcn\",\"epoch\":7,",
                "\"retry\":1,\"lr_scale\":1.0,\"reason\":\"nonfinite_loss\"}"
            ),
            "{\"ev\":\"resume\",\"t_ms\":2.0,\"next_member\":2,\"loaded\":2,\"dir\":\"run\"}",
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.recovery.len(), 3);
        assert!(summary.other.is_empty());
        let rendered = summary.render();
        assert!(
            rendered.contains("Recovery events (3 records)"),
            "{rendered}"
        );
        assert!(rendered.contains("rollback: model=gcn"), "{rendered}");
        assert!(rendered.contains("site=epoch"), "{rendered}");
    }

    #[test]
    fn aggregates_and_renders_serve_events() {
        let src = [
            concat!(
                "{\"ev\":\"serve_batch\",\"t_ms\":1.0,\"requests\":2,\"nodes\":3,",
                "\"hits\":1,\"misses\":2,\"exec_ms\":0.5,\"lat_ms\":[0.2,0.9]}"
            ),
            concat!(
                "{\"ev\":\"serve_batch\",\"t_ms\":2.0,\"requests\":1,\"nodes\":1,",
                "\"hits\":1,\"misses\":0,\"exec_ms\":0.0,\"lat_ms\":[0.1]}"
            ),
            concat!(
                "{\"ev\":\"serve_run\",\"t_ms\":3.0,\"requests\":3,\"batches\":2,",
                "\"hits\":2,\"misses\":2,\"wall_ms\":4.0}"
            ),
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.serves.len(), 2);
        assert_eq!(summary.serve_runs.len(), 1);
        assert!(summary.other.is_empty());
        let rendered = summary.render();
        assert!(rendered.contains("Serving"), "{rendered}");
        assert!(rendered.contains("cache hit rate"), "{rendered}");
        assert!(rendered.contains("50.0%"), "{rendered}");
        assert!(rendered.contains("p99 latency ms"), "{rendered}");
        assert!(rendered.contains("Serve run: requests 3"), "{rendered}");
    }

    #[test]
    fn aggregates_and_renders_swap_events() {
        let src = concat!(
            "{\"ev\":\"swap\",\"t_ms\":5.0,\"generation\":2,",
            "\"checksum\":\"00000000deadbeef\",\"path\":\"model.rdd\"}"
        );
        let summary = TraceSummary::parse(src).unwrap();
        assert_eq!(summary.swaps.len(), 1);
        assert!(summary.other.is_empty());
        let rendered = summary.render();
        assert!(rendered.contains("Swap: generation 2"), "{rendered}");
        assert!(rendered.contains("00000000deadbeef"), "{rendered}");
        let report = summary.render_report();
        assert!(report.contains("Swap: generation 2"), "{report}");

        let missing = "{\"ev\":\"swap\",\"t_ms\":5.0,\"generation\":2,\"path\":\"m\"}";
        let err = TraceSummary::parse(missing).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn collects_and_renders_self_healing_events() {
        let src = [
            concat!(
                "{\"ev\":\"worker_panic\",\"t_ms\":1.0,\"worker\":2,\"requests\":8,",
                "\"requeued\":8,\"failed\":0}"
            ),
            "{\"ev\":\"worker_respawn\",\"t_ms\":1.1,\"worker\":2,\"respawns\":1}",
            concat!(
                "{\"ev\":\"swap_failed\",\"t_ms\":2.0,\"path\":\"model.rdd\",",
                "\"error\":\"bad artifact: truncated\",\"failures\":1,\"backoff_ms\":400}"
            ),
            concat!(
                "{\"ev\":\"breaker_state\",\"t_ms\":3.0,\"state\":\"open\",\"from\":\"closed\",",
                "\"p99_ms\":42.5,\"shed_rate\":0.0,\"retry_after_ms\":1000}"
            ),
            concat!(
                "{\"ev\":\"breaker_state\",\"t_ms\":4.0,\"state\":\"half_open\",\"from\":\"open\",",
                "\"p99_ms\":0,\"shed_rate\":0,\"retry_after_ms\":null}"
            ),
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.recovery.len(), 3);
        assert_eq!(summary.breaker_states.len(), 2);
        assert!(summary.other.is_empty());
        let rendered = summary.render();
        assert!(rendered.contains("worker_panic: worker=2"), "{rendered}");
        assert!(rendered.contains("worker_respawn"), "{rendered}");
        assert!(rendered.contains("swap_failed"), "{rendered}");
        assert!(rendered.contains("Breaker: closed -> open"), "{rendered}");
        assert!(
            rendered.contains("Breaker: open -> half_open"),
            "{rendered}"
        );
        let report = summary.render_report();
        assert!(report.contains("Breaker: closed -> open"), "{report}");

        let missing =
            "{\"ev\":\"swap_failed\",\"t_ms\":1.0,\"path\":\"m\",\"failures\":1,\"backoff_ms\":2}";
        let err = TraceSummary::parse(missing).unwrap_err();
        assert!(err.contains("error"), "{err}");
        let missing = "{\"ev\":\"breaker_state\",\"t_ms\":1.0,\"state\":\"open\",\"p99_ms\":1,\"shed_rate\":0}";
        let err = TraceSummary::parse(missing).unwrap_err();
        assert!(err.contains("from"), "{err}");
    }

    #[test]
    fn serve_run_renders_failed_and_rejected_when_present() {
        let src = concat!(
            "{\"ev\":\"serve_run\",\"t_ms\":3.0,\"requests\":10,\"batches\":2,",
            "\"hits\":2,\"misses\":8,\"shed\":0,\"expired\":0,\"failed\":3,",
            "\"rejected\":4,\"wall_ms\":5.0}"
        );
        let summary = TraceSummary::parse(src).unwrap();
        let rendered = summary.render();
        assert!(rendered.contains("failed 3  rejected 4"), "{rendered}");
        assert!(rendered.contains("wall_ms 5"), "{rendered}");
    }

    #[test]
    fn serve_metrics_accepts_and_checks_breaker_field() {
        let with = concat!(
            "{\"ev\":\"serve_metrics\",\"t_ms\":1.0,\"window_s\":5,\"requests\":100,",
            "\"p50_ms\":0.5,\"p99_ms\":2.0,\"queue_peak\":7,\"hit_rate\":0.25,",
            "\"shed\":1,\"shed_expired\":0,\"breaker\":\"open\"}"
        );
        let summary = TraceSummary::parse(with).unwrap();
        assert_eq!(summary.serve_metrics.len(), 1);
        let report = summary.render_report();
        assert!(report.contains("breaker"), "{report}");
        assert!(report.contains("open"), "{report}");
        let bad = concat!(
            "{\"ev\":\"serve_metrics\",\"t_ms\":1.0,\"window_s\":5,\"requests\":100,",
            "\"p50_ms\":0.5,\"p99_ms\":2.0,\"queue_peak\":7,\"hit_rate\":0.25,",
            "\"shed\":1,\"shed_expired\":0,\"breaker\":7}"
        );
        let err = TraceSummary::parse(bad).unwrap_err();
        assert!(err.contains("breaker"), "{err}");
    }

    #[test]
    fn serve_metrics_accepts_and_checks_shed_expired() {
        let with = concat!(
            "{\"ev\":\"serve_metrics\",\"t_ms\":1.0,\"window_s\":5,\"requests\":100,",
            "\"p50_ms\":0.5,\"p99_ms\":2.0,\"queue_peak\":7,\"hit_rate\":0.25,",
            "\"shed\":1,\"shed_expired\":3}"
        );
        let summary = TraceSummary::parse(with).unwrap();
        assert_eq!(summary.serve_metrics.len(), 1);
        let bad = concat!(
            "{\"ev\":\"serve_metrics\",\"t_ms\":1.0,\"window_s\":5,\"requests\":100,",
            "\"p50_ms\":0.5,\"p99_ms\":2.0,\"queue_peak\":7,\"hit_rate\":0.25,",
            "\"shed\":1,\"shed_expired\":\"oops\"}"
        );
        let err = TraceSummary::parse(bad).unwrap_err();
        assert!(err.contains("shed_expired"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_serve_batches() {
        let bad_counts = concat!(
            "{\"ev\":\"serve_batch\",\"t_ms\":1.0,\"requests\":2,\"nodes\":3,",
            "\"hits\":1,\"misses\":1,\"exec_ms\":0.5,\"lat_ms\":[0.2]}"
        );
        let err = TraceSummary::parse(bad_counts).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("hits"), "{err}");

        let bad_lat = concat!(
            "{\"ev\":\"serve_batch\",\"t_ms\":1.0,\"requests\":1,\"nodes\":1,",
            "\"hits\":0,\"misses\":1,\"exec_ms\":0.5,\"lat_ms\":\"oops\"}"
        );
        let err = TraceSummary::parse(bad_lat).unwrap_err();
        assert!(err.contains("lat_ms"), "{err}");
    }

    #[test]
    fn percentile_is_nearest_rank_on_sorted_data() {
        assert_eq!(percentile(&[], 0.5), Ok(0.0));
        assert_eq!(percentile(&[7.0], 0.99), Ok(7.0));
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), Ok(1.0));
        assert_eq!(percentile(&xs, 1.0), Ok(100.0));
        assert_eq!(percentile(&xs, 0.50), Ok(51.0)); // nearest rank on 0..=99
        assert_eq!(percentile(&xs, 0.99), Ok(99.0));
    }

    #[test]
    fn percentile_rejects_out_of_range_quantiles() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -0.1), Err(StatsError::BadQuantile(-0.1)));
        assert_eq!(percentile(&xs, 99.0), Err(StatsError::BadQuantile(99.0)));
        assert!(matches!(
            percentile(&xs, f64::NAN),
            Err(StatsError::BadQuantile(_))
        ));
        let msg = percentile(&xs, 2.0).unwrap_err().to_string();
        assert!(msg.contains("outside [0, 1]"), "got: {msg}");
    }

    #[test]
    #[should_panic(expected = "ascending-sorted")]
    #[cfg(debug_assertions)]
    fn percentile_asserts_sorted_input_in_debug() {
        let _ = percentile(&[3.0, 1.0, 2.0], 0.5);
    }

    #[test]
    fn sample_stats_empty_is_zero_not_error() {
        assert_eq!(sample_stats(&[]).unwrap(), SampleStats::default());
    }

    #[test]
    fn sample_stats_single_sample_is_that_sample_everywhere() {
        let s = sample_stats(&[3.25]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 3.25);
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.p50, 3.25);
        assert_eq!(s.p99, 3.25);
    }

    #[test]
    fn sample_stats_sorts_unordered_input() {
        let xs: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        let s = sample_stats(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.p50, 51.0); // nearest rank, matches `percentile`
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn sample_stats_rejects_non_finite_with_index() {
        let err = sample_stats(&[1.0, f64::NAN, 2.0]).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 1, .. }));
        assert!(err.to_string().contains("index 1"), "got: {err}");
        let err = sample_stats(&[f64::INFINITY]).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 0, .. }));
        let err = sample_stats(&[0.0, 1.0, f64::NEG_INFINITY]).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 2, .. }));
    }

    #[test]
    fn aggregates_hist_and_span_parent_events() {
        let src = [
            // 3 samples in bucket 4 ([16, 32)), 1 in bucket 5.
            "{\"ev\":\"hist\",\"t_ms\":1.0,\"name\":\"spmm\",\"count\":2,\"buckets\":[0,0,0,0,2]}",
            "{\"ev\":\"hist\",\"t_ms\":2.0,\"name\":\"spmm\",\"count\":4,\"buckets\":[0,0,0,0,3,1]}",
            "{\"ev\":\"span_parent\",\"t_ms\":2.0,\"child\":\"spmm\",\"parent\":\"forward\",\"calls\":4}",
            concat!(
                "{\"ev\":\"kernel\",\"t_ms\":2.0,\"name\":\"spmm\",\"calls\":4,",
                "\"total_ms\":2.0,\"self_ms\":1.5}"
            ),
            "{\"ev\":\"kernel\",\"t_ms\":2.0,\"name\":\"legacy\",\"calls\":1,\"total_ms\":3.0}",
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.hists.len(), 1, "last snapshot per name wins");
        assert_eq!(summary.hists[0].snapshot.count(), 4);
        assert_eq!(
            summary.span_edges,
            vec![SpanEdge {
                child: "spmm".into(),
                parent: "forward".into(),
                calls: 4.0
            }]
        );
        let spmm = summary.kernels.iter().find(|k| k.name == "spmm").unwrap();
        assert_eq!(spmm.self_ms, 1.5);
        let legacy = summary.kernels.iter().find(|k| k.name == "legacy").unwrap();
        assert_eq!(legacy.self_ms, 3.0, "absent self_ms defaults to total");
        assert_eq!(summary.wall_ms, 2.0);
        let report = summary.render_report();
        assert!(report.contains("Kernel self-time attribution"), "{report}");
        assert!(report.contains("forwardx4"), "{report}");
        assert!(report.contains("self-time total"), "{report}");
    }

    #[test]
    fn rejects_malformed_hist_events() {
        let bad_sum = "{\"ev\":\"hist\",\"t_ms\":1.0,\"name\":\"x\",\"count\":5,\"buckets\":[1,1]}";
        let err = TraceSummary::parse(bad_sum).unwrap_err();
        assert!(err.contains("buckets sum"), "{err}");
        let neg = "{\"ev\":\"hist\",\"t_ms\":1.0,\"name\":\"x\",\"count\":1,\"buckets\":[-1]}";
        let err = TraceSummary::parse(neg).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let wide = format!(
            "{{\"ev\":\"hist\",\"t_ms\":1.0,\"name\":\"x\",\"count\":65,\"buckets\":[{}]}}",
            vec!["1"; 65].join(",")
        );
        let err = TraceSummary::parse(&wide).unwrap_err();
        assert!(err.contains("65 buckets"), "{err}");
    }

    #[test]
    fn aggregates_serve_metrics_and_env_warns() {
        let src = [
            concat!(
                "{\"ev\":\"serve_metrics\",\"t_ms\":1.0,\"window_s\":5,\"requests\":100,",
                "\"p50_ms\":0.5,\"p99_ms\":2.0,\"queue_peak\":7,\"hit_rate\":0.25,\"shed\":0}"
            ),
            concat!(
                "{\"ev\":\"env_warn\",\"t_ms\":1.0,\"var\":\"RDD_THREADS\",",
                "\"value\":\"banana\",\"expected\":\"a positive integer\"}"
            ),
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        assert_eq!(summary.serve_metrics.len(), 1);
        assert_eq!(summary.env_warns.len(), 1);
        assert!(summary.other.is_empty());
        let report = summary.render_report();
        assert!(report.contains("Serve heartbeats (1 records)"), "{report}");
        assert!(report.contains("RDD_THREADS"), "{report}");

        let bad = concat!(
            "{\"ev\":\"serve_metrics\",\"t_ms\":1.0,\"window_s\":5,\"requests\":100,",
            "\"p50_ms\":0.5,\"p99_ms\":2.0,\"queue_peak\":7,\"hit_rate\":1.5,\"shed\":0}"
        );
        let err = TraceSummary::parse(bad).unwrap_err();
        assert!(err.contains("hit_rate"), "{err}");
    }

    #[test]
    fn report_renders_convergence_and_reliability() {
        let src = [
            epoch_line(0, 100, 40),
            epoch_line(1, 90, 30),
            concat!(
                "{\"ev\":\"member\",\"t_ms\":3.0,\"member\":1,\"alpha\":0.75,",
                "\"val_acc\":0.8,\"test_acc\":0.7,\"epochs\":2}"
            )
            .to_string(),
            concat!(
                "{\"ev\":\"run\",\"t_ms\":4.0,\"ensemble_test_acc\":0.8,",
                "\"single_test_acc\":0.7,\"members\":1}"
            )
            .to_string(),
        ]
        .join("\n");
        let summary = TraceSummary::parse(&src).unwrap();
        let report = summary.render_report();
        assert!(report.contains("Member convergence"), "{report}");
        assert!(report.contains("gcn/1"), "{report}");
        assert!(
            report.contains("0.75"),
            "alpha joined from member: {report}"
        );
        assert!(report.contains("Reliability evolution"), "{report}");
        assert!(report.contains("|V_r|"), "{report}");
        assert!(report.contains("Run: ensemble test acc 0.8"), "{report}");
    }

    #[test]
    fn rejects_epoch_records_violating_subset_invariant() {
        let err = TraceSummary::parse(&epoch_line(0, 40, 100)).unwrap_err();
        assert!(err.contains("V_b ⊆ V_r"), "got: {err}");
    }

    #[test]
    fn rejects_missing_fields_with_line_numbers() {
        let src = format!(
            "{}\n{{\"ev\":\"kernel\",\"t_ms\":1.0,\"name\":\"matmul\"}}",
            epoch_line(0, 10, 5)
        );
        let err = TraceSummary::parse(&src).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
        assert!(err.contains("calls"), "got: {err}");

        let err = TraceSummary::parse("{\"t_ms\":1.0}").unwrap_err();
        assert!(err.contains("\"ev\""), "got: {err}");

        let err = TraceSummary::parse("not json").unwrap_err();
        assert!(err.starts_with("line 1:"), "got: {err}");
    }

    #[test]
    fn renders_fixed_width_tables() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer".to_string(), "12345".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "name    value");
        assert_eq!(lines[1], "------  -----");
        assert_eq!(lines[2], "a           1");
        assert_eq!(lines[3], "longer  12345");
    }
}
