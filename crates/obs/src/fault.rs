//! Deterministic fault injection for exercising the crash-safe run and
//! serve paths.
//!
//! A fault is described as `<kind>@<site>:<n>` — the *n*-th time (0-indexed)
//! execution passes the named site, the fault fires exactly once. An
//! optional repeat count `<kind>@<site>:<n>x<k>` fires on the `k`
//! consecutive passes `n..n+k` instead (chaos tests that must survive more
//! than one hit per process):
//!
//! - `nan_loss@epoch:7` — the 8th epoch attempt reports a non-finite loss,
//!   exercising the divergence guard's rollback path.
//! - `io_fail@ckpt:2` — the 3rd atomic checkpoint write fails with an
//!   injected I/O error, killing a crash-safe run mid-persist.
//! - `panic@member:1` — member 1's training panics, exercising the
//!   `catch_unwind` isolation and `rdd resume`.
//! - `panic@serve_worker:0x2` — the first two batches claimed by serve-pool
//!   workers panic, exercising worker supervision (requeue + respawn).
//! - `io_fail@swap_load` / `corrupt@shard_load` — a watched-artifact reload
//!   or sharded-artifact shard load fails, exercising swap rollback.
//! - `slow@serve_batch:0x50` — the first 50 served batches stall, tripping
//!   the overload circuit breaker.
//!
//! The spec comes from the `RDD_FAULT` environment variable, read once per
//! process (latched, like `RDD_TRACE` / `RDD_WORKSPACE`); tests inject
//! programmatically via [`arm`] / [`disarm`], which override the latch.
//! Unparseable values route a warning through the recorder and disarm.
//!
//! Instrumented code calls [`fire`] at each site and acts on the returned
//! [`FaultKind`]; the module emits a `fault` trace event at the moment a
//! fault fires so traces explain what a run survived. Counting is
//! process-global and per-site: every pass over the armed site increments
//! its counter whether or not the fault has fired yet.

use std::sync::Mutex;

use super::json::Json;
use super::recorder::{event, warn};

/// What an injected fault does at its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The training loop treats the epoch's loss as NaN.
    NanLoss,
    /// An atomic checkpoint write returns an injected `io::Error`.
    IoFail,
    /// The site panics (caught by the crash-safe member isolation or the
    /// serve-pool worker supervisor).
    Panic,
    /// The site sees deliberately corrupted content (e.g. a shard load
    /// returns a typed artifact-corruption error).
    Corrupt,
    /// The site stalls long enough to blow a latency SLO (serve-path chaos
    /// for the overload circuit breaker).
    Slow,
}

impl FaultKind {
    /// Spec-string name of the kind
    /// (`nan_loss` / `io_fail` / `panic` / `corrupt` / `slow`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::NanLoss => "nan_loss",
            FaultKind::IoFail => "io_fail",
            FaultKind::Panic => "panic",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Slow => "slow",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "nan_loss" => Some(FaultKind::NanLoss),
            "io_fail" => Some(FaultKind::IoFail),
            "panic" => Some(FaultKind::Panic),
            "corrupt" => Some(FaultKind::Corrupt),
            "slow" => Some(FaultKind::Slow),
            _ => None,
        }
    }
}

#[derive(Clone, Debug)]
struct FaultSpec {
    kind: FaultKind,
    site: String,
    n: u64,
    /// Consecutive passes that fire, starting at `n` (default 1).
    k: u64,
}

fn parse_spec(raw: &str) -> Result<Option<FaultSpec>, String> {
    let raw = raw.trim();
    if raw.is_empty() || raw == "off" {
        return Ok(None);
    }
    let err = || {
        format!(
            "invalid RDD_FAULT spec {raw:?}: expected <kind>@<site>:<n> or \
             <kind>@<site>:<n>x<k>, e.g. nan_loss@epoch:7 or panic@serve_worker:0x2"
        )
    };
    let (kind_s, rest) = raw.split_once('@').ok_or_else(err)?;
    let (site, n_s) = rest.rsplit_once(':').ok_or_else(err)?;
    let kind = FaultKind::parse(kind_s).ok_or_else(|| {
        format!(
            "invalid RDD_FAULT kind {kind_s:?}: expected nan_loss, io_fail, panic, \
             corrupt or slow"
        )
    })?;
    if site.is_empty() {
        return Err(err());
    }
    let (n_s, k_s) = match n_s.split_once('x') {
        Some((n_s, k_s)) => (n_s, Some(k_s)),
        None => (n_s, None),
    };
    let n: u64 = n_s.parse().map_err(|_| err())?;
    let k: u64 = match k_s {
        Some(k_s) => k_s.parse().map_err(|_| err())?,
        None => 1,
    };
    if k == 0 {
        return Err(err());
    }
    Ok(Some(FaultSpec {
        kind,
        site: site.to_string(),
        n,
        k,
    }))
}

struct FaultState {
    /// `None` until the first [`fire`] / [`arm`] latches the env variable.
    initialized: bool,
    spec: Option<FaultSpec>,
    /// Passes seen over the armed site.
    count: u64,
    /// Passes that have fired so far (spent once `fired == spec.k`).
    fired: u64,
}

static STATE: Mutex<FaultState> = Mutex::new(FaultState {
    initialized: false,
    spec: None,
    count: 0,
    fired: 0,
});

fn ensure_init(state: &mut FaultState) {
    if state.initialized {
        return;
    }
    state.initialized = true;
    if let Ok(raw) = std::env::var("RDD_FAULT") {
        match parse_spec(&raw) {
            Ok(spec) => state.spec = spec,
            Err(msg) => warn(&msg),
        }
    }
}

/// Arm a fault programmatically (tests), replacing any env-latched spec and
/// resetting the pass counter. An empty spec or `"off"` disarms.
pub fn arm(spec: &str) -> Result<(), String> {
    let parsed = parse_spec(spec)?;
    let mut state = STATE.lock().unwrap();
    state.initialized = true;
    state.spec = parsed;
    state.count = 0;
    state.fired = 0;
    Ok(())
}

/// Disarm any pending fault and reset counters (tests).
pub fn disarm() {
    arm("off").expect("\"off\" always parses");
}

/// True when a fault spec is armed and has not fully fired yet (fewer than
/// `k` passes have fired).
pub fn armed() -> bool {
    let mut state = STATE.lock().unwrap();
    ensure_init(&mut state);
    match state.spec.as_ref() {
        Some(spec) => state.fired < spec.k,
        None => false,
    }
}

/// Record one pass over `site`. Returns the armed [`FaultKind`] on the `k`
/// consecutive passes whose 0-indexed count falls in `n..n+k` (`k` defaults
/// to 1, so a plain `:<n>` spec fires exactly once). Emits a `fault` trace
/// event each time it fires. Callers decide what the kind means at their
/// site (unknown combinations are ignored by convention).
pub fn fire(site: &str) -> Option<FaultKind> {
    let mut state = STATE.lock().unwrap();
    ensure_init(&mut state);
    let (kind, n, k) = match state.spec.as_ref() {
        Some(spec) if spec.site == site => (spec.kind, spec.n, spec.k),
        _ => return None,
    };
    let pass = state.count;
    state.count += 1;
    if pass < n || pass >= n + k {
        return None;
    }
    state.fired += 1;
    drop(state);
    event(
        "fault",
        &[
            ("kind", Json::from(kind.as_str())),
            ("site", Json::from(site)),
            ("n", Json::Num(n as f64)),
            ("pass", Json::Num(pass as f64)),
        ],
    );
    Some(kind)
}

#[cfg(test)]
mod tests {
    use super::super::recorder;
    use super::*;

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let spec = parse_spec("nan_loss@epoch:7").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::NanLoss);
        assert_eq!(spec.site, "epoch");
        assert_eq!(spec.n, 7);
        let spec = parse_spec(" io_fail@ckpt:0 ").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::IoFail);
        let spec = parse_spec("panic@member:1").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::Panic);
        assert_eq!(spec.k, 1, "plain :<n> specs fire once");
        let spec = parse_spec("panic@serve_worker:0x2").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::Panic);
        assert_eq!((spec.n, spec.k), (0, 2));
        let spec = parse_spec("corrupt@shard_load:3").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::Corrupt);
        let spec = parse_spec("slow@serve_batch:0x50").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::Slow);
        assert_eq!((spec.n, spec.k), (0, 50));
        assert!(parse_spec("").unwrap().is_none());
        assert!(parse_spec("off").unwrap().is_none());

        for bad in [
            "nan_loss",
            "nan_loss@epoch",
            "nan_loss@:3",
            "explode@epoch:3",
            "nan_loss@epoch:x",
            "nan_loss@epoch:-1",
            "panic@serve_worker:0x",
            "panic@serve_worker:0x0",
            "panic@serve_worker:x2",
        ] {
            let err = parse_spec(bad).unwrap_err();
            assert!(err.contains("RDD_FAULT"), "{bad:?} -> {err}");
        }

        let err = parse_spec("explode@epoch:3").unwrap_err();
        for kind in ["nan_loss", "io_fail", "panic", "corrupt", "slow"] {
            assert!(err.contains(kind), "kind list should mention {kind}: {err}");
        }
    }

    #[test]
    fn repeat_count_fires_on_k_consecutive_passes() {
        let _g = recorder::tests::lock();
        arm("panic@serve_worker:1x2").unwrap();
        assert_eq!(fire("serve_worker"), None); // pass 0
        assert!(armed());
        assert_eq!(fire("serve_worker"), Some(FaultKind::Panic)); // pass 1
        assert!(armed(), "one of two firings left");
        assert_eq!(fire("serve_worker"), Some(FaultKind::Panic)); // pass 2
        assert!(!armed(), "all k firings spent");
        assert_eq!(fire("serve_worker"), None); // pass 3
        disarm();
    }

    #[test]
    fn fires_exactly_once_at_the_indexed_pass() {
        let _g = recorder::tests::lock();
        arm("nan_loss@epoch:2").unwrap();
        assert!(armed());
        assert_eq!(fire("ckpt"), None, "other sites never fire");
        assert_eq!(fire("epoch"), None); // pass 0
        assert_eq!(fire("epoch"), None); // pass 1
        assert_eq!(fire("epoch"), Some(FaultKind::NanLoss)); // pass 2
        assert!(!armed(), "a fired fault is spent");
        assert_eq!(fire("epoch"), None, "never fires twice");
        disarm();
        assert_eq!(fire("epoch"), None);
    }

    #[test]
    fn firing_emits_a_fault_event() {
        let _g = recorder::tests::lock();
        let path = std::env::temp_dir().join(format!(
            "rdd_obs_fault_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        recorder::init_file(&path).unwrap();
        arm("panic@member:0").unwrap();
        assert_eq!(fire("member"), Some(FaultKind::Panic));
        disarm();
        recorder::flush();
        recorder::disable();
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("\"ev\":\"fault\""))
            .expect("fault event recorded");
        assert!(line.contains("\"kind\":\"panic\""), "{line}");
        assert!(line.contains("\"site\":\"member\""), "{line}");
        std::fs::remove_file(&path).ok();
    }
}
