//! Deterministic fault injection for exercising the crash-safe run paths.
//!
//! A fault is described as `<kind>@<site>:<n>` — the *n*-th time (0-indexed)
//! execution passes the named site, the fault fires exactly once:
//!
//! - `nan_loss@epoch:7` — the 8th epoch attempt reports a non-finite loss,
//!   exercising the divergence guard's rollback path.
//! - `io_fail@ckpt:2` — the 3rd atomic checkpoint write fails with an
//!   injected I/O error, killing a crash-safe run mid-persist.
//! - `panic@member:1` — member 1's training panics, exercising the
//!   `catch_unwind` isolation and `rdd resume`.
//!
//! The spec comes from the `RDD_FAULT` environment variable, read once per
//! process (latched, like `RDD_TRACE` / `RDD_WORKSPACE`); tests inject
//! programmatically via [`arm`] / [`disarm`], which override the latch.
//! Unparseable values route a warning through the recorder and disarm.
//!
//! Instrumented code calls [`fire`] at each site and acts on the returned
//! [`FaultKind`]; the module emits a `fault` trace event at the moment a
//! fault fires so traces explain what a run survived. Counting is
//! process-global and per-site: every pass over the armed site increments
//! its counter whether or not the fault has fired yet.

use std::sync::Mutex;

use super::json::Json;
use super::recorder::{event, warn};

/// What an injected fault does at its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The training loop treats the epoch's loss as NaN.
    NanLoss,
    /// An atomic checkpoint write returns an injected `io::Error`.
    IoFail,
    /// The site panics (caught by the crash-safe member isolation).
    Panic,
}

impl FaultKind {
    /// Spec-string name of the kind (`nan_loss` / `io_fail` / `panic`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::NanLoss => "nan_loss",
            FaultKind::IoFail => "io_fail",
            FaultKind::Panic => "panic",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "nan_loss" => Some(FaultKind::NanLoss),
            "io_fail" => Some(FaultKind::IoFail),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }
}

#[derive(Clone, Debug)]
struct FaultSpec {
    kind: FaultKind,
    site: String,
    n: u64,
}

fn parse_spec(raw: &str) -> Result<Option<FaultSpec>, String> {
    let raw = raw.trim();
    if raw.is_empty() || raw == "off" {
        return Ok(None);
    }
    let err = || {
        format!("invalid RDD_FAULT spec {raw:?}: expected <kind>@<site>:<n>, e.g. nan_loss@epoch:7")
    };
    let (kind_s, rest) = raw.split_once('@').ok_or_else(err)?;
    let (site, n_s) = rest.rsplit_once(':').ok_or_else(err)?;
    let kind = FaultKind::parse(kind_s).ok_or_else(|| {
        format!("invalid RDD_FAULT kind {kind_s:?}: expected nan_loss, io_fail or panic")
    })?;
    if site.is_empty() {
        return Err(err());
    }
    let n: u64 = n_s.parse().map_err(|_| err())?;
    Ok(Some(FaultSpec {
        kind,
        site: site.to_string(),
        n,
    }))
}

struct FaultState {
    /// `None` until the first [`fire`] / [`arm`] latches the env variable.
    initialized: bool,
    spec: Option<FaultSpec>,
    /// Passes seen over the armed site.
    count: u64,
    fired: bool,
}

static STATE: Mutex<FaultState> = Mutex::new(FaultState {
    initialized: false,
    spec: None,
    count: 0,
    fired: false,
});

fn ensure_init(state: &mut FaultState) {
    if state.initialized {
        return;
    }
    state.initialized = true;
    if let Ok(raw) = std::env::var("RDD_FAULT") {
        match parse_spec(&raw) {
            Ok(spec) => state.spec = spec,
            Err(msg) => warn(&msg),
        }
    }
}

/// Arm a fault programmatically (tests), replacing any env-latched spec and
/// resetting the pass counter. An empty spec or `"off"` disarms.
pub fn arm(spec: &str) -> Result<(), String> {
    let parsed = parse_spec(spec)?;
    let mut state = STATE.lock().unwrap();
    state.initialized = true;
    state.spec = parsed;
    state.count = 0;
    state.fired = false;
    Ok(())
}

/// Disarm any pending fault and reset counters (tests).
pub fn disarm() {
    arm("off").expect("\"off\" always parses");
}

/// True when a fault spec is armed and has not fired yet.
pub fn armed() -> bool {
    let mut state = STATE.lock().unwrap();
    ensure_init(&mut state);
    state.spec.is_some() && !state.fired
}

/// Record one pass over `site`. Returns the armed [`FaultKind`] exactly once:
/// on the pass whose 0-indexed count matches the spec's `n`. Emits a `fault`
/// trace event when it fires. Callers decide what the kind means at their
/// site (unknown combinations are ignored by convention).
pub fn fire(site: &str) -> Option<FaultKind> {
    let mut state = STATE.lock().unwrap();
    ensure_init(&mut state);
    let (kind, n) = match state.spec.as_ref() {
        Some(spec) if spec.site == site => (spec.kind, spec.n),
        _ => return None,
    };
    let pass = state.count;
    state.count += 1;
    if state.fired || pass != n {
        return None;
    }
    state.fired = true;
    drop(state);
    event(
        "fault",
        &[
            ("kind", Json::from(kind.as_str())),
            ("site", Json::from(site)),
            ("n", Json::Num(n as f64)),
        ],
    );
    Some(kind)
}

#[cfg(test)]
mod tests {
    use super::super::recorder;
    use super::*;

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let spec = parse_spec("nan_loss@epoch:7").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::NanLoss);
        assert_eq!(spec.site, "epoch");
        assert_eq!(spec.n, 7);
        let spec = parse_spec(" io_fail@ckpt:0 ").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::IoFail);
        let spec = parse_spec("panic@member:1").unwrap().unwrap();
        assert_eq!(spec.kind, FaultKind::Panic);
        assert!(parse_spec("").unwrap().is_none());
        assert!(parse_spec("off").unwrap().is_none());

        for bad in [
            "nan_loss",
            "nan_loss@epoch",
            "nan_loss@:3",
            "explode@epoch:3",
            "nan_loss@epoch:x",
            "nan_loss@epoch:-1",
        ] {
            let err = parse_spec(bad).unwrap_err();
            assert!(err.contains("RDD_FAULT"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn fires_exactly_once_at_the_indexed_pass() {
        let _g = recorder::tests::lock();
        arm("nan_loss@epoch:2").unwrap();
        assert!(armed());
        assert_eq!(fire("ckpt"), None, "other sites never fire");
        assert_eq!(fire("epoch"), None); // pass 0
        assert_eq!(fire("epoch"), None); // pass 1
        assert_eq!(fire("epoch"), Some(FaultKind::NanLoss)); // pass 2
        assert!(!armed(), "a fired fault is spent");
        assert_eq!(fire("epoch"), None, "never fires twice");
        disarm();
        assert_eq!(fire("epoch"), None);
    }

    #[test]
    fn firing_emits_a_fault_event() {
        let _g = recorder::tests::lock();
        let path = std::env::temp_dir().join(format!(
            "rdd_obs_fault_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        recorder::init_file(&path).unwrap();
        arm("panic@member:0").unwrap();
        assert_eq!(fire("member"), Some(FaultKind::Panic));
        disarm();
        recorder::flush();
        recorder::disable();
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("\"ev\":\"fault\""))
            .expect("fault event recorded");
        assert!(line.contains("\"kind\":\"panic\""), "{line}");
        assert!(line.contains("\"site\":\"member\""), "{line}");
        std::fs::remove_file(&path).ok();
    }
}
