//! The global recorder: JSONL events, counters, gauges and RAII spans.
//!
//! ## Contract
//!
//! The sink is selected once per process by the `RDD_TRACE` environment
//! variable — a file path (truncated at open), the keyword `stderr`, or
//! `off`/empty/unset for disabled — and can be overridden programmatically
//! with [`init_file`] / [`init_stderr`] / [`disable`] (tests and tools do
//! this; the env is only consulted lazily, on the first recorder call).
//!
//! ## Overhead budget
//!
//! Every public entry point starts with [`enabled`], a single relaxed-ish
//! atomic load plus one predictable branch, so a disabled recorder costs
//! ~1 ns per call site and allocates nothing. Metric cells
//! ([`SpanCell`]/[`CounterCell`]/[`GaugeCell`]) are `static`s at the call
//! site: when enabled they update plain atomics — no locks on the hot path.
//! Events are encoded on the emitting thread into a per-thread buffer
//! (registered in a global list so [`flush`] can drain every thread), and
//! buffers are written to the sink a batch at a time under a single mutex,
//! whole lines only — concurrent writers cannot tear a line.
//!
//! Timestamps are monotonic milliseconds since the first recorder call
//! (`Instant`-based; wall-clock time never enters the trace).

use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// `super::` (not `crate::`) so these sources also work when mounted as a
// module via `#[path]` in the registry-less tools binaries.
use super::json::Json;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);
/// Per-thread line buffers, registered on first use so `flush` sees them all.
static BUFFERS: Mutex<Vec<Arc<Mutex<Vec<String>>>>> = Mutex::new(Vec::new());
static SPANS: Mutex<Vec<&'static SpanCell>> = Mutex::new(Vec::new());
static COUNTERS: Mutex<Vec<&'static CounterCell>> = Mutex::new(Vec::new());
static GAUGES: Mutex<Vec<&'static GaugeCell>> = Mutex::new(Vec::new());

/// Lines buffered per thread before an automatic drain to the sink.
const BUFFER_LINES: usize = 64;

enum Sink {
    Stderr,
    File(BufWriter<std::fs::File>),
}

impl Sink {
    fn write_lines(&mut self, lines: &[String]) {
        let write_to = |w: &mut dyn Write| {
            for line in lines {
                // Whole-line writes; a failing sink must never panic the
                // training loop, so errors are swallowed.
                let _ = w.write_all(line.as_bytes());
                let _ = w.write_all(b"\n");
            }
        };
        match self {
            Sink::Stderr => write_to(&mut std::io::stderr().lock()),
            Sink::File(w) => write_to(w),
        }
    }

    fn flush_inner(&mut self) {
        if let Sink::File(w) = self {
            let _ = w.flush();
        }
    }
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Monotonic milliseconds since the recorder first ran.
fn now_ms() -> f64 {
    origin().elapsed().as_secs_f64() * 1e3
}

/// Whether tracing is on. The fast path is one atomic load and a branch;
/// the first call per process resolves `RDD_TRACE`.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Acquire) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let mut sink = SINK.lock().unwrap();
    // Another thread may have initialized while we waited for the lock.
    match STATE.load(Ordering::Acquire) {
        ON => return true,
        OFF => return false,
        _ => {}
    }
    origin();
    let target = std::env::var("RDD_TRACE").unwrap_or_default();
    let new_sink = match target.as_str() {
        "" | "off" | "0" => None,
        "stderr" => Some(Sink::Stderr),
        path => match std::fs::File::create(path) {
            Ok(f) => Some(Sink::File(BufWriter::new(f))),
            Err(e) => {
                eprintln!("rdd-obs: cannot open RDD_TRACE={path:?}: {e}; tracing disabled");
                None
            }
        },
    };
    let on = new_sink.is_some();
    *sink = new_sink;
    STATE.store(if on { ON } else { OFF }, Ordering::Release);
    on
}

/// Route events to `path` (truncating it), overriding `RDD_TRACE`.
pub fn init_file(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    flush();
    let mut sink = SINK.lock().unwrap();
    origin();
    if let Some(s) = sink.as_mut() {
        s.flush_inner();
    }
    *sink = Some(Sink::File(BufWriter::new(file)));
    STATE.store(ON, Ordering::Release);
    Ok(())
}

/// Route events to stderr, overriding `RDD_TRACE`.
pub fn init_stderr() {
    flush();
    let mut sink = SINK.lock().unwrap();
    origin();
    *sink = Some(Sink::Stderr);
    STATE.store(ON, Ordering::Release);
}

/// Flush and drop the sink; subsequent recorder calls are no-ops (until a
/// later `init_*` call re-enables tracing).
pub fn disable() {
    flush();
    let mut sink = SINK.lock().unwrap();
    if let Some(s) = sink.as_mut() {
        s.flush_inner();
    }
    *sink = None;
    STATE.store(OFF, Ordering::Release);
}

fn local_buffer() -> Arc<Mutex<Vec<String>>> {
    thread_local! {
        static LOCAL: Arc<Mutex<Vec<String>>> = {
            let buf = Arc::new(Mutex::new(Vec::new()));
            BUFFERS.lock().unwrap().push(Arc::clone(&buf));
            buf
        };
    }
    LOCAL.with(Arc::clone)
}

/// Emit one event named `name` with the given fields (plus `ev` and `t_ms`).
/// No-op when tracing is off.
pub fn event(name: &str, fields: &[(&str, Json)]) {
    if !enabled() {
        return;
    }
    let mut obj = Vec::with_capacity(fields.len() + 2);
    obj.push(("ev".to_string(), Json::from(name)));
    obj.push(("t_ms".to_string(), Json::Num(now_ms())));
    for (k, v) in fields {
        obj.push((k.to_string(), v.clone()));
    }
    let mut line = String::with_capacity(64);
    Json::Obj(obj).write(&mut line);
    let buf = local_buffer();
    let full = {
        let mut lines = buf.lock().unwrap();
        lines.push(line);
        lines.len() >= BUFFER_LINES
    };
    if full {
        drain_one(&buf);
    }
}

/// A warning that must reach a human: the trace when tracing is on, stderr
/// otherwise.
pub fn warn(msg: &str) {
    if enabled() {
        event("warn", &[("msg", Json::from(msg))]);
    } else {
        eprintln!("{msg}");
    }
}

fn drain_one(buf: &Arc<Mutex<Vec<String>>>) {
    let lines: Vec<String> = std::mem::take(&mut *buf.lock().unwrap());
    if lines.is_empty() {
        return;
    }
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        sink.write_lines(&lines);
    }
}

/// Drain every thread's buffer, append a cumulative metrics snapshot
/// (`kernel` / `counter` / `gauge` events), and flush the sink. Cheap no-op
/// when tracing is off. Call at the end of a run (the trainer and the CLI
/// already do).
pub fn flush() {
    if STATE.load(Ordering::Acquire) != ON {
        return;
    }
    let mut lines: Vec<String> = Vec::new();
    {
        let buffers = BUFFERS.lock().unwrap();
        for buf in buffers.iter() {
            lines.append(&mut buf.lock().unwrap());
        }
    }
    lines.extend(metric_snapshot_lines());
    let mut sink = SINK.lock().unwrap();
    if let Some(s) = sink.as_mut() {
        s.write_lines(&lines);
        s.flush_inner();
    }
}

/// Encode the cumulative state of every registered metric cell.
fn metric_snapshot_lines() -> Vec<String> {
    let mut out = Vec::new();
    let mut push = |obj: Vec<(String, Json)>| {
        let mut line = String::with_capacity(64);
        Json::Obj(obj).write(&mut line);
        out.push(line);
    };
    for cell in SPANS.lock().unwrap().iter() {
        let calls = cell.count.load(Ordering::Relaxed);
        let ns = cell.ns.load(Ordering::Relaxed);
        push(vec![
            ("ev".into(), Json::from("kernel")),
            ("t_ms".into(), Json::Num(now_ms())),
            ("name".into(), Json::from(cell.name)),
            ("calls".into(), Json::from(calls)),
            ("total_ms".into(), Json::Num(ns as f64 / 1e6)),
        ]);
    }
    for cell in COUNTERS.lock().unwrap().iter() {
        push(vec![
            ("ev".into(), Json::from("counter")),
            ("t_ms".into(), Json::Num(now_ms())),
            ("name".into(), Json::from(cell.name)),
            (
                "value".into(),
                Json::from(cell.value.load(Ordering::Relaxed)),
            ),
        ]);
    }
    for cell in GAUGES.lock().unwrap().iter() {
        push(vec![
            ("ev".into(), Json::from("gauge")),
            ("t_ms".into(), Json::Num(now_ms())),
            ("name".into(), Json::from(cell.name)),
            (
                "value".into(),
                Json::from(cell.value.load(Ordering::Relaxed)),
            ),
        ]);
    }
    out
}

/// Wall-time aggregation for one kernel. Declare one `static` per kernel and
/// guard the kernel body with [`SpanCell::enter`]:
///
/// ```
/// static MATMUL: rdd_obs::SpanCell = rdd_obs::SpanCell::new("matmul");
/// fn matmul_kernel() {
///     let _span = MATMUL.enter();
///     // ... kernel body ...
/// }
/// ```
///
/// Totals are cumulative per process and appear as `kernel` events at every
/// [`flush`] (a summary reads the last snapshot per name).
pub struct SpanCell {
    name: &'static str,
    count: AtomicU64,
    ns: AtomicU64,
    registered: AtomicBool,
}

impl SpanCell {
    /// A new cell; `const` so it can be a `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Start timing; the returned guard records on drop. One atomic load
    /// when tracing is off.
    #[inline]
    pub fn enter(&'static self) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            SPANS.lock().unwrap().push(self);
        }
        SpanGuard(Some((self, Instant::now())))
    }

    /// Cumulative `(calls, total_ns)` so far.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.ns.load(Ordering::Relaxed),
        )
    }
}

/// RAII timing guard returned by [`SpanCell::enter`].
pub struct SpanGuard(Option<(&'static SpanCell, Instant)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.0 {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// A monotonically increasing counter (e.g. tasks submitted to the pool).
pub struct CounterCell {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl CounterCell {
    /// A new cell; `const` so it can be a `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n`; no-op when tracing is off.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS.lock().unwrap().push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The cumulative count so far.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value / peak-value gauge (e.g. pool queue occupancy).
pub struct GaugeCell {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl GaugeCell {
    /// A new cell; `const` so it can be a `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[inline]
    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            GAUGES.lock().unwrap().push(self);
        }
    }

    /// Store `v`; no-op when tracing is off.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if above the stored value (peak tracking);
    /// no-op when tracing is off.
    #[inline]
    pub fn record_max(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The stored value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::super::json::parse;
    use super::*;

    /// The recorder is process-global; tests that toggle it must not
    /// interleave.
    pub(crate) static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "rdd_obs_{tag}_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn read_events(path: &Path) -> Vec<Json> {
        std::fs::read_to_string(path)
            .expect("trace file readable")
            .lines()
            .map(|l| parse(l).expect("well-formed line"))
            .collect()
    }

    #[test]
    fn events_reach_the_file_sink() {
        let _g = lock();
        let path = temp_path("file_sink");
        init_file(&path).unwrap();
        event("unit", &[("k", Json::from(1usize))]);
        event("unit", &[("k", Json::from("two"))]);
        flush();
        disable();
        let events: Vec<Json> = read_events(&path)
            .into_iter()
            .filter(|e| e.get("ev").and_then(Json::as_str) == Some("unit"))
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("k").and_then(Json::as_f64), Some(1.0));
        assert_eq!(events[1].get("k").and_then(Json::as_str), Some("two"));
        assert!(events[0].get("t_ms").and_then(Json::as_f64).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _g = lock();
        disable();
        event("ignored", &[]);
        let c: &'static CounterCell = {
            static C: CounterCell = CounterCell::new("test.disabled_counter");
            &C
        };
        c.add(5);
        assert_eq!(c.get(), 0, "disabled counter must not move");
        // Re-enable into a file and confirm the dropped event is not
        // retroactively written.
        let path = temp_path("disabled");
        init_file(&path).unwrap();
        flush();
        disable();
        assert!(read_events(&path)
            .iter()
            .all(|e| e.get("ev").and_then(Json::as_str) != Some("ignored")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_snapshot_appears_on_flush() {
        let _g = lock();
        let path = temp_path("metrics");
        init_file(&path).unwrap();
        static SPAN: SpanCell = SpanCell::new("test.span");
        static COUNT: CounterCell = CounterCell::new("test.count");
        static GAUGE: GaugeCell = GaugeCell::new("test.gauge");
        {
            let _s = SPAN.enter();
        }
        {
            let _s = SPAN.enter();
        }
        COUNT.add(3);
        GAUGE.record_max(7);
        GAUGE.record_max(2);
        flush();
        disable();
        let events = read_events(&path);
        let kernel = events
            .iter()
            .find(|e| {
                e.get("ev").and_then(Json::as_str) == Some("kernel")
                    && e.get("name").and_then(Json::as_str) == Some("test.span")
            })
            .expect("kernel snapshot present");
        assert_eq!(kernel.get("calls").and_then(Json::as_f64), Some(2.0));
        assert!(kernel.get("total_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        let counter = events
            .iter()
            .find(|e| {
                e.get("ev").and_then(Json::as_str) == Some("counter")
                    && e.get("name").and_then(Json::as_str) == Some("test.count")
            })
            .expect("counter snapshot present");
        assert_eq!(counter.get("value").and_then(Json::as_f64), Some(3.0));
        let gauge = events
            .iter()
            .find(|e| {
                e.get("ev").and_then(Json::as_str) == Some("gauge")
                    && e.get("name").and_then(Json::as_str) == Some("test.gauge")
            })
            .expect("gauge snapshot present");
        assert_eq!(gauge.get("value").and_then(Json::as_f64), Some(7.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warn_goes_to_trace_when_enabled() {
        let _g = lock();
        let path = temp_path("warn");
        init_file(&path).unwrap();
        warn("a test warning");
        flush();
        disable();
        let events = read_events(&path);
        assert!(events.iter().any(|e| {
            e.get("ev").and_then(Json::as_str) == Some("warn")
                && e.get("msg").and_then(Json::as_str) == Some("a test warning")
        }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn many_threads_lose_no_events() {
        let _g = lock();
        let path = temp_path("hammer");
        init_file(&path).unwrap();
        let threads = 8;
        let per_thread = 500;
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for i in 0..per_thread {
                        event("hammer", &[("t", Json::from(t)), ("i", Json::from(i))]);
                    }
                });
            }
        });
        flush();
        disable();
        let mut seen = vec![vec![false; per_thread]; threads];
        for e in read_events(&path) {
            if e.get("ev").and_then(Json::as_str) != Some("hammer") {
                continue;
            }
            let t = e.get("t").and_then(Json::as_f64).unwrap() as usize;
            let i = e.get("i").and_then(Json::as_f64).unwrap() as usize;
            assert!(!seen[t][i], "duplicate event t={t} i={i}");
            seen[t][i] = true;
        }
        for (t, row) in seen.iter().enumerate() {
            for (i, &s) in row.iter().enumerate() {
                assert!(s, "lost event t={t} i={i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
