//! The global recorder: JSONL events, counters, gauges, histograms and
//! hierarchical RAII spans.
//!
//! ## Contract
//!
//! The sink is selected once per process by the `RDD_TRACE` environment
//! variable — a file path (truncated at open), the keyword `stderr`, or
//! `off`/empty/unset for disabled — and can be overridden programmatically
//! with [`init_file`] / [`init_stderr`] / [`disable`] (tests and tools do
//! this; the env is only consulted lazily, on the first recorder call).
//!
//! ## Overhead budget
//!
//! Every public entry point starts with [`enabled`], a single relaxed-ish
//! atomic load plus one predictable branch, so a disabled recorder costs
//! ~1 ns per call site and allocates nothing. Metric cells
//! ([`SpanCell`]/[`CounterCell`]/[`GaugeCell`]/[`HistCell`]) are `static`s
//! at the call site: when enabled they update plain atomics — no locks on
//! the hot path. Events are encoded on the emitting thread into a
//! per-thread buffer (registered in a global list so [`flush`] can drain
//! every thread), and buffers are written to the sink a batch at a time
//! under a single mutex, whole lines only — concurrent writers cannot tear
//! a line.
//!
//! ## Span hierarchy
//!
//! Each thread keeps a stack of open spans. A [`SpanCell::enter`] guard
//! pushes a frame; on drop the elapsed time is charged to the cell's
//! *total*, the portion not covered by child spans to its *self* time, and
//! the (child, parent) edge is counted in a small lock-free table — so the
//! summary can attribute `epoch → forward → spmm` without double counting.
//! Every span also feeds a log2-bucket duration histogram
//! ([`super::hist`]), giving approximate p50/p99/p999 per kernel for free.
//!
//! Timestamps are monotonic milliseconds since the first recorder call
//! (`Instant`-based; wall-clock time never enters the trace).

use std::cell::RefCell;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// `super::` (not `crate::`) so these sources also work when mounted as a
// module via `#[path]` in the registry-less tools binaries.
use super::hist::{AtomicHist, HistSnapshot};
use super::json::Json;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);
/// Per-thread line buffers, registered on first use so `flush` sees them all.
static BUFFERS: Mutex<Vec<Arc<Mutex<Vec<String>>>>> = Mutex::new(Vec::new());
static SPANS: Mutex<Vec<&'static SpanCell>> = Mutex::new(Vec::new());
static COUNTERS: Mutex<Vec<&'static CounterCell>> = Mutex::new(Vec::new());
static GAUGES: Mutex<Vec<&'static GaugeCell>> = Mutex::new(Vec::new());
static HISTS: Mutex<Vec<&'static HistCell>> = Mutex::new(Vec::new());

/// One open span on this thread's stack.
struct Frame {
    cell: &'static SpanCell,
    start: Instant,
    /// Nanoseconds already covered by completed child spans.
    child_ns: u64,
}

thread_local! {
    /// The per-thread stack of open spans (parent attribution).
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Lines buffered per thread before an automatic drain to the sink.
const BUFFER_LINES: usize = 64;

enum Sink {
    Stderr,
    File(BufWriter<std::fs::File>),
}

impl Sink {
    fn write_lines(&mut self, lines: &[String]) {
        let write_to = |w: &mut dyn Write| {
            for line in lines {
                // Whole-line writes; a failing sink must never panic the
                // training loop, so errors are swallowed.
                let _ = w.write_all(line.as_bytes());
                let _ = w.write_all(b"\n");
            }
        };
        match self {
            Sink::Stderr => write_to(&mut std::io::stderr().lock()),
            Sink::File(w) => write_to(w),
        }
    }

    fn flush_inner(&mut self) {
        if let Sink::File(w) = self {
            let _ = w.flush();
        }
    }
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Monotonic milliseconds since the recorder first ran.
fn now_ms() -> f64 {
    origin().elapsed().as_secs_f64() * 1e3
}

/// Whether tracing is on. The fast path is one atomic load and a branch;
/// the first call per process resolves `RDD_TRACE`.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Acquire) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let mut sink = SINK.lock().unwrap();
    // Another thread may have initialized while we waited for the lock.
    match STATE.load(Ordering::Acquire) {
        ON => return true,
        OFF => return false,
        _ => {}
    }
    origin();
    let target = std::env::var("RDD_TRACE").unwrap_or_default();
    let new_sink = match target.as_str() {
        "" | "off" | "0" => None,
        "stderr" => Some(Sink::Stderr),
        path => match std::fs::File::create(path) {
            Ok(f) => Some(Sink::File(BufWriter::new(f))),
            Err(e) => {
                // Cannot go through `env::reject` here: the SINK lock is
                // held and tracing is about to stay off — share only the
                // message format.
                eprintln!(
                    "{}",
                    super::env::warn_message("RDD_TRACE", path, &format!("a writable path ({e})"))
                );
                None
            }
        },
    };
    let on = new_sink.is_some();
    *sink = new_sink;
    STATE.store(if on { ON } else { OFF }, Ordering::Release);
    on
}

/// Route events to `path` (truncating it), overriding `RDD_TRACE`.
pub fn init_file(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    flush();
    let mut sink = SINK.lock().unwrap();
    origin();
    if let Some(s) = sink.as_mut() {
        s.flush_inner();
    }
    *sink = Some(Sink::File(BufWriter::new(file)));
    STATE.store(ON, Ordering::Release);
    Ok(())
}

/// Route events to stderr, overriding `RDD_TRACE`.
pub fn init_stderr() {
    flush();
    let mut sink = SINK.lock().unwrap();
    origin();
    *sink = Some(Sink::Stderr);
    STATE.store(ON, Ordering::Release);
}

/// Flush and drop the sink; subsequent recorder calls are no-ops (until a
/// later `init_*` call re-enables tracing).
pub fn disable() {
    flush();
    let mut sink = SINK.lock().unwrap();
    if let Some(s) = sink.as_mut() {
        s.flush_inner();
    }
    *sink = None;
    STATE.store(OFF, Ordering::Release);
}

fn local_buffer() -> Arc<Mutex<Vec<String>>> {
    thread_local! {
        static LOCAL: Arc<Mutex<Vec<String>>> = {
            let buf = Arc::new(Mutex::new(Vec::new()));
            BUFFERS.lock().unwrap().push(Arc::clone(&buf));
            buf
        };
    }
    LOCAL.with(Arc::clone)
}

/// Emit one event named `name` with the given fields (plus `ev` and `t_ms`).
/// No-op when tracing is off.
pub fn event(name: &str, fields: &[(&str, Json)]) {
    if !enabled() {
        return;
    }
    let mut obj = Vec::with_capacity(fields.len() + 2);
    obj.push(("ev".to_string(), Json::from(name)));
    obj.push(("t_ms".to_string(), Json::Num(now_ms())));
    for (k, v) in fields {
        obj.push((k.to_string(), v.clone()));
    }
    let mut line = String::with_capacity(64);
    Json::Obj(obj).write(&mut line);
    let buf = local_buffer();
    let full = {
        let mut lines = buf.lock().unwrap();
        lines.push(line);
        lines.len() >= BUFFER_LINES
    };
    if full {
        drain_one(&buf);
    }
}

/// A warning that must reach a human: the trace when tracing is on, stderr
/// otherwise.
pub fn warn(msg: &str) {
    if enabled() {
        event("warn", &[("msg", Json::from(msg))]);
    } else {
        eprintln!("{msg}");
    }
}

fn drain_one(buf: &Arc<Mutex<Vec<String>>>) {
    let lines: Vec<String> = std::mem::take(&mut *buf.lock().unwrap());
    if lines.is_empty() {
        return;
    }
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        sink.write_lines(&lines);
    }
}

/// Drain every thread's buffer, append a cumulative metrics snapshot
/// (`kernel` / `counter` / `gauge` events), and flush the sink. Cheap no-op
/// when tracing is off. Call at the end of a run (the trainer and the CLI
/// already do).
pub fn flush() {
    if STATE.load(Ordering::Acquire) != ON {
        return;
    }
    let mut lines: Vec<String> = Vec::new();
    {
        let buffers = BUFFERS.lock().unwrap();
        for buf in buffers.iter() {
            lines.append(&mut buf.lock().unwrap());
        }
    }
    lines.extend(metric_snapshot_lines());
    let mut sink = SINK.lock().unwrap();
    if let Some(s) = sink.as_mut() {
        s.write_lines(&lines);
        s.flush_inner();
    }
}

/// Encode the cumulative state of every registered metric cell.
fn metric_snapshot_lines() -> Vec<String> {
    let mut out = Vec::new();
    let mut push = |obj: Vec<(String, Json)>| {
        let mut line = String::with_capacity(64);
        Json::Obj(obj).write(&mut line);
        out.push(line);
    };
    let hist_line = |name: &'static str, snap: &HistSnapshot| {
        vec![
            ("ev".to_string(), Json::from("hist")),
            ("t_ms".to_string(), Json::Num(now_ms())),
            ("name".to_string(), Json::from(name)),
            ("count".to_string(), Json::from(snap.count())),
            (
                "buckets".to_string(),
                Json::Arr(snap.trimmed().iter().map(|&c| Json::from(c)).collect()),
            ),
        ]
    };
    for cell in SPANS.lock().unwrap().iter() {
        let calls = cell.count.load(Ordering::Relaxed);
        let ns = cell.ns.load(Ordering::Relaxed);
        let self_ns = cell.self_ns.load(Ordering::Relaxed);
        push(vec![
            ("ev".into(), Json::from("kernel")),
            ("t_ms".into(), Json::Num(now_ms())),
            ("name".into(), Json::from(cell.name)),
            ("calls".into(), Json::from(calls)),
            ("total_ms".into(), Json::Num(ns as f64 / 1e6)),
            ("self_ms".into(), Json::Num(self_ns as f64 / 1e6)),
        ]);
        push(hist_line(cell.name, &cell.hist.snapshot()));
        for (parent, calls) in cell.parent_edges() {
            push(vec![
                ("ev".into(), Json::from("span_parent")),
                ("t_ms".into(), Json::Num(now_ms())),
                ("child".into(), Json::from(cell.name)),
                ("parent".into(), Json::from(parent)),
                ("calls".into(), Json::from(calls)),
            ]);
        }
    }
    for cell in HISTS.lock().unwrap().iter() {
        push(hist_line(cell.name, &cell.hist.snapshot()));
    }
    for cell in COUNTERS.lock().unwrap().iter() {
        push(vec![
            ("ev".into(), Json::from("counter")),
            ("t_ms".into(), Json::Num(now_ms())),
            ("name".into(), Json::from(cell.name)),
            (
                "value".into(),
                Json::from(cell.value.load(Ordering::Relaxed)),
            ),
        ]);
    }
    for cell in GAUGES.lock().unwrap().iter() {
        push(vec![
            ("ev".into(), Json::from("gauge")),
            ("t_ms".into(), Json::Num(now_ms())),
            ("name".into(), Json::from(cell.name)),
            (
                "value".into(),
                Json::from(cell.value.load(Ordering::Relaxed)),
            ),
        ]);
    }
    out
}

/// Distinct parents tracked per span cell; edges beyond this are dropped
/// (a kernel is entered under a handful of stages at most).
const PARENT_SLOTS: usize = 8;

/// One lock-free (child, parent) edge counter.
struct ParentSlot {
    parent: AtomicPtr<SpanCell>,
    count: AtomicU64,
}

impl ParentSlot {
    const fn new() -> Self {
        Self {
            parent: AtomicPtr::new(std::ptr::null_mut()),
            count: AtomicU64::new(0),
        }
    }
}

/// Wall-time aggregation for one kernel or pipeline stage. Declare one
/// `static` per site and guard the body with [`SpanCell::enter`]:
///
/// ```
/// static MATMUL: rdd_obs::SpanCell = rdd_obs::SpanCell::new("matmul");
/// fn matmul_kernel() {
///     let _span = MATMUL.enter();
///     // ... kernel body ...
/// }
/// ```
///
/// Per call the cell accumulates *total* time, *self* time (total minus
/// completed child spans on the same thread), a log2-bucket duration
/// histogram, and the (child, parent) edge to the enclosing span. Totals
/// are cumulative per process and appear as `kernel` + `hist` +
/// `span_parent` events at every [`flush`] (a summary reads the last
/// snapshot per name).
pub struct SpanCell {
    name: &'static str,
    count: AtomicU64,
    ns: AtomicU64,
    self_ns: AtomicU64,
    hist: AtomicHist,
    parents: [ParentSlot; PARENT_SLOTS],
    registered: AtomicBool,
}

impl SpanCell {
    /// A new cell; `const` so it can be a `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            ns: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
            hist: AtomicHist::new(),
            parents: [const { ParentSlot::new() }; PARENT_SLOTS],
            registered: AtomicBool::new(false),
        }
    }

    /// Start timing; the returned guard records on drop. One atomic load
    /// when tracing is off.
    #[inline]
    pub fn enter(&'static self) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            SPANS.lock().unwrap().push(self);
        }
        let start = Instant::now();
        // `try_with`: never panic during thread teardown; the span then
        // simply records without parent attribution.
        let _ = SPAN_STACK.try_with(|s| {
            s.borrow_mut().push(Frame {
                cell: self,
                start,
                child_ns: 0,
            })
        });
        SpanGuard(Some((self, start)))
    }

    /// Cumulative `(calls, total_ns)` so far.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.ns.load(Ordering::Relaxed),
        )
    }

    /// Cumulative self-time (nanoseconds not covered by child spans).
    pub fn self_ns(&self) -> u64 {
        self.self_ns.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-call duration histogram.
    pub fn hist_snapshot(&self) -> HistSnapshot {
        self.hist.snapshot()
    }

    /// Count one occurrence of `parent` directly enclosing this span.
    /// Lock-free linear probe over a bounded table; edges past
    /// [`PARENT_SLOTS`] distinct parents are dropped.
    fn record_parent(&self, parent: &'static SpanCell) {
        let p = parent as *const SpanCell as *mut SpanCell;
        for slot in &self.parents {
            let cur = slot.parent.load(Ordering::Relaxed);
            let owned = if cur == p {
                true
            } else if cur.is_null() {
                match slot.parent.compare_exchange(
                    std::ptr::null_mut(),
                    p,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => true,
                    Err(actual) => actual == p,
                }
            } else {
                false
            };
            if owned {
                slot.count.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// The observed `(parent name, calls)` edges for this cell.
    pub fn parent_edges(&self) -> Vec<(&'static str, u64)> {
        self.parents
            .iter()
            .filter_map(|slot| {
                let p = slot.parent.load(Ordering::Relaxed);
                if p.is_null() {
                    return None;
                }
                // The pointer only ever holds `&'static SpanCell`s.
                let parent: &'static SpanCell = unsafe { &*p };
                Some((parent.name, slot.count.load(Ordering::Relaxed)))
            })
            .collect()
    }
}

/// RAII timing guard returned by [`SpanCell::enter`].
pub struct SpanGuard(Option<(&'static SpanCell, Instant)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.0 {
            let elapsed = start.elapsed().as_nanos() as u64;
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.ns.fetch_add(elapsed, Ordering::Relaxed);
            cell.hist.record(elapsed);
            // Pop this span's frame: its accumulated child time becomes the
            // self-time discount, and the elapsed total is charged to the
            // parent frame (if any) as child time.
            let mut child_ns = 0u64;
            let _ = SPAN_STACK.try_with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack
                    .iter()
                    .rposition(|f| std::ptr::eq(f.cell, cell) && f.start == start)
                {
                    child_ns = stack[pos].child_ns;
                    stack.truncate(pos);
                    if let Some(parent) = stack.last_mut() {
                        parent.child_ns += elapsed;
                        cell.record_parent(parent.cell);
                    }
                }
            });
            cell.self_ns
                .fetch_add(elapsed.saturating_sub(child_ns), Ordering::Relaxed);
        }
    }
}

/// A log2-bucket histogram metric (e.g. per-request serve latency).
/// Same one-atomic-load disabled path as [`CounterCell`]; recording is one
/// relaxed `fetch_add` into the sample's bucket. Appears as a `hist` event
/// at every [`flush`].
pub struct HistCell {
    name: &'static str,
    hist: AtomicHist,
    registered: AtomicBool,
}

impl HistCell {
    /// A new cell; `const` so it can be a `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            hist: AtomicHist::new(),
            registered: AtomicBool::new(false),
        }
    }

    /// Count one sample (conventionally nanoseconds); no-op when tracing
    /// is off.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            HISTS.lock().unwrap().push(self);
        }
        self.hist.record(v);
    }

    /// [`HistCell::record`] with a duration, counted in nanoseconds.
    #[inline]
    pub fn record_duration(&'static self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Point-in-time image of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        self.hist.snapshot()
    }
}

/// A monotonically increasing counter (e.g. tasks submitted to the pool).
pub struct CounterCell {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl CounterCell {
    /// A new cell; `const` so it can be a `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n`; no-op when tracing is off.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS.lock().unwrap().push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The cumulative count so far.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value / peak-value gauge (e.g. pool queue occupancy).
pub struct GaugeCell {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl GaugeCell {
    /// A new cell; `const` so it can be a `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[inline]
    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            GAUGES.lock().unwrap().push(self);
        }
    }

    /// Store `v`; no-op when tracing is off.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if above the stored value (peak tracking);
    /// no-op when tracing is off.
    #[inline]
    pub fn record_max(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The stored value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::super::json::parse;
    use super::*;

    /// The recorder is process-global; tests that toggle it must not
    /// interleave.
    pub(crate) static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "rdd_obs_{tag}_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn read_events(path: &Path) -> Vec<Json> {
        std::fs::read_to_string(path)
            .expect("trace file readable")
            .lines()
            .map(|l| parse(l).expect("well-formed line"))
            .collect()
    }

    #[test]
    fn events_reach_the_file_sink() {
        let _g = lock();
        let path = temp_path("file_sink");
        init_file(&path).unwrap();
        event("unit", &[("k", Json::from(1usize))]);
        event("unit", &[("k", Json::from("two"))]);
        flush();
        disable();
        let events: Vec<Json> = read_events(&path)
            .into_iter()
            .filter(|e| e.get("ev").and_then(Json::as_str) == Some("unit"))
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("k").and_then(Json::as_f64), Some(1.0));
        assert_eq!(events[1].get("k").and_then(Json::as_str), Some("two"));
        assert!(events[0].get("t_ms").and_then(Json::as_f64).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _g = lock();
        disable();
        event("ignored", &[]);
        let c: &'static CounterCell = {
            static C: CounterCell = CounterCell::new("test.disabled_counter");
            &C
        };
        c.add(5);
        assert_eq!(c.get(), 0, "disabled counter must not move");
        // Re-enable into a file and confirm the dropped event is not
        // retroactively written.
        let path = temp_path("disabled");
        init_file(&path).unwrap();
        flush();
        disable();
        assert!(read_events(&path)
            .iter()
            .all(|e| e.get("ev").and_then(Json::as_str) != Some("ignored")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_snapshot_appears_on_flush() {
        let _g = lock();
        let path = temp_path("metrics");
        init_file(&path).unwrap();
        static SPAN: SpanCell = SpanCell::new("test.span");
        static COUNT: CounterCell = CounterCell::new("test.count");
        static GAUGE: GaugeCell = GaugeCell::new("test.gauge");
        {
            let _s = SPAN.enter();
        }
        {
            let _s = SPAN.enter();
        }
        COUNT.add(3);
        GAUGE.record_max(7);
        GAUGE.record_max(2);
        flush();
        disable();
        let events = read_events(&path);
        let kernel = events
            .iter()
            .find(|e| {
                e.get("ev").and_then(Json::as_str) == Some("kernel")
                    && e.get("name").and_then(Json::as_str) == Some("test.span")
            })
            .expect("kernel snapshot present");
        assert_eq!(kernel.get("calls").and_then(Json::as_f64), Some(2.0));
        assert!(kernel.get("total_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        let counter = events
            .iter()
            .find(|e| {
                e.get("ev").and_then(Json::as_str) == Some("counter")
                    && e.get("name").and_then(Json::as_str) == Some("test.count")
            })
            .expect("counter snapshot present");
        assert_eq!(counter.get("value").and_then(Json::as_f64), Some(3.0));
        let gauge = events
            .iter()
            .find(|e| {
                e.get("ev").and_then(Json::as_str) == Some("gauge")
                    && e.get("name").and_then(Json::as_str) == Some("test.gauge")
            })
            .expect("gauge snapshot present");
        assert_eq!(gauge.get("value").and_then(Json::as_f64), Some(7.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warn_goes_to_trace_when_enabled() {
        let _g = lock();
        let path = temp_path("warn");
        init_file(&path).unwrap();
        warn("a test warning");
        flush();
        disable();
        let events = read_events(&path);
        assert!(events.iter().any(|e| {
            e.get("ev").and_then(Json::as_str) == Some("warn")
                && e.get("msg").and_then(Json::as_str) == Some("a test warning")
        }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nested_spans_attribute_self_time_and_parent_edges() {
        let _g = lock();
        let path = temp_path("nested");
        init_file(&path).unwrap();
        static OUTER: SpanCell = SpanCell::new("test.nested_outer");
        static INNER: SpanCell = SpanCell::new("test.nested_inner");
        for _ in 0..3 {
            let _o = OUTER.enter();
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _i = INNER.enter();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        flush();
        disable();
        let (o_calls, o_ns) = OUTER.snapshot();
        let (i_calls, i_ns) = INNER.snapshot();
        assert_eq!(o_calls, 3);
        assert_eq!(i_calls, 3);
        // The outer span fully contains the inner one, so outer self-time
        // excludes the inner total; inner has no children.
        assert_eq!(INNER.self_ns(), i_ns);
        assert!(
            OUTER.self_ns() <= o_ns - i_ns + o_ns / 10,
            "outer self ({}) should exclude inner total ({i_ns}) of outer total ({o_ns})",
            OUTER.self_ns()
        );
        assert_eq!(INNER.parent_edges(), vec![("test.nested_outer", 3)]);
        assert!(OUTER.parent_edges().is_empty());
        assert_eq!(INNER.hist_snapshot().count(), 3);
        let events = read_events(&path);
        let edge = events
            .iter()
            .find(|e| {
                e.get("ev").and_then(Json::as_str) == Some("span_parent")
                    && e.get("child").and_then(Json::as_str) == Some("test.nested_inner")
            })
            .expect("span_parent event present");
        assert_eq!(
            edge.get("parent").and_then(Json::as_str),
            Some("test.nested_outer")
        );
        assert_eq!(edge.get("calls").and_then(Json::as_f64), Some(3.0));
        let kernel = events
            .iter()
            .filter(|e| {
                e.get("ev").and_then(Json::as_str) == Some("kernel")
                    && e.get("name").and_then(Json::as_str) == Some("test.nested_outer")
            })
            .next_back()
            .expect("kernel snapshot present");
        let total = kernel.get("total_ms").and_then(Json::as_f64).unwrap();
        let self_ms = kernel.get("self_ms").and_then(Json::as_f64).unwrap();
        assert!(
            self_ms <= total,
            "self_ms {self_ms} must not exceed total {total}"
        );
        assert!(events.iter().any(|e| {
            e.get("ev").and_then(Json::as_str) == Some("hist")
                && e.get("name").and_then(Json::as_str) == Some("test.nested_inner")
        }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hist_cell_records_when_enabled_only() {
        let _g = lock();
        disable();
        static H: HistCell = HistCell::new("test.hist_cell");
        H.record(1000);
        assert_eq!(H.snapshot().count(), 0, "disabled hist must not move");
        let path = temp_path("hist_cell");
        init_file(&path).unwrap();
        H.record(1000);
        H.record(1_000_000);
        H.record_duration(std::time::Duration::from_micros(3));
        flush();
        disable();
        assert_eq!(H.snapshot().count(), 3);
        let events = read_events(&path);
        let hist = events
            .iter()
            .find(|e| {
                e.get("ev").and_then(Json::as_str) == Some("hist")
                    && e.get("name").and_then(Json::as_str) == Some("test.hist_cell")
            })
            .expect("hist snapshot present");
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(3.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn many_threads_lose_no_events() {
        let _g = lock();
        let path = temp_path("hammer");
        init_file(&path).unwrap();
        let threads = 8;
        let per_thread = 500;
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for i in 0..per_thread {
                        event("hammer", &[("t", Json::from(t)), ("i", Json::from(i))]);
                    }
                });
            }
        });
        flush();
        disable();
        let mut seen = vec![vec![false; per_thread]; threads];
        for e in read_events(&path) {
            if e.get("ev").and_then(Json::as_str) != Some("hammer") {
                continue;
            }
            let t = e.get("t").and_then(Json::as_f64).unwrap() as usize;
            let i = e.get("i").and_then(Json::as_f64).unwrap() as usize;
            assert!(!seen[t][i], "duplicate event t={t} i={i}");
            seen[t][i] = true;
        }
        for (t, row) in seen.iter().enumerate() {
            for (i, &s) in row.iter().enumerate() {
                assert!(s, "lost event t={t} i={i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
