//! Log2-bucketed latency histograms (HDR-style, fixed size, lock-free).
//!
//! One histogram is 64 buckets; bucket `i` covers `[2^i, 2^(i+1))` with the
//! value 0 folded into bucket 0, so any `u64` sample — nanoseconds in every
//! recorder use — lands in exactly one bucket and the top bucket absorbs
//! everything from `2^63` up (no saturation arithmetic needed). Quantiles
//! read back the *bucket midpoint* `1.5 * 2^i`, which bounds the relative
//! error of any reported percentile to one log2 bucket (a factor of 2).
//!
//! Two flavors share the bucket math:
//!
//! - [`AtomicHist`]: `[AtomicU64; 64]`, `record` is one relaxed `fetch_add`
//!   — safe to hammer from every pool worker at once. Embedded in the
//!   recorder's `SpanCell` / `HistCell`.
//! - [`HistSnapshot`]: the plain-`u64` image of one histogram. Merging,
//!   quantiles and trace encoding all happen here; the serve engine's
//!   rolling window keeps one per time slot.
//!
//! This module is deliberately free of recorder (and any non-`std`)
//! dependencies so the offline tools (`tools/trace_check.rs`,
//! `tools/bench_gate.rs`) can mount it with `#[path]` under bare `rustc`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// The bucket index holding `v`: `floor(log2(v))`, with 0 folded into
/// bucket 0.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0).
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// The representative value reported for bucket `i`: the midpoint
/// `1.5 * 2^i`. Any exact sample in the bucket is within a factor of 2.
#[inline]
pub fn bucket_rep(i: usize) -> f64 {
    1.5 * (1u64 << i.min(62)) as f64 * if i >= 63 { 2.0 } else { 1.0 }
}

/// Lock-free histogram cell: 64 relaxed atomic bucket counters.
pub struct AtomicHist {
    buckets: [AtomicU64; BUCKETS],
}

impl AtomicHist {
    /// An empty histogram; `const` so it can live in a `static` cell.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Count one sample. One relaxed `fetch_add`; no locks, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time plain image of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot::new();
        for (dst, src) in out.counts.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        out
    }

    /// Whether any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.load(Ordering::Relaxed) == 0)
    }
}

impl Default for AtomicHist {
    fn default() -> Self {
        Self::new()
    }
}

/// The plain (non-atomic) image of one histogram: merge, quantile and
/// encode here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Sample count per log2 bucket.
    pub counts: [u64; BUCKETS],
}

impl HistSnapshot {
    /// An empty snapshot.
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
        }
    }

    /// Rebuild from a trace-encoded bucket array (trailing zero buckets
    /// trimmed on encode). Buckets beyond [`BUCKETS`] are rejected.
    pub fn from_counts(counts: &[u64]) -> Option<Self> {
        if counts.len() > BUCKETS {
            return None;
        }
        let mut out = Self::new();
        out.counts[..counts.len()].copy_from_slice(counts);
        Some(out)
    }

    /// Count one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
    }

    /// Add every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Set every bucket back to zero.
    pub fn clear(&mut self) {
        self.counts = [0; BUCKETS];
    }

    /// The bucket counts with trailing zero buckets trimmed (the trace
    /// encoding of a histogram).
    pub fn trimmed(&self) -> &[u64] {
        let last = self
            .counts
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| i + 1);
        &self.counts[..last]
    }

    /// Approximate nearest-rank quantile: the representative midpoint of
    /// the bucket holding rank `round(q * (count - 1))`. 0 on an empty
    /// histogram. `q` must be in `[0, 1]` (callers pass literals;
    /// checked in debug builds).
    pub fn quantile(&self, q: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&q), "quantile q={q} outside [0, 1]");
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (n - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_rep(i);
            }
        }
        bucket_rep(BUCKETS - 1)
    }

    /// Approximate median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Approximate 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// Approximate 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Approximate 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 0..BUCKETS {
            if i > 0 {
                assert_eq!(bucket_of(bucket_lo(i)), i, "lower edge of bucket {i}");
            }
            let lo = bucket_lo(i).max(1) as f64;
            let rep = bucket_rep(i);
            assert!(rep >= lo, "rep of bucket {i} below its range");
        }
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistSnapshot::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert!(s.trimmed().is_empty());
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut s = HistSnapshot::new();
        s.record(1000); // bucket 9: [512, 1024)
        assert_eq!(s.count(), 1);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(bucket_of(s.quantile(q) as u64), 9, "q={q}");
        }
        assert_eq!(s.trimmed().len(), 10);
    }

    #[test]
    fn top_bucket_absorbs_huge_samples() {
        let mut s = HistSnapshot::new();
        s.record(u64::MAX);
        s.record(u64::MAX / 2 + 1);
        assert_eq!(s.counts[BUCKETS - 1], 2, "both land in the top bucket");
        assert!(s.quantile(1.0) >= (1u64 << 62) as f64);
    }

    #[test]
    fn merge_adds_bucket_wise() {
        let mut a = HistSnapshot::new();
        let mut b = HistSnapshot::new();
        for v in [1u64, 5, 100, 100] {
            a.record(v);
        }
        for v in [2u64, 100, 1 << 40] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.counts[bucket_of(100)], 3);
        // Merge equals recording the union directly.
        let mut direct = HistSnapshot::new();
        for v in [1u64, 5, 100, 100, 2, 100, 1 << 40] {
            direct.record(v);
        }
        assert_eq!(merged, direct);
    }

    #[test]
    fn trimmed_round_trips_through_from_counts() {
        let mut s = HistSnapshot::new();
        for v in [3u64, 90, 7000] {
            s.record(v);
        }
        let re = HistSnapshot::from_counts(s.trimmed()).unwrap();
        assert_eq!(re, s);
        assert!(HistSnapshot::from_counts(&[0u64; BUCKETS + 1]).is_none());
    }

    #[test]
    fn atomic_and_plain_agree() {
        let a = AtomicHist::new();
        assert!(a.is_empty());
        let mut plain = HistSnapshot::new();
        for v in [0u64, 1, 17, 17, 4096, u64::MAX] {
            a.record(v);
            plain.record(v);
        }
        assert!(!a.is_empty());
        assert_eq!(a.snapshot(), plain);
    }

    #[test]
    fn concurrent_records_merge_to_identity() {
        let hist = AtomicHist::new();
        let threads = 8;
        let per_thread = 10_000usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let hist = &hist;
                scope.spawn(move || {
                    // Deterministic per-thread xorshift stream.
                    let mut x = 0x9e3779b97f4a7c15u64 ^ (t as u64 + 1);
                    for _ in 0..per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        hist.record(x >> (x % 48) as u32);
                    }
                });
            }
        });
        // Replay the same streams sequentially: bucket-exact identity.
        let mut expect = HistSnapshot::new();
        for t in 0..threads {
            let mut x = 0x9e3779b97f4a7c15u64 ^ (t as u64 + 1);
            for _ in 0..per_thread {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                expect.record(x >> (x % 48) as u32);
            }
        }
        assert_eq!(hist.snapshot(), expect);
        assert_eq!(expect.count(), (threads * per_thread) as u64);
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_one_bucket() {
        // Property-style sweep: random samples, histogram p50/p99 must land
        // in the same or an adjacent log2 bucket as the exact nearest-rank
        // percentile.
        let mut x = 0x2545f4914f6cdd1du64;
        for round in 0..50 {
            let n = 10 + (round * 37) % 2000;
            let mut s = HistSnapshot::new();
            let mut exact: Vec<u64> = Vec::with_capacity(n);
            for _ in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = x >> (x % 50) as u32;
                s.record(v);
                exact.push(v);
            }
            exact.sort_unstable();
            for q in [0.5f64, 0.99] {
                let rank = (q * (n - 1) as f64).round() as usize;
                let truth = exact[rank];
                let approx = s.quantile(q) as u64;
                let (bt, ba) = (bucket_of(truth) as i64, bucket_of(approx) as i64);
                assert!(
                    (bt - ba).abs() <= 1,
                    "round {round} q={q}: exact {truth} (bucket {bt}) vs approx {approx} (bucket {ba})"
                );
            }
        }
    }
}
