//! Minimal JSON value model, encoder and parser.
//!
//! The offline dependency set has no `serde`, so the trace format is
//! hand-rolled. The encoder writes compact single-line JSON (the JSONL
//! contract: one event per line, no embedded newlines); the parser is a
//! recursive-descent reader for the same subset-of-nothing — it accepts any
//! standard JSON document. Non-finite floats cannot be represented in JSON
//! and are encoded as `null`; the parser never produces them.

use std::fmt;

/// A JSON value. Numbers are `f64` (event counts stay far below 2^53, where
/// `f64` is exact).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of NaN/±inf floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encode onto `out` (compact, single line).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Non-finite floats have no JSON representation; encode them as `null` so a
/// NaN loss never produces an unparseable trace line.
fn write_num(x: f64, out: &mut String) {
    use fmt::Write;
    if x.is_finite() {
        // Rust's shortest-roundtrip Display for f64 is valid JSON.
        write!(out, "{x}").expect("writing to String cannot fail");
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(src, bytes, pos),
        Some(b'[') => parse_arr(src, bytes, pos),
        Some(b'"') => parse_str(src, bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(src, bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    src[start..*pos]
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_str(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = src.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogate pairs are not produced by our encoder;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = &src[*pos..];
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(src, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(src, bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(src, bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(j: &Json) -> String {
        j.to_string()
    }

    #[test]
    fn encodes_scalars() {
        assert_eq!(enc(&Json::Null), "null");
        assert_eq!(enc(&Json::Bool(true)), "true");
        assert_eq!(enc(&Json::from(3usize)), "3");
        assert_eq!(enc(&Json::from(1.5f64)), "1.5");
        assert_eq!(enc(&Json::from("hi")), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        let s = Json::from("a\"b\\c\nd\te\r\u{1}ü");
        assert_eq!(enc(&s), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001ü\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(enc(&Json::from(f64::NAN)), "null");
        assert_eq!(enc(&Json::from(f64::INFINITY)), "null");
        assert_eq!(enc(&Json::from(f32::NEG_INFINITY)), "null");
    }

    #[test]
    fn encodes_compound_values() {
        let obj = Json::Obj(vec![
            ("ev".into(), Json::from("epoch")),
            ("xs".into(), Json::from(vec![1.0f64, 2.0])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(enc(&obj), "{\"ev\":\"epoch\",\"xs\":[1,2],\"empty\":{}}");
    }

    #[test]
    fn parse_roundtrip() {
        let obj = Json::Obj(vec![
            ("name".into(), Json::from("kernel \"x\"\n")),
            ("calls".into(), Json::from(12usize)),
            ("ms".into(), Json::from(0.25f64)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(false), Json::Null]),
            ),
        ]);
        let parsed = parse(&enc(&obj)).expect("roundtrip parse");
        assert_eq!(parsed, obj);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let j = parse(" { \"a\" : [ 1 , -2.5e1 , { } ] , \"b\" : null } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(j.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parses_unicode_escapes() {
        let j = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(j.as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\":}", "12ab", "{} x", "nul"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
