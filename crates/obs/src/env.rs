//! One consistent parse/warn path for `RDD_*` environment knobs.
//!
//! Before this module, `RDD_THREADS`, `RDD_WORKSPACE`, and `RDD_SIMD` each
//! hand-rolled the same dance — read the variable, try to parse it, print a
//! slightly different warning on garbage, fall back to the default — with
//! three different message formats and no trace-visible record. Now every
//! knob funnels through [`parse_with`]: a rejected value emits a single
//! structured `env_warn` event (`var`, `value`, `expected`) when tracing is
//! on, or the same text to stderr when it is off, and the caller keeps its
//! default.
//!
//! Callers latch the parsed result themselves (`OnceLock` at the call
//! site), matching the repo convention that env knobs are read once per
//! process.

// `super::` (not `crate::`) so these sources also work when mounted as a
// module via `#[path]` in the registry-less tools binaries.
use super::json::Json;
use super::recorder;

/// The one warning format for a rejected env value. The recorder's own
/// `RDD_TRACE` handling reuses this (it cannot emit an event mid-init).
pub fn warn_message(var: &str, value: &str, expected: &str) -> String {
    format!("{var}={value:?} is invalid (expected {expected}); using default")
}

/// Record that `value` for `var` was rejected: a structured `env_warn`
/// event when tracing is on, the same text on stderr otherwise.
pub fn reject(var: &str, value: &str, expected: &str) {
    if recorder::enabled() {
        recorder::event(
            "env_warn",
            &[
                ("var", Json::from(var)),
                ("value", Json::from(value)),
                ("expected", Json::from(expected)),
            ],
        );
    } else {
        eprintln!("{}", warn_message(var, value, expected));
    }
}

/// Read `var` and run it through `parse`.
///
/// - unset or empty → `None`, silently (the knob was not used);
/// - `parse` returns `Some(v)` → `Some(v)`;
/// - `parse` returns `None` → [`reject`] fires and the caller gets `None`
///   (i.e. keeps its default).
///
/// `expected` is a short human description of the accepted values, e.g.
/// `"a positive integer"` or `"on|off"`.
pub fn parse_with<T>(
    var: &str,
    expected: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    let raw = std::env::var(var).ok()?;
    if raw.is_empty() {
        return None;
    }
    match parse(&raw) {
        Some(v) => Some(v),
        None => {
            reject(var, &raw, expected);
            None
        }
    }
}

/// [`parse_with`] for the common on/off switch shape: accepts
/// `1|true|on|yes` and `0|false|off|no` (ASCII case-insensitive).
pub fn parse_bool(var: &str) -> Option<bool> {
    parse_with(var, "on|off", |raw| {
        match raw.to_ascii_lowercase().as_str() {
            "1" | "true" | "on" | "yes" => Some(true),
            "0" | "false" | "off" | "no" => Some(false),
            _ => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; reuse the recorder's test lock so
    // these do not interleave with sink-toggling tests.
    use super::super::recorder::tests::lock;

    #[test]
    fn unset_and_empty_are_silent_none() {
        let _g = lock();
        std::env::remove_var("RDD_ENV_TEST_UNSET");
        assert_eq!(
            parse_with("RDD_ENV_TEST_UNSET", "anything", |_| Some(1)),
            None
        );
        std::env::set_var("RDD_ENV_TEST_EMPTY", "");
        assert_eq!(
            parse_with("RDD_ENV_TEST_EMPTY", "anything", |_| Some(1)),
            None
        );
        std::env::remove_var("RDD_ENV_TEST_EMPTY");
    }

    #[test]
    fn good_value_parses() {
        let _g = lock();
        std::env::set_var("RDD_ENV_TEST_GOOD", "7");
        assert_eq!(
            parse_with("RDD_ENV_TEST_GOOD", "a positive integer", |v| v
                .parse::<usize>()
                .ok()),
            Some(7)
        );
        std::env::remove_var("RDD_ENV_TEST_GOOD");
    }

    #[test]
    fn bad_value_warns_and_defaults() {
        let _g = lock();
        let path = std::env::temp_dir().join(format!("rdd_env_warn_{}.jsonl", std::process::id()));
        recorder::init_file(&path).unwrap();
        std::env::set_var("RDD_ENV_TEST_BAD", "banana");
        let got = parse_with("RDD_ENV_TEST_BAD", "a positive integer", |v| {
            v.parse::<usize>().ok()
        });
        std::env::remove_var("RDD_ENV_TEST_BAD");
        recorder::flush();
        recorder::disable();
        assert_eq!(got, None);
        let text = std::fs::read_to_string(&path).unwrap();
        let warned = text
            .lines()
            .filter_map(|l| super::super::json::parse(l).ok())
            .any(|e| {
                e.get("ev").and_then(Json::as_str) == Some("env_warn")
                    && e.get("var").and_then(Json::as_str) == Some("RDD_ENV_TEST_BAD")
                    && e.get("value").and_then(Json::as_str) == Some("banana")
            });
        assert!(warned, "env_warn event must reach the trace");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bool_shapes() {
        let _g = lock();
        for (raw, want) in [("on", true), ("1", true), ("YES", true), ("off", false)] {
            std::env::set_var("RDD_ENV_TEST_BOOL", raw);
            assert_eq!(parse_bool("RDD_ENV_TEST_BOOL"), Some(want), "raw={raw}");
        }
        std::env::remove_var("RDD_ENV_TEST_BOOL");
    }
}
