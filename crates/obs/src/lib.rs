//! `rdd-obs` — std-only structured telemetry for the RDD reproduction.
//!
//! The crate has three layers:
//!
//! - [`json`]: a hand-rolled compact JSON encoder + parser (the offline
//!   dependency set has no `serde`). Non-finite floats encode as `null`.
//! - [`recorder`]: the global JSONL recorder. Sink selected by
//!   `RDD_TRACE=<path|stderr|off>`; per-thread line buffers; `static` metric
//!   cells ([`SpanCell`], [`CounterCell`], [`GaugeCell`]) whose disabled
//!   cost is one atomic load + branch.
//! - [`telemetry`] / [`summarize`]: the domain event schema (epoch / member /
//!   run records from the training loop) and the offline validator +
//!   renderer behind `rdd trace-summary`.
//!
//! ## Event schema
//!
//! One JSON object per line; every event has `ev` (kind) and `t_ms`
//! (monotonic ms since the recorder first ran). Kinds emitted by this repo:
//!
//! | `ev`        | fields                                                                 |
//! |-------------|------------------------------------------------------------------------|
//! | `epoch`     | `model member epoch loss l1 l2 lreg gamma v_r v_b e_r agreement teacher_entropy_thresh student_entropy_thresh alpha[] train_acc val_acc test_acc` (RDD-only fields `null` for plain baselines) |
//! | `member`    | `member alpha val_acc test_acc epochs`                                 |
//! | `run`       | `ensemble_test_acc single_test_acc members`                            |
//! | `kernel`    | `name calls total_ms` — cumulative snapshot, last one wins             |
//! | `counter`   | `name value` — cumulative snapshot                                     |
//! | `gauge`     | `name value` — last/peak value                                         |
//! | `pool_init` | `threads` — resolved worker-pool width                                 |
//! | `simd_init` | `tier detected` — resolved SIMD kernel tier (`RDD_SIMD`) vs best available |
//! | `fault`     | `kind site n` — an injected [`fault`] fired (`RDD_FAULT`)              |
//! | `rollback`  | `model epoch retry lr_scale reason` — divergence guard retried an epoch |
//! | `divergence`| `model epoch rollbacks` — retry budget exhausted, member degraded      |
//! | `member_dropped` | `member rollbacks` — diverged member excluded from the ensemble   |
//! | `checkpoint`| `member kept dir` — member persisted, run manifest committed           |
//! | `resume`    | `next_member loaded dir` — run directory reloaded, cascade restarting  |
//! | `serve_batch` | `requests nodes hits misses exec_ms lat_ms[]` — one serve-engine flush |
//! | `serve_run` | `requests batches hits misses wall_ms` — final serve-session totals    |
//! | `warn`      | `msg`                                                                  |
//!
//! Unknown kinds are preserved by the parser (forward compatible); binaries
//! may add their own (the bench diagnostics emit `reliability_diag` and
//! `sweep` records).

pub mod fault;
pub mod json;
pub mod recorder;
pub mod summarize;
pub mod telemetry;

pub use fault::FaultKind;
pub use json::{parse, Json};
pub use recorder::{
    disable, enabled, event, flush, init_file, init_stderr, warn, CounterCell, GaugeCell, SpanCell,
    SpanGuard,
};
pub use summarize::{percentile, render_table, sample_stats, validate, SampleStats, TraceSummary};
pub use telemetry::{
    agreement_rate, emit_checkpoint, emit_divergence, emit_member, emit_member_dropped,
    emit_resume, emit_rollback, emit_run, emit_serve_batch, emit_serve_run, stage_rdd_epoch,
    EpochTelemetry, RddEpochExtra,
};
