//! `rdd-obs` — std-only structured telemetry for the RDD reproduction.
//!
//! The crate has four layers:
//!
//! - [`json`]: a hand-rolled compact JSON encoder + parser (the offline
//!   dependency set has no `serde`). Non-finite floats encode as `null`.
//! - [`hist`]: dependency-free log2-bucketed histograms ([`AtomicHist`] for
//!   lock-free recording, [`HistSnapshot`] for merge/quantile math) — the
//!   substrate for every latency percentile in the repo.
//! - [`recorder`]: the global JSONL recorder. Sink selected by
//!   `RDD_TRACE=<path|stderr|off>`; per-thread line buffers; `static` metric
//!   cells ([`SpanCell`], [`CounterCell`], [`GaugeCell`], [`HistCell`])
//!   whose disabled cost is one atomic load + branch. Spans are
//!   hierarchical: per-thread stacks attribute self-time vs total-time and
//!   record (child, parent) call edges.
//! - [`telemetry`] / [`summarize`] / [`env`]: the domain event schema
//!   (epoch / member / run / serve records), the offline validator +
//!   renderer behind `rdd trace-summary` / `rdd report`, and the latched
//!   env-var parse helper shared by `RDD_THREADS` / `RDD_WORKSPACE` /
//!   `RDD_SIMD`.
//!
//! ## Event schema
//!
//! One JSON object per line; every event has `ev` (kind) and `t_ms`
//! (monotonic ms since the recorder first ran). Kinds emitted by this repo:
//!
//! | `ev`        | fields                                                                 |
//! |-------------|------------------------------------------------------------------------|
//! | `epoch`     | `model member epoch loss l1 l2 lreg gamma v_r v_b e_r agreement teacher_entropy_thresh student_entropy_thresh alpha[] train_acc val_acc test_acc` (RDD-only fields `null` for plain baselines) |
//! | `member`    | `member alpha val_acc test_acc epochs`                                 |
//! | `run`       | `ensemble_test_acc single_test_acc members`                            |
//! | `kernel`    | `name calls total_ms self_ms` — cumulative snapshot, last one wins     |
//! | `hist`      | `name count buckets[]` — log2-bucket counts (bucket i = `[2^i, 2^(i+1))` ns), trailing zeros trimmed |
//! | `span_parent` | `child parent calls` — observed span-nesting edge with call count    |
//! | `counter`   | `name value` — cumulative snapshot                                     |
//! | `gauge`     | `name value` — last/peak value                                         |
//! | `pool_init` | `threads` — resolved worker-pool width                                 |
//! | `simd_init` | `tier detected` — resolved SIMD kernel tier (`RDD_SIMD`) vs best available |
//! | `fault`     | `kind site n pass` — an injected [`fault`] fired (`RDD_FAULT`)         |
//! | `rollback`  | `model epoch retry lr_scale reason` — divergence guard retried an epoch |
//! | `divergence`| `model epoch rollbacks` — retry budget exhausted, member degraded      |
//! | `member_dropped` | `member rollbacks` — diverged member excluded from the ensemble   |
//! | `checkpoint`| `member kept dir` — member persisted, run manifest committed           |
//! | `resume`    | `next_member loaded dir` — run directory reloaded, cascade restarting  |
//! | `serve_batch` | `worker requests nodes hits misses exec_ms lat_ms[]` — one serve-engine flush |
//! | `serve_run` | `requests batches hits misses shed expired failed rejected wall_ms` — final serve-session totals |
//! | `serve_metrics` | `window_s requests p50_ms p99_ms queue_peak hit_rate shed shed_expired breaker` — rolling-window heartbeat (`rdd serve --metrics-every`) |
//! | `swap`      | `generation checksum path` — hot artifact swap rolled a new generation in |
//! | `swap_failed` | `path error failures backoff_ms` — watched artifact failed to load/validate; live generation kept, poll backed off |
//! | `worker_panic` | `worker requests requeued failed` — serve-pool worker panicked; batch requeued or answered with typed errors |
//! | `worker_respawn` | `worker respawns` — replacement thread took over a panicked worker's slot |
//! | `breaker_state` | `state from p99_ms shed_rate retry_after_ms` — overload circuit-breaker transition (`closed`/`open`/`half_open`) |
//! | `env_warn`  | `var value expected` — rejected environment-variable value (default kept) |
//! | `warn`      | `msg`                                                                  |
//!
//! Unknown kinds are preserved by the parser (forward compatible); binaries
//! may add their own (the bench diagnostics emit `reliability_diag` and
//! `sweep` records).

pub mod env;
pub mod fault;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod summarize;
pub mod telemetry;

pub use fault::FaultKind;
pub use hist::{AtomicHist, HistSnapshot, BUCKETS};
pub use json::{parse, Json};
pub use recorder::{
    disable, enabled, event, flush, init_file, init_stderr, warn, CounterCell, GaugeCell, HistCell,
    SpanCell, SpanGuard,
};
pub use summarize::{
    percentile, render_report, render_table, sample_stats, validate, SampleStats, StatsError,
    TraceSummary,
};
pub use telemetry::{
    agreement_rate, emit_breaker_state, emit_checkpoint, emit_distill, emit_divergence,
    emit_hist_snapshot, emit_member, emit_member_dropped, emit_resume, emit_rollback, emit_run,
    emit_serve_batch, emit_serve_metrics, emit_serve_run, emit_swap, emit_swap_failed,
    emit_worker_panic, emit_worker_respawn, stage_rdd_epoch, EpochTelemetry, RddEpochExtra,
    ServeMetricsSnapshot,
};
