//! Domain-level telemetry for the RDD training loop.
//!
//! The trainer (`models::trainer::train`) owns the per-epoch quantities it
//! can see — loss, `L1`, accuracies — but the RDD-specific terms (`L2`,
//! `Lreg`, γ, reliable-set sizes, agreement) are computed inside the loss
//! hook closure that `RddTrainer::run` hands it. The hook stages an
//! [`RddEpochExtra`] for the epoch via [`stage_rdd_epoch`]; the trainer then
//! merges it into the `epoch` event with [`EpochTelemetry::emit`]. Staging is
//! thread-local: concurrent trainers on different threads cannot cross wires.
//!
//! Epoch events carry a uniform schema — RDD-only fields are `null` when the
//! run has no distillation hook (e.g. a plain GCN baseline).

use std::cell::RefCell;

use super::hist::HistSnapshot;
use super::json::Json;
use super::recorder::{enabled, event};

/// RDD-specific per-epoch quantities, staged from inside the loss hook.
#[derive(Clone, Debug, Default)]
pub struct RddEpochExtra {
    /// Index of the student in the sequential ensemble (0 = no teacher yet).
    pub member: usize,
    /// Distillation loss term (0 for member 0).
    pub l2: f32,
    /// Edge-regularization loss term.
    pub lreg: f32,
    /// Cosine-annealed distillation weight for this epoch.
    pub gamma: f32,
    /// |V_r|: nodes whose teacher prediction is considered reliable.
    pub v_r: usize,
    /// |V_b|: reliable nodes the student is still unsure about (⊆ V_r).
    pub v_b: usize,
    /// |E_r|: edges with both endpoints reliable.
    pub e_r: usize,
    /// Fraction of nodes where teacher and student argmax agree.
    pub agreement: f32,
    /// Entropy percentile cut for teacher reliability (NaN ⇒ `null`).
    pub teacher_entropy_thresh: f32,
    /// Entropy percentile cut for student certainty (NaN ⇒ `null`).
    pub student_entropy_thresh: f32,
    /// Current teacher-ensemble member weights (empty for member 0).
    pub alpha: Vec<f32>,
}

thread_local! {
    static STAGED: RefCell<Option<RddEpochExtra>> = const { RefCell::new(None) };
}

/// Stage RDD quantities for the epoch event the trainer will emit next.
/// Call from the loss hook, once per epoch. No-op when tracing is off.
pub fn stage_rdd_epoch(extra: RddEpochExtra) {
    if !enabled() {
        return;
    }
    STAGED.with(|s| *s.borrow_mut() = Some(extra));
}

fn take_staged() -> Option<RddEpochExtra> {
    STAGED.with(|s| s.borrow_mut().take())
}

/// Fraction of positions where two argmax predictions agree.
pub fn agreement_rate(teacher: &[usize], student: &[usize]) -> f32 {
    assert_eq!(teacher.len(), student.len());
    if teacher.is_empty() {
        return 0.0;
    }
    let same = teacher.iter().zip(student).filter(|(a, b)| a == b).count();
    same as f32 / teacher.len() as f32
}

/// One `epoch` event, emitted by the generic trainer after validation.
#[derive(Clone, Debug)]
pub struct EpochTelemetry<'a> {
    pub model: &'a str,
    pub epoch: usize,
    /// Total optimized loss (all weighted terms).
    pub loss: f32,
    /// Supervised cross-entropy term alone.
    pub l1: f32,
    pub train_acc: f32,
    pub val_acc: f32,
    pub test_acc: f32,
}

impl EpochTelemetry<'_> {
    /// Merge any staged [`RddEpochExtra`] and emit the `epoch` event.
    /// No-op when tracing is off.
    pub fn emit(&self) {
        if !enabled() {
            return;
        }
        let extra = take_staged();
        let rdd = extra.as_ref();
        let num = |f: Option<f32>| Json::Num(f.map_or(f64::NAN, f64::from));
        let count = |f: Option<usize>| match f {
            Some(n) => Json::from(n),
            None => Json::Null,
        };
        event(
            "epoch",
            &[
                ("model", Json::from(self.model)),
                ("member", count(rdd.map(|r| r.member))),
                ("epoch", Json::from(self.epoch)),
                ("loss", Json::from(self.loss)),
                ("l1", Json::from(self.l1)),
                ("l2", num(rdd.map(|r| r.l2))),
                ("lreg", num(rdd.map(|r| r.lreg))),
                ("gamma", num(rdd.map(|r| r.gamma))),
                ("v_r", count(rdd.map(|r| r.v_r))),
                ("v_b", count(rdd.map(|r| r.v_b))),
                ("e_r", count(rdd.map(|r| r.e_r))),
                ("agreement", num(rdd.map(|r| r.agreement))),
                (
                    "teacher_entropy_thresh",
                    num(rdd.map(|r| r.teacher_entropy_thresh)),
                ),
                (
                    "student_entropy_thresh",
                    num(rdd.map(|r| r.student_entropy_thresh)),
                ),
                (
                    "alpha",
                    Json::from(rdd.map_or(Vec::new(), |r| r.alpha.clone())),
                ),
                ("train_acc", Json::from(self.train_acc)),
                ("val_acc", Json::from(self.val_acc)),
                ("test_acc", Json::from(self.test_acc)),
            ],
        );
    }
}

/// One `member` event: a student finished training and joined the ensemble.
pub fn emit_member(member: usize, alpha: f32, val_acc: f32, test_acc: f32, epochs: usize) {
    event(
        "member",
        &[
            ("member", Json::from(member)),
            ("alpha", Json::from(alpha)),
            ("val_acc", Json::from(val_acc)),
            ("test_acc", Json::from(test_acc)),
            ("epochs", Json::from(epochs)),
        ],
    );
}

/// One `rollback` event: the divergence guard saw a non-finite loss or
/// gradient and is retrying the epoch. `retry` counts attempts for the
/// run so far; `lr_scale` is the backoff factor now applied to the
/// configured learning rate (1.0 on the free same-state replay).
pub fn emit_rollback(model: &str, epoch: usize, retry: usize, lr_scale: f32, reason: &str) {
    event(
        "rollback",
        &[
            ("model", Json::from(model)),
            ("epoch", Json::from(epoch)),
            ("retry", Json::from(retry)),
            ("lr_scale", Json::from(lr_scale)),
            ("reason", Json::from(reason)),
        ],
    );
}

/// One `divergence` event: the guard's retry budget is exhausted and the
/// model is handed back in its best-snapshot state, flagged diverged.
pub fn emit_divergence(model: &str, epoch: usize, rollbacks: usize) {
    event(
        "divergence",
        &[
            ("model", Json::from(model)),
            ("epoch", Json::from(epoch)),
            ("rollbacks", Json::from(rollbacks)),
        ],
    );
}

/// One `member_dropped` event: a diverged member was excluded from the
/// ensemble (graceful degradation toward the plain-WNR path).
pub fn emit_member_dropped(member: usize, rollbacks: usize) {
    event(
        "member_dropped",
        &[
            ("member", Json::from(member)),
            ("rollbacks", Json::from(rollbacks)),
        ],
    );
}

/// One `checkpoint` event: a member's state was durably persisted to the
/// run directory and the manifest committed.
pub fn emit_checkpoint(member: usize, kept: bool, dir: &str) {
    event(
        "checkpoint",
        &[
            ("member", Json::from(member)),
            ("kept", Json::Bool(kept)),
            ("dir", Json::from(dir)),
        ],
    );
}

/// One `resume` event: a run directory was reloaded and the cascade will
/// restart at `next_member` with `loaded` members replayed from disk.
pub fn emit_resume(next_member: usize, loaded: usize, dir: &str) {
    event(
        "resume",
        &[
            ("next_member", Json::from(next_member)),
            ("loaded", Json::from(loaded)),
            ("dir", Json::from(dir)),
        ],
    );
}

/// One `run` event: final outcome of a full RDD run.
pub fn emit_run(ensemble_test_acc: f32, single_test_acc: f32, members: usize) {
    event(
        "run",
        &[
            ("ensemble_test_acc", Json::from(ensemble_test_acc)),
            ("single_test_acc", Json::from(single_test_acc)),
            ("members", Json::from(members)),
        ],
    );
}

/// One `distill` event: a graph-free MLP student finished distilling from
/// the frozen ensemble. `v_r`/`labeled` size the KD/CE supervision sets,
/// `gap` is `ensemble_test_acc - student_test_acc` (positive when the
/// student trails its teacher).
#[allow(clippy::too_many_arguments)]
pub fn emit_distill(
    student_test_acc: f32,
    student_val_acc: f32,
    ensemble_test_acc: f32,
    gap: f32,
    v_r: usize,
    labeled: usize,
    lambda_kd: f32,
    epochs: usize,
) {
    event(
        "distill",
        &[
            ("student_test_acc", Json::from(student_test_acc)),
            ("student_val_acc", Json::from(student_val_acc)),
            ("ensemble_test_acc", Json::from(ensemble_test_acc)),
            ("gap", Json::from(gap)),
            ("v_r", Json::from(v_r)),
            ("labeled", Json::from(labeled)),
            ("lambda_kd", Json::from(lambda_kd)),
            ("epochs", Json::from(epochs)),
        ],
    );
}

/// One `serve_batch` event per serve-engine flush: which worker flushed it,
/// how many requests and node rows it covered, the cache hit/miss split,
/// predictor execution time, and every request's end-to-end latency
/// (`lat_ms` array — kept per-batch rather than per-request to bound trace
/// size while preserving full latency fidelity for p50/p99 aggregation).
pub fn emit_serve_batch(
    worker: usize,
    requests: usize,
    nodes: usize,
    hits: usize,
    misses: usize,
    exec_ms: f64,
    lat_ms: &[f64],
) {
    if !enabled() {
        return;
    }
    event(
        "serve_batch",
        &[
            ("worker", Json::from(worker)),
            ("requests", Json::from(requests)),
            ("nodes", Json::from(nodes)),
            ("hits", Json::from(hits)),
            ("misses", Json::from(misses)),
            ("exec_ms", Json::from(exec_ms)),
            ("lat_ms", Json::from(lat_ms.to_vec())),
        ],
    );
}

/// One `serve_run` event: final counters of a serve session or bench.
/// `shed` counts requests rejected at admission (queue full); `expired`
/// counts requests shed after admission because their deadline passed
/// before dispatch; `failed` counts requests answered with a typed
/// `WorkerFailed` error after exhausting the panic retry budget;
/// `rejected` counts requests refused by the overload circuit breaker.
#[allow(clippy::too_many_arguments)]
pub fn emit_serve_run(
    requests: u64,
    batches: u64,
    hits: u64,
    misses: u64,
    shed: u64,
    expired: u64,
    failed: u64,
    rejected: u64,
    wall_ms: f64,
) {
    event(
        "serve_run",
        &[
            ("requests", Json::from(requests)),
            ("batches", Json::from(batches)),
            ("hits", Json::from(hits)),
            ("misses", Json::from(misses)),
            ("shed", Json::from(shed)),
            ("expired", Json::from(expired)),
            ("failed", Json::from(failed)),
            ("rejected", Json::from(rejected)),
            ("wall_ms", Json::from(wall_ms)),
        ],
    );
}

/// One `worker_panic` event: a serve-pool worker panicked mid-batch. The
/// supervisor requeued `requeued` of the batch's `requests` for retry and
/// answered the other `failed` with typed `WorkerFailed` errors (their
/// retry budgets were spent).
pub fn emit_worker_panic(worker: usize, requests: usize, requeued: usize, failed: usize) {
    event(
        "worker_panic",
        &[
            ("worker", Json::from(worker)),
            ("requests", Json::from(requests)),
            ("requeued", Json::from(requeued)),
            ("failed", Json::from(failed)),
        ],
    );
}

/// One `worker_respawn` event: a replacement thread took over a panicked
/// worker's slot. `respawns` is that slot's lifetime respawn count.
pub fn emit_worker_respawn(worker: usize, respawns: u64) {
    event(
        "worker_respawn",
        &[
            ("worker", Json::from(worker)),
            ("respawns", Json::from(respawns)),
        ],
    );
}

/// One `swap_failed` event: a watched replacement artifact failed to load
/// or validate (or was rejected by `try_swap`), so the live generation was
/// kept and the watcher backed off. `failures` counts consecutive failures
/// for this artifact; `backoff_ms` is the delay before the next attempt.
pub fn emit_swap_failed(path: &str, error: &str, failures: u32, backoff_ms: u64) {
    event(
        "swap_failed",
        &[
            ("path", Json::from(path)),
            ("error", Json::from(error)),
            ("failures", Json::from(u64::from(failures))),
            ("backoff_ms", Json::from(backoff_ms)),
        ],
    );
}

/// One `breaker_state` event: the overload circuit breaker transitioned.
/// `p99_ms` / `shed_rate` are the window stats that drove the decision;
/// `retry_after_ms` is how long clients are told to back off (null unless
/// the breaker opened).
pub fn emit_breaker_state(
    state: &str,
    from: &str,
    p99_ms: f64,
    shed_rate: f64,
    retry_after_ms: Option<f64>,
) {
    event(
        "breaker_state",
        &[
            ("state", Json::from(state)),
            ("from", Json::from(from)),
            ("p99_ms", Json::from(p99_ms)),
            ("shed_rate", Json::from(shed_rate)),
            (
                "retry_after_ms",
                retry_after_ms.map_or(Json::Null, Json::Num),
            ),
        ],
    );
}

/// One `swap` event: the serving pool atomically rolled a new artifact
/// generation in (hot swap). `checksum` is the incoming artifact's FNV-1a
/// checksum, rendered as the same 16-hex-digit string `rdd export` prints.
pub fn emit_swap(generation: u64, checksum: u64, path: &str) {
    event(
        "swap",
        &[
            ("generation", Json::from(generation)),
            ("checksum", Json::from(format!("{checksum:016x}"))),
            ("path", Json::from(path)),
        ],
    );
}

/// One cumulative `hist` event from an explicit snapshot, in the same
/// shape the recorder's flush emits for `HistCell` statics. The serve pool
/// uses this at shutdown to publish per-worker latency histograms
/// (`serve.worker<i>.request_ns`) that live in worker-local state rather
/// than in a global cell.
pub fn emit_hist_snapshot(name: &str, snap: &HistSnapshot) {
    if !enabled() || snap.count() == 0 {
        return;
    }
    event(
        "hist",
        &[
            ("name", Json::from(name)),
            ("count", Json::from(snap.count())),
            ("buckets", Json::from(snap.trimmed().to_vec())),
        ],
    );
}

/// One rolling window of live serve metrics, as sampled by
/// [`emit_serve_metrics`] and the `rdd serve --metrics-every` heartbeat.
/// Latencies are milliseconds (histogram-derived, so accurate to one log2
/// bucket); counters cover only the window, not the whole session.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServeMetricsSnapshot {
    /// Width of the window actually covered, seconds.
    pub window_s: u64,
    /// Requests completed inside the window.
    pub requests: u64,
    /// Median end-to-end request latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end request latency, ms.
    pub p99_ms: f64,
    /// Queue-depth high-water mark over the window.
    pub queue_peak: u64,
    /// Cache hits / (hits + misses) over the window; 0 when idle.
    pub hit_rate: f64,
    /// Requests shed at admission (queue full) over the window.
    pub shed: u64,
    /// Requests shed post-admission (deadline expired) over the window.
    pub shed_expired: u64,
    /// Overload circuit-breaker state (`closed` / `open` / `half_open`);
    /// `None` when no breaker is configured.
    pub breaker: Option<&'static str>,
}

impl ServeMetricsSnapshot {
    /// The one-line status `rdd serve` prints per heartbeat.
    pub fn status_line(&self) -> String {
        let mut line = format!(
            "serve: {} req/{}s  p50 {:.3} ms  p99 {:.3} ms  queue peak {}  hit rate {:.1}%  shed {}  expired {}",
            self.requests,
            self.window_s,
            self.p50_ms,
            self.p99_ms,
            self.queue_peak,
            100.0 * self.hit_rate,
            self.shed,
            self.shed_expired
        );
        if let Some(state) = self.breaker {
            line.push_str(&format!("  breaker {state}"));
        }
        line
    }
}

/// One `serve_metrics` heartbeat event from a rolling window snapshot.
pub fn emit_serve_metrics(m: &ServeMetricsSnapshot) {
    event(
        "serve_metrics",
        &[
            ("window_s", Json::from(m.window_s)),
            ("requests", Json::from(m.requests)),
            ("p50_ms", Json::from(m.p50_ms)),
            ("p99_ms", Json::from(m.p99_ms)),
            ("queue_peak", Json::from(m.queue_peak)),
            ("hit_rate", Json::from(m.hit_rate)),
            ("shed", Json::from(m.shed)),
            ("shed_expired", Json::from(m.shed_expired)),
            ("breaker", m.breaker.map_or(Json::Null, Json::from)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::super::json::{parse, Json};
    use super::super::recorder;
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "rdd_obs_tel_{tag}_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn agreement_rate_counts_matches() {
        assert_eq!(agreement_rate(&[], &[]), 0.0);
        assert_eq!(agreement_rate(&[1, 2, 3, 4], &[1, 0, 3, 0]), 0.5);
        assert_eq!(agreement_rate(&[7, 7], &[7, 7]), 1.0);
    }

    #[test]
    fn epoch_event_merges_staged_rdd_extra() {
        let _g = recorder::tests::lock();
        let path = temp_path("merge");
        recorder::init_file(&path).unwrap();
        stage_rdd_epoch(RddEpochExtra {
            member: 2,
            l2: 0.25,
            lreg: 0.125,
            gamma: 0.5,
            v_r: 100,
            v_b: 40,
            e_r: 321,
            agreement: 0.75,
            teacher_entropy_thresh: 1.5,
            student_entropy_thresh: f32::NAN,
            alpha: vec![1.0, 2.0],
        });
        EpochTelemetry {
            model: "gcn",
            epoch: 3,
            loss: 1.5,
            l1: 1.0,
            train_acc: 0.9,
            val_acc: 0.8,
            test_acc: 0.7,
        }
        .emit();
        // Next emit has nothing staged: RDD fields go null.
        EpochTelemetry {
            model: "gcn",
            epoch: 4,
            loss: 1.25,
            l1: 1.25,
            train_acc: 0.9,
            val_acc: 0.8,
            test_acc: 0.7,
        }
        .emit();
        recorder::flush();
        recorder::disable();
        let events: Vec<Json> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(|l| parse(l).unwrap())
            .filter(|e| e.get("ev").and_then(Json::as_str) == Some("epoch"))
            .collect();
        assert_eq!(events.len(), 2);
        let merged = &events[0];
        assert_eq!(merged.get("member").and_then(Json::as_f64), Some(2.0));
        assert_eq!(merged.get("l2").and_then(Json::as_f64), Some(0.25));
        assert_eq!(merged.get("v_r").and_then(Json::as_f64), Some(100.0));
        assert_eq!(merged.get("v_b").and_then(Json::as_f64), Some(40.0));
        assert_eq!(merged.get("e_r").and_then(Json::as_f64), Some(321.0));
        assert_eq!(merged.get("agreement").and_then(Json::as_f64), Some(0.75));
        assert!(
            matches!(merged.get("student_entropy_thresh"), Some(Json::Null)),
            "NaN threshold must encode as null"
        );
        assert_eq!(
            merged
                .get("alpha")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        let bare = &events[1];
        assert!(matches!(bare.get("l2"), Some(Json::Null)));
        assert!(matches!(bare.get("v_r"), Some(Json::Null)));
        assert_eq!(
            bare.get("alpha").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
        assert_eq!(bare.get("l1").and_then(Json::as_f64), Some(1.25));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn member_and_run_events_encode() {
        let _g = recorder::tests::lock();
        let path = temp_path("member_run");
        recorder::init_file(&path).unwrap();
        emit_member(1, 42.5, 0.81, 0.8, 120);
        emit_run(0.84, 0.8, 4);
        recorder::flush();
        recorder::disable();
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Json> = text.lines().map(|l| parse(l).unwrap()).collect();
        let member = events
            .iter()
            .find(|e| e.get("ev").and_then(Json::as_str) == Some("member"))
            .unwrap();
        assert_eq!(member.get("alpha").and_then(Json::as_f64), Some(42.5));
        assert_eq!(member.get("epochs").and_then(Json::as_f64), Some(120.0));
        let run = events
            .iter()
            .find(|e| e.get("ev").and_then(Json::as_str) == Some("run"))
            .unwrap();
        assert_eq!(
            run.get("ensemble_test_acc").and_then(Json::as_f64),
            Some(f64::from(0.84f32))
        );
        std::fs::remove_file(&path).ok();
    }
}
