//! Overhead guard: with telemetry disabled (`RDD_TRACE` unset) the
//! instrumentation hot path — `SpanCell::enter` + `HistCell::record` —
//! must allocate nothing and cost at most a small multiple of an empty
//! loop. This is the contract that lets kernels and the serve engine
//! stay instrumented unconditionally.
//!
//! `ci.sh` runs this test explicitly (`cargo test -p rdd-obs --test
//! overhead`); it also runs as part of the normal workspace test sweep.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

/// System allocator wrapper that counts allocation calls per thread, so
/// the test can assert its own hot loop performs exactly zero of them
/// without picking up concurrent libtest-harness threads. The counter is
/// const-initialized TLS: reading it never allocates, so there is no
/// recursion hazard inside `alloc`.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with`: TLS may be mid-teardown when late allocations happen.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

static SPAN: rdd_obs::SpanCell = rdd_obs::SpanCell::new("overhead.span");
static HIST: rdd_obs::HistCell = rdd_obs::HistCell::new("overhead.hist");

#[test]
fn disabled_recorder_is_allocation_free_and_cheap() {
    if rdd_obs::enabled() {
        // The guard is about the *disabled* path; a trace sink in the
        // environment changes the premise, not the contract under test.
        eprintln!("overhead guard skipped: RDD_TRACE is set in this environment");
        return;
    }

    const ITERS: u64 = 1_000_000;

    // Warm up: fault in lazy statics and branch predictors outside the
    // measured (and allocation-counted) windows.
    let mut acc = 0u64;
    for i in 0..10_000u64 {
        let _g = SPAN.enter();
        HIST.record(i);
        acc = acc.wrapping_add(std::hint::black_box(i));
    }

    // Reference: the same loop body without instrumentation.
    let t0 = Instant::now();
    for i in 0..ITERS {
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    let empty = t0.elapsed();

    let allocs_before = thread_allocs();
    let t1 = Instant::now();
    for i in 0..ITERS {
        let _g = std::hint::black_box(&SPAN).enter();
        std::hint::black_box(&HIST).record(i);
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    let instrumented = t1.elapsed();
    let allocs = thread_allocs() - allocs_before;
    std::hint::black_box(acc);

    assert_eq!(
        allocs, 0,
        "disabled span/hist hot loop performed {allocs} allocations"
    );

    // Generous multiple plus an absolute slack term so scheduler noise on
    // loaded single-core CI boxes cannot flake the gate; a real regression
    // (e.g. locking or allocating on the disabled path) is orders of
    // magnitude past this.
    let bound_ns = empty.as_nanos() * 40 + 10_000_000;
    assert!(
        instrumented.as_nanos() <= bound_ns,
        "disabled instrumentation cost {:?} for {ITERS} iterations \
         (empty loop {:?}; bound {} ns)",
        instrumented,
        empty,
        bound_ns
    );
}
