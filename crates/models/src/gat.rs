//! Graph Attention Network (Veličković et al. 2018) — the "more powerful
//! base model" the paper names when noting RDD is not tied to GCN (§5.3).
//!
//! Two layers, as in the original: a multi-head attention layer with
//! concatenated heads and ELU, then a single-head output layer producing
//! logits. Attention runs over the graph's neighborhood structure with
//! self-loops.

use std::rc::Rc;

use rand::rngs::StdRng;
use rdd_tensor::{glorot_uniform, uniform, CsrMatrix, Matrix, Tape, Var};

use crate::context::GraphContext;
use crate::gcn::Model;

/// GAT hyperparameters (defaults follow the original paper's transductive
/// setup: 8 heads × 8 units, LeakyReLU slope 0.2).
#[derive(Clone, Debug)]
pub struct GatConfig {
    /// Attention heads in the hidden layer.
    pub heads: usize,
    /// Hidden units per head.
    pub hidden_per_head: usize,
    /// Dropout on hidden activations.
    pub dropout: f32,
    /// Dropout on the sparse input features.
    pub input_dropout: f32,
    /// LeakyReLU negative slope for attention logits.
    pub leaky_slope: f32,
}

impl Default for GatConfig {
    fn default() -> Self {
        Self {
            heads: 8,
            hidden_per_head: 8,
            dropout: 0.6,
            input_dropout: 0.6,
            leaky_slope: 0.2,
        }
    }
}

/// Two-layer GAT. Parameter layout: for each of `heads` first-layer heads,
/// `(W_k, a_l_k, a_r_k)`; then the output head's `(W_out, a_l, a_r)`.
pub struct Gat {
    cfg: GatConfig,
    params: Vec<Matrix>,
    /// Neighborhood structure with self-loops (values ignored).
    structure: Rc<CsrMatrix>,
}

impl Gat {
    /// Build with Glorot-initialized weights and uniform attention vectors.
    pub fn new(ctx: &GraphContext, cfg: GatConfig, rng: &mut StdRng) -> Self {
        assert!(cfg.heads >= 1 && cfg.hidden_per_head >= 1);
        let mut params = Vec::with_capacity(cfg.heads * 3 + 3);
        for _ in 0..cfg.heads {
            params.push(glorot_uniform(ctx.in_dim, cfg.hidden_per_head, rng));
            params.push(uniform(1, cfg.hidden_per_head, 0.3, rng));
            params.push(uniform(1, cfg.hidden_per_head, 0.3, rng));
        }
        let cat = cfg.heads * cfg.hidden_per_head;
        params.push(glorot_uniform(cat, ctx.num_classes, rng));
        params.push(uniform(1, ctx.num_classes, 0.3, rng));
        params.push(uniform(1, ctx.num_classes, 0.3, rng));

        // Â's stored pattern is exactly A + I, so it doubles as the
        // attention neighborhood structure.
        let structure = Rc::clone(&ctx.a_hat);
        Self {
            cfg,
            params,
            structure,
        }
    }
}

impl Model for Gat {
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = if training {
            ctx.dropout_features(self.cfg.input_dropout, rng)
        } else {
            Rc::clone(&ctx.features)
        };
        // Layer 1: multi-head attention, heads concatenated.
        let mut heads = Vec::with_capacity(self.cfg.heads);
        for k in 0..self.cfg.heads {
            let w = tape.param_of(3 * k, &self.params[3 * k]);
            let a_l = tape.param_of(3 * k + 1, &self.params[3 * k + 1]);
            let a_r = tape.param_of(3 * k + 2, &self.params[3 * k + 2]);
            let h = tape.spmm(&x, w, false);
            let att = tape.graph_attention(&self.structure, h, a_l, a_r, self.cfg.leaky_slope);
            heads.push(att);
        }
        let cat = if heads.len() == 1 {
            heads[0]
        } else {
            tape.concat_cols(&heads)
        };
        let mut act = tape.elu(cat);
        if training {
            act = tape.dropout(act, self.cfg.dropout, rng);
        }
        // Layer 2: single-head attention producing logits.
        let base = 3 * self.cfg.heads;
        let w = tape.param_of(base, &self.params[base]);
        let a_l = tape.param_of(base + 1, &self.params[base + 1]);
        let a_r = tape.param_of(base + 2, &self.params[base + 2]);
        let h = tape.matmul(act, w);
        tape.graph_attention(&self.structure, h, a_l, a_r, self.cfg.leaky_slope)
    }

    fn params(&self) -> &[Matrix] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    fn decay_mask(&self) -> Vec<bool> {
        // Decay the first-layer weight matrices (not the attention vectors).
        (0..self.params.len())
            .map(|i| i < 3 * self.cfg.heads && i % 3 == 0)
            .collect()
    }

    fn name(&self) -> &'static str {
        "GAT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorExt;
    use crate::trainer::{train, TrainConfig};
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    fn small_gat_cfg() -> GatConfig {
        GatConfig {
            heads: 2,
            hidden_per_head: 8,
            dropout: 0.3,
            input_dropout: 0.3,
            leaky_slope: 0.2,
        }
    }

    #[test]
    fn gat_output_shape_and_params() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(1);
        let gat = Gat::new(&ctx, small_gat_cfg(), &mut rng);
        assert_eq!(gat.params().len(), 2 * 3 + 3);
        let mut tape = Tape::new();
        let v = gat.forward(&mut tape, &ctx, false, &mut rng);
        assert_eq!(tape.value(v).shape(), (300, 3));
    }

    #[test]
    fn gat_backprops_to_all_params() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(2);
        let gat = Gat::new(&ctx, small_gat_cfg(), &mut rng);
        let mut tape = Tape::new();
        let logits = gat.forward(&mut tape, &ctx, true, &mut rng);
        let lp = tape.log_softmax(logits);
        let labels = Rc::new(data.labels.clone());
        let idx = Rc::new(data.train_idx.clone());
        let loss = tape.nll_masked(lp, labels, idx);
        let grads = tape.backward(loss, gat.params().len());
        for (i, g) in grads.iter().enumerate() {
            let g = g
                .as_ref()
                .unwrap_or_else(|| panic!("no grad for param {i}"));
            assert!(g.frob_sq() > 0.0, "zero grad for param {i}");
        }
    }

    #[test]
    fn gat_learns_tiny_dataset() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(3);
        let mut gat = Gat::new(&ctx, small_gat_cfg(), &mut rng);
        let cfg = TrainConfig {
            epochs: 80,
            patience: 80,
            min_epochs: 0,
            ..TrainConfig::fast()
        };
        train(&mut gat, &ctx, &data, &cfg, &mut rng, None);
        let acc = data.test_accuracy(&gat.predictor(&ctx).predict());
        assert!(acc > 0.6, "GAT should learn the tiny dataset, got {acc}");
    }

    #[test]
    fn decay_mask_targets_weight_matrices_only() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(4);
        let gat = Gat::new(&ctx, small_gat_cfg(), &mut rng);
        let mask = gat.decay_mask();
        assert_eq!(
            mask,
            vec![true, false, false, true, false, false, false, false, false]
        );
    }
}
