//! Validated configuration construction.
//!
//! Bare field-struct configs made it possible to hand the trainer nonsense
//! (`p = 0`, `epochs = 0`, a negative learning rate) that only surfaced as
//! a hang or NaN deep inside a run. The builders here front-load those
//! checks: `TrainConfig::builder().lr(..).build()` returns a typed
//! [`ConfigError`] instead. The `citation()`/`nell()`/`fast()` presets are
//! builder shortcuts, so every public construction path is validated.
//! Struct fields stay `pub` — struct-update syntax over a preset
//! (`TrainConfig { epochs: 5, ..TrainConfig::fast() }`) remains the idiom
//! for tests; `validate()` lets callers re-check such a hand-edited value.

use crate::trainer::{DivergencePolicy, LrSchedule, TrainConfig};

/// A rejected configuration value: which field, what it was, what the
/// builder expects. One uniform shape keeps the CLI's error path to a
/// single `Display` rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// Dotted field path (e.g. `train.lr`).
    pub field: &'static str,
    /// The offending value, stringified.
    pub value: String,
    /// Human description of the accepted range.
    pub expected: &'static str,
}

impl ConfigError {
    /// Build an error for `field` holding `value`.
    pub fn invalid(
        field: &'static str,
        value: impl std::fmt::Display,
        expected: &'static str,
    ) -> Self {
        Self {
            field,
            value: value.to_string(),
            expected,
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid config: {} = {} (expected {})",
            self.field, self.value, self.expected
        )
    }
}

impl std::error::Error for ConfigError {}

/// Check `cond` or report `field` = `value` out of range.
pub(crate) fn ensure(
    cond: bool,
    field: &'static str,
    value: impl std::fmt::Display,
    expected: &'static str,
) -> Result<(), ConfigError> {
    if cond {
        Ok(())
    } else {
        Err(ConfigError::invalid(field, value, expected))
    }
}

/// Validating builder for [`TrainConfig`]. Defaults to the citation-network
/// preset; every setter overrides one field and [`TrainConfigBuilder::build`]
/// rejects out-of-range combinations with a typed [`ConfigError`].
#[derive(Clone, Debug)]
pub struct TrainConfigBuilder {
    cfg: TrainConfig,
}

impl TrainConfigBuilder {
    pub(crate) fn new(cfg: TrainConfig) -> Self {
        Self { cfg }
    }

    /// Base learning rate (finite, > 0).
    pub fn lr(mut self, lr: f32) -> Self {
        self.cfg.lr = lr;
        self
    }

    /// L2 coefficient on decay-masked parameters (finite, ≥ 0).
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.cfg.weight_decay = weight_decay;
        self
    }

    /// Maximum epochs (≥ 1).
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Early-stopping patience (≥ 1).
    pub fn patience(mut self, patience: usize) -> Self {
        self.cfg.patience = patience;
        self
    }

    /// Never early-stop before this many epochs.
    pub fn min_epochs(mut self, min_epochs: usize) -> Self {
        self.cfg.min_epochs = min_epochs;
        self
    }

    /// Progress-report period (0 = quiet).
    pub fn log_every(mut self, log_every: usize) -> Self {
        self.cfg.log_every = log_every;
        self
    }

    /// Learning-rate schedule.
    pub fn lr_schedule(mut self, lr_schedule: LrSchedule) -> Self {
        self.cfg.lr_schedule = lr_schedule;
        self
    }

    /// Non-finite loss/gradient recovery policy.
    pub fn divergence(mut self, divergence: DivergencePolicy) -> Self {
        self.cfg.divergence = divergence;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<TrainConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl TrainConfig {
    /// A validating builder seeded with the [`TrainConfig::citation`]
    /// defaults.
    pub fn builder() -> TrainConfigBuilder {
        TrainConfigBuilder::new(TrainConfig::preset_citation())
    }

    /// A builder seeded with this configuration's current values.
    pub fn to_builder(&self) -> TrainConfigBuilder {
        TrainConfigBuilder::new(self.clone())
    }

    /// The checks behind [`TrainConfigBuilder::build`], callable on a
    /// hand-edited (struct-update) configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(
            self.lr.is_finite() && self.lr > 0.0,
            "train.lr",
            self.lr,
            "a finite learning rate > 0",
        )?;
        ensure(
            self.weight_decay.is_finite() && self.weight_decay >= 0.0,
            "train.weight_decay",
            self.weight_decay,
            "a finite weight decay >= 0",
        )?;
        ensure(self.epochs >= 1, "train.epochs", self.epochs, ">= 1 epoch")?;
        ensure(
            self.patience >= 1,
            "train.patience",
            self.patience,
            ">= 1 epoch of patience",
        )?;
        if let LrSchedule::CosineRestarts { period } = self.lr_schedule {
            ensure(
                period >= 1,
                "train.lr_schedule.period",
                period,
                "a restart period >= 1",
            )?;
        }
        let backoff = self.divergence.lr_backoff;
        ensure(
            backoff.is_finite() && backoff > 0.0 && backoff <= 1.0,
            "train.divergence.lr_backoff",
            backoff,
            "a backoff factor in (0, 1]",
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_pass_their_own_validation() {
        for cfg in [
            TrainConfig::citation(),
            TrainConfig::nell(),
            TrainConfig::fast(),
        ] {
            cfg.validate().expect("preset must validate");
        }
    }

    #[test]
    fn builder_overrides_fields() {
        let cfg = TrainConfig::builder()
            .lr(0.05)
            .epochs(7)
            .patience(3)
            .min_epochs(2)
            .lr_schedule(LrSchedule::CosineRestarts { period: 4 })
            .build()
            .expect("valid");
        assert_eq!(cfg.lr, 0.05);
        assert_eq!(cfg.epochs, 7);
        assert_eq!(cfg.lr_schedule, LrSchedule::CosineRestarts { period: 4 });
        // Untouched fields keep the citation defaults.
        assert_eq!(cfg.weight_decay, TrainConfig::citation().weight_decay);
    }

    #[test]
    fn nonsense_is_rejected_with_the_field_name() {
        let cases: Vec<(TrainConfigBuilder, &str)> = vec![
            (TrainConfig::builder().lr(-0.01), "train.lr"),
            (TrainConfig::builder().lr(f32::NAN), "train.lr"),
            (
                TrainConfig::builder().weight_decay(-1.0),
                "train.weight_decay",
            ),
            (TrainConfig::builder().epochs(0), "train.epochs"),
            (TrainConfig::builder().patience(0), "train.patience"),
            (
                TrainConfig::builder().lr_schedule(LrSchedule::CosineRestarts { period: 0 }),
                "train.lr_schedule.period",
            ),
            (
                TrainConfig::builder().divergence(DivergencePolicy {
                    max_retries: 3,
                    lr_backoff: 0.0,
                }),
                "train.divergence.lr_backoff",
            ),
        ];
        for (builder, field) in cases {
            let err = builder.build().expect_err("must be rejected");
            assert_eq!(err.field, field, "{err}");
            let msg = err.to_string();
            assert!(msg.contains(field), "{msg}");
        }
    }

    #[test]
    fn to_builder_roundtrips() {
        let cfg = TrainConfig::fast();
        let back = cfg.to_builder().build().expect("still valid");
        assert_eq!(back, cfg);
    }
}
