//! The redesigned prediction API.
//!
//! Inference used to be five free functions (`predict`, `predict_proba`,
//! `predict_logits`, ...) that only worked on a live model. The serving
//! stack needs one shape that a single model, a frozen ensemble and a
//! loaded artifact can all hide behind, so prediction is now a trait:
//! [`Predictor::predict_batch`] takes a [`PredictRequest`] (all nodes, an
//! explicit node subset, or — for graph-free MLP students — a batch of raw
//! feature vectors) and returns a [`Prediction`] or a typed
//! [`PredictError`] — no panics on empty ensembles or out-of-range ids.
//! [`ModelPredictor`] adapts any [`Model`] (via [`PredictorExt::predictor`]).
//! The old free functions are gone — every call site goes through the trait.
//!
//! Capability is part of the contract: node-sum predictors (ensemble,
//! v1/v2q artifacts) answer [`PredictRequest::ByNodes`]/[`PredictRequest::All`]
//! and reject [`PredictRequest::ByFeatures`] with
//! [`PredictError::FeaturesUnsupported`]; a distilled MLP artifact answers
//! `ByFeatures` (any row count, fixed feature dim) and rejects node requests
//! with [`PredictError::NodesUnsupported`] — it stores weight matrices, not
//! per-node distributions.

use rdd_tensor::{Matrix, Workspace};

use crate::context::GraphContext;
use crate::gcn::Model;

/// Why a prediction request could not be answered.
///
/// `Clone` on purpose: a serve engine that batches several requests into
/// one predictor call fans a single failure back out to every caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredictError {
    /// The predictor holds no members (e.g. an `Ensemble` before any
    /// `push`) — there is no distribution to read.
    EmptyEnsemble,
    /// A requested node id is outside the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes the predictor covers.
        num_nodes: usize,
    },
    /// A [`PredictRequest::ByFeatures`] request hit a predictor that only
    /// stores per-node distributions (ensemble, v1/v2q artifacts).
    FeaturesUnsupported {
        /// What rejected the request (e.g. `"node-sum artifact"`).
        predictor: &'static str,
    },
    /// A node-id request hit a feature-only predictor (a distilled MLP
    /// artifact stores weight matrices, not per-node rows).
    NodesUnsupported {
        /// What rejected the request (e.g. `"mlp artifact"`).
        predictor: &'static str,
    },
    /// A feature batch's column count does not match the model input dim.
    FeatureDimMismatch {
        /// Columns in the submitted feature rows.
        got: usize,
        /// The input dimensionality the predictor was trained with.
        expected: usize,
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::EmptyEnsemble => write!(f, "empty ensemble: no members to predict with"),
            PredictError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            PredictError::FeaturesUnsupported { predictor } => write!(
                f,
                "feature-vector requests unsupported by {predictor} (it stores per-node \
                 distributions; serve a distilled mlp artifact for feature inference)"
            ),
            PredictError::NodesUnsupported { predictor } => write!(
                f,
                "node-id requests unsupported by {predictor} (it stores weight matrices, \
                 not per-node rows; submit feature vectors instead)"
            ),
            PredictError::FeatureDimMismatch { got, expected } => write!(
                f,
                "feature dim mismatch: got {got} columns, model expects {expected}"
            ),
        }
    }
}

impl std::error::Error for PredictError {}

/// What to predict: every node, an explicit id subset, or a batch of raw
/// feature vectors (graph-free MLP predictors only).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum PredictRequest {
    /// Every node in graph order.
    #[default]
    All,
    /// Exactly these rows, in the given order (duplicates allowed).
    ByNodes(Vec<usize>),
    /// One prediction per row of the matrix; columns must match the
    /// predictor's input feature dim. Answered without any adjacency —
    /// only feature-capable predictors (distilled MLP artifacts) accept it.
    ByFeatures(Matrix),
}

impl PredictRequest {
    /// Request every node in graph order.
    pub fn all() -> Self {
        Self::All
    }

    /// Request an explicit node subset, answered in this order.
    pub fn nodes(nodes: Vec<usize>) -> Self {
        Self::ByNodes(nodes)
    }

    /// Request predictions for raw feature rows (no node ids, no graph).
    pub fn features(rows: Matrix) -> Self {
        Self::ByFeatures(rows)
    }

    /// Whether this is a feature-vector request ([`Self::ByFeatures`]).
    /// Feature rows are uncacheable by design (no stable identity to key
    /// on), so serve-side caches skip these requests.
    pub fn is_features(&self) -> bool {
        matches!(self, Self::ByFeatures(_))
    }
}

/// Which request shape a [`Prediction`] answers — surfaced on the serve
/// wire as the reply's `"kind"` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictionKind {
    /// Rows are node distributions; `nodes` holds graph node ids.
    Node,
    /// Rows answer submitted feature vectors; `nodes` holds the 0-based
    /// row indices of the request batch, not graph ids.
    Features,
}

impl PredictionKind {
    /// The wire-schema name (`"node"` / `"features"`).
    pub fn name(self) -> &'static str {
        match self {
            PredictionKind::Node => "node",
            PredictionKind::Features => "features",
        }
    }
}

/// A batch of answered predictions.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// For [`PredictionKind::Node`]: the node ids answered, aligned with
    /// `proba`/`pred` rows. For [`PredictionKind::Features`]: the 0-based
    /// row indices of the submitted feature batch.
    pub nodes: Vec<usize>,
    /// Per-row class distribution.
    pub proba: Matrix,
    /// Per-row argmax class.
    pub pred: Vec<usize>,
    /// Whether rows answer node ids or submitted feature vectors.
    pub kind: PredictionKind,
}

/// Anything that can answer batched prediction requests: a live model
/// ([`ModelPredictor`]), a frozen `Ensemble`, or a loaded serve artifact.
pub trait Predictor {
    /// Number of nodes this predictor covers.
    fn num_nodes(&self) -> usize;
    /// Number of classes in each distribution row.
    fn num_classes(&self) -> usize;
    /// Answer `req`, or explain why it cannot be answered.
    fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError>;

    /// Full-graph probabilities (convenience over [`Predictor::predict_batch`]).
    fn proba_all(&self) -> Result<Matrix, PredictError> {
        Ok(self.predict_batch(&PredictRequest::all())?.proba)
    }

    /// Full-graph hard predictions.
    fn predict_all(&self) -> Result<Vec<usize>, PredictError> {
        Ok(self.predict_batch(&PredictRequest::all())?.pred)
    }
}

impl<T: Predictor + ?Sized> Predictor for &T {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn num_classes(&self) -> usize {
        (**self).num_classes()
    }
    fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
        (**self).predict_batch(req)
    }
}

/// Slice `req` out of a full-graph probability matrix. Rows are copied
/// bitwise (subset gathers go through [`Matrix::take_rows_par`] so large
/// micro-batches ride the worker pool), which is what keeps served
/// responses bit-identical to the offline `proba`. [`PredictRequest::ByFeatures`]
/// is a typed [`PredictError::FeaturesUnsupported`]: stored node
/// distributions cannot answer unseen feature vectors.
pub fn gather_prediction(
    full_proba: &Matrix,
    req: &PredictRequest,
) -> Result<Prediction, PredictError> {
    let num_nodes = full_proba.rows();
    match req {
        PredictRequest::All => Ok(Prediction {
            nodes: (0..num_nodes).collect(),
            pred: full_proba.argmax_rows(),
            proba: full_proba.clone(),
            kind: PredictionKind::Node,
        }),
        PredictRequest::ByNodes(ids) => {
            if let Some(&node) = ids.iter().find(|&&id| id >= num_nodes) {
                return Err(PredictError::NodeOutOfRange { node, num_nodes });
            }
            let proba = full_proba.take_rows_par(ids);
            Ok(Prediction {
                nodes: ids.clone(),
                pred: proba.argmax_rows(),
                proba,
                kind: PredictionKind::Node,
            })
        }
        PredictRequest::ByFeatures(_) => Err(PredictError::FeaturesUnsupported {
            predictor: "node-sum predictor",
        }),
    }
}

/// Eval-mode logits, pooled through `ws`. The returned matrix escapes the
/// tape (cloned out); every intermediate activation is pooled.
pub(crate) fn eval_logits_in(model: &dyn Model, ctx: &GraphContext, ws: &Workspace) -> Matrix {
    let mut tape = rdd_tensor::Tape::with_workspace(ws);
    // Eval mode ignores the rng; a fixed seed keeps the signature simple.
    let mut rng = rdd_tensor::seeded_rng(0);
    let v = model.forward(&mut tape, ctx, false, &mut rng);
    tape.value(v).clone()
}

/// Eval-mode hard predictions read straight off the tape (no logits
/// clone) — the trainer's per-epoch validation hot path.
pub(crate) fn eval_pred_in(model: &dyn Model, ctx: &GraphContext, ws: &Workspace) -> Vec<usize> {
    let mut tape = rdd_tensor::Tape::with_workspace(ws);
    let mut rng = rdd_tensor::seeded_rng(0);
    let v = model.forward(&mut tape, ctx, false, &mut rng);
    tape.value(v).argmax_rows()
}

/// A workspace the predictor either owns or borrows from its caller.
enum Ws<'a> {
    Owned(Workspace),
    Shared(&'a Workspace),
}

/// [`Predictor`] over a live model: eval-mode forward passes against a
/// [`GraphContext`]. Build one with [`PredictorExt::predictor`] (owns a
/// throwaway workspace, matching the old free functions) or
/// [`PredictorExt::predictor_in`] (shares a caller's pool, matching the
/// old `*_in` variants).
pub struct ModelPredictor<'a> {
    model: &'a dyn Model,
    ctx: &'a GraphContext,
    ws: Ws<'a>,
}

impl<'a> ModelPredictor<'a> {
    /// Wrap `model` with a private non-pooling workspace.
    pub fn new(model: &'a dyn Model, ctx: &'a GraphContext) -> Self {
        Self {
            model,
            ctx,
            ws: Ws::Owned(Workspace::with_pooling(false)),
        }
    }

    /// Wrap `model` over a caller-owned buffer pool.
    pub fn with_workspace(model: &'a dyn Model, ctx: &'a GraphContext, ws: &'a Workspace) -> Self {
        Self {
            model,
            ctx,
            ws: Ws::Shared(ws),
        }
    }

    fn ws(&self) -> &Workspace {
        match &self.ws {
            Ws::Owned(ws) => ws,
            Ws::Shared(ws) => ws,
        }
    }

    /// Eval-mode logits for every node.
    pub fn logits(&self) -> Matrix {
        eval_logits_in(self.model, self.ctx, self.ws())
    }

    /// Eval-mode softmax probabilities for every node.
    pub fn proba(&self) -> Matrix {
        self.logits().softmax_rows()
    }

    /// Eval-mode hard predictions for every node.
    pub fn predict(&self) -> Vec<usize> {
        eval_pred_in(self.model, self.ctx, self.ws())
    }
}

impl Predictor for ModelPredictor<'_> {
    fn num_nodes(&self) -> usize {
        self.ctx.n
    }

    fn num_classes(&self) -> usize {
        self.ctx.num_classes
    }

    fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
        gather_prediction(&self.proba(), req)
    }
}

/// Ergonomic [`ModelPredictor`] constructors on every [`Model`]:
/// `model.predictor(&ctx).predict()`.
pub trait PredictorExt: Model {
    /// A predictor with its own throwaway workspace.
    fn predictor<'a>(&'a self, ctx: &'a GraphContext) -> ModelPredictor<'a>;
    /// A predictor over a caller-owned buffer pool.
    fn predictor_in<'a>(&'a self, ctx: &'a GraphContext, ws: &'a Workspace) -> ModelPredictor<'a>;
}

impl<M: Model> PredictorExt for M {
    fn predictor<'a>(&'a self, ctx: &'a GraphContext) -> ModelPredictor<'a> {
        ModelPredictor::new(self, ctx)
    }

    fn predictor_in<'a>(&'a self, ctx: &'a GraphContext, ws: &'a Workspace) -> ModelPredictor<'a> {
        ModelPredictor::with_workspace(self, ctx, ws)
    }
}

// The blanket impl above only covers sized models; trait objects (the
// trainer and cascade pass models as `&dyn Model`) get their own.
impl<'m> PredictorExt for dyn Model + 'm {
    fn predictor<'a>(&'a self, ctx: &'a GraphContext) -> ModelPredictor<'a> {
        ModelPredictor::new(self, ctx)
    }

    fn predictor_in<'a>(&'a self, ctx: &'a GraphContext, ws: &'a Workspace) -> ModelPredictor<'a> {
        ModelPredictor::with_workspace(self, ctx, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::{Gcn, GcnConfig};
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    fn proba4() -> Matrix {
        Matrix::from_vec(4, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4, 0.3, 0.7])
    }

    #[test]
    fn gather_all_clones_the_full_matrix() {
        let p = proba4();
        let out = gather_prediction(&p, &PredictRequest::all()).unwrap();
        assert_eq!(out.nodes, vec![0, 1, 2, 3]);
        assert_eq!(out.pred, vec![0, 1, 0, 1]);
        assert_eq!(out.proba.as_slice(), p.as_slice());
    }

    #[test]
    fn gather_subset_preserves_order_and_duplicates() {
        let p = proba4();
        let out = gather_prediction(&p, &PredictRequest::nodes(vec![3, 0, 3])).unwrap();
        assert_eq!(out.nodes, vec![3, 0, 3]);
        assert_eq!(out.pred, vec![1, 0, 1]);
        assert_eq!(out.proba.row(0), p.row(3));
        assert_eq!(out.proba.row(1), p.row(0));
        assert_eq!(out.proba.row(2), p.row(3));
    }

    #[test]
    fn gather_rejects_out_of_range_nodes() {
        let p = proba4();
        let err = gather_prediction(&p, &PredictRequest::nodes(vec![1, 9])).unwrap_err();
        assert_eq!(
            err,
            PredictError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            }
        );
        assert!(err.to_string().contains("node 9"));
    }

    #[test]
    fn gather_empty_subset_is_empty_prediction() {
        let p = proba4();
        let out = gather_prediction(&p, &PredictRequest::nodes(Vec::new())).unwrap();
        assert!(out.nodes.is_empty());
        assert!(out.pred.is_empty());
        assert_eq!(out.proba.shape(), (0, 2));
        assert_eq!(out.kind, PredictionKind::Node);
    }

    #[test]
    fn gather_rejects_feature_requests_with_typed_error() {
        let p = proba4();
        let req = PredictRequest::features(Matrix::zeros(2, 8));
        let err = gather_prediction(&p, &req).unwrap_err();
        assert!(matches!(err, PredictError::FeaturesUnsupported { .. }));
        assert!(err
            .to_string()
            .contains("feature-vector requests unsupported"));
    }

    #[test]
    fn new_error_variants_display_their_fields() {
        let e = PredictError::FeatureDimMismatch {
            got: 32,
            expected: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("32") && msg.contains("64"), "{msg}");
        let e = PredictError::NodesUnsupported {
            predictor: "mlp artifact",
        };
        assert!(e.to_string().contains("mlp artifact"));
    }

    #[test]
    fn request_helpers_classify_shapes() {
        assert!(!PredictRequest::all().is_features());
        assert!(!PredictRequest::nodes(vec![1]).is_features());
        assert!(PredictRequest::features(Matrix::zeros(1, 4)).is_features());
        assert_eq!(PredictionKind::Node.name(), "node");
        assert_eq!(PredictionKind::Features.name(), "features");
    }

    #[test]
    fn model_predictor_batch_matches_full_proba() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(7);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let p = model.predictor(&ctx);
        assert_eq!(p.num_nodes(), ctx.n);
        assert_eq!(p.num_classes(), ctx.num_classes);
        let full = p.proba();
        let batch = p
            .predict_batch(&PredictRequest::nodes(vec![5, 0, 17]))
            .unwrap();
        for (r, &node) in batch.nodes.iter().enumerate() {
            let same = batch
                .proba
                .row(r)
                .iter()
                .zip(full.row(node))
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "row {r} (node {node}) not bitwise equal");
        }
    }
}
