//! Evaluation metrics beyond plain accuracy: confusion matrix, per-class
//! precision/recall/F1 and expected calibration error (ECE). The paper
//! reports accuracy only; these are provided for downstream users and for
//! the reliability diagnostics experiment (a reliable node set should be
//! better *calibrated* than the full prediction set).

use rdd_tensor::Matrix;

/// Row-major confusion matrix: `counts[true][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Build over the nodes listed in `idx`.
    pub fn over(labels: &[usize], predictions: &[usize], idx: &[usize], k: usize) -> Self {
        assert_eq!(labels.len(), predictions.len());
        let mut counts = vec![0usize; k * k];
        for &i in idx {
            assert!(
                labels[i] < k && predictions[i] < k,
                "class out of range at node {i}"
            );
            counts[labels[i] * k + predictions[i]] += 1;
        }
        Self { k, counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// `counts[true][pred]`.
    pub fn get(&self, true_class: usize, pred_class: usize) -> usize {
        self.counts[true_class * self.k + pred_class]
    }

    /// Total evaluated nodes.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.k).map(|c| self.get(c, c)).sum();
        correct as f32 / total as f32
    }

    /// Precision of class `c` (0 when the class is never predicted).
    pub fn precision(&self, c: usize) -> f32 {
        let predicted: usize = (0..self.k).map(|t| self.get(t, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            self.get(c, c) as f32 / predicted as f32
        }
    }

    /// Recall of class `c` (0 when the class never occurs).
    pub fn recall(&self, c: usize) -> f32 {
        let actual: usize = (0..self.k).map(|p| self.get(c, p)).sum();
        if actual == 0 {
            0.0
        } else {
            self.get(c, c) as f32 / actual as f32
        }
    }

    /// F1 of class `c`.
    pub fn f1(&self, c: usize) -> f32 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class F1 scores.
    pub fn macro_f1(&self) -> f32 {
        (0..self.k).map(|c| self.f1(c)).sum::<f32>() / self.k as f32
    }
}

/// Expected calibration error over `bins` equal-width confidence bins:
/// `Σ_b (|b|/n) · |acc(b) − conf(b)|`, using the max softmax probability as
/// confidence.
pub fn expected_calibration_error(
    proba: &Matrix,
    labels: &[usize],
    idx: &[usize],
    bins: usize,
) -> f32 {
    assert!(bins >= 1);
    if idx.is_empty() {
        return 0.0;
    }
    let preds = proba.argmax_rows();
    let mut bin_correct = vec![0usize; bins];
    let mut bin_conf = vec![0f64; bins];
    let mut bin_count = vec![0usize; bins];
    for &i in idx {
        let conf = proba.row(i)[preds[i]];
        let b = ((conf * bins as f32) as usize).min(bins - 1);
        bin_count[b] += 1;
        bin_conf[b] += conf as f64;
        if preds[i] == labels[i] {
            bin_correct[b] += 1;
        }
    }
    let n = idx.len() as f64;
    let mut ece = 0.0f64;
    for b in 0..bins {
        if bin_count[b] == 0 {
            continue;
        }
        let acc = bin_correct[b] as f64 / bin_count[b] as f64;
        let conf = bin_conf[b] / bin_count[b] as f64;
        ece += (bin_count[b] as f64 / n) * (acc - conf).abs();
    }
    ece as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts() {
        let labels = vec![0, 0, 1, 1, 2];
        let preds = vec![0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::over(&labels, &preds, &[0, 1, 2, 3, 4], 3);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 1), 2);
        assert_eq!(cm.get(2, 0), 1);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 3.0 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn precision_recall_f1() {
        let labels = vec![0, 0, 1, 1];
        let preds = vec![0, 1, 1, 1];
        let cm = ConfusionMatrix::over(&labels, &preds, &[0, 1, 2, 3], 2);
        // Class 1: predicted 3 times, correct 2 -> precision 2/3; recall 1.
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-6);
        assert!((cm.recall(1) - 1.0).abs() < 1e-6);
        let f1 = cm.f1(1);
        assert!((f1 - 0.8).abs() < 1e-6);
    }

    #[test]
    fn degenerate_classes_are_zero_not_nan() {
        let labels = vec![0, 0];
        let preds = vec![0, 0];
        let cm = ConfusionMatrix::over(&labels, &preds, &[0, 1], 3);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
        assert!(cm.macro_f1().is_finite());
    }

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // Confidence 1.0 and always correct.
        let proba = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let labels = vec![0usize, 1];
        let ece = expected_calibration_error(&proba, &labels, &[0, 1], 10);
        assert!(ece < 1e-6);
    }

    #[test]
    fn overconfident_wrong_predictions_have_high_ece() {
        // Confidence ~1.0 but always wrong.
        let proba = Matrix::from_vec(2, 2, vec![0.99, 0.01, 0.01, 0.99]);
        let labels = vec![1usize, 0];
        let ece = expected_calibration_error(&proba, &labels, &[0, 1], 10);
        assert!(ece > 0.9, "ece {ece}");
    }

    #[test]
    fn empty_idx_is_zero() {
        let proba = Matrix::from_vec(1, 2, vec![0.5, 0.5]);
        assert_eq!(expected_calibration_error(&proba, &[0], &[], 10), 0.0);
        let cm = ConfusionMatrix::over(&[0], &[0], &[], 2);
        assert_eq!(cm.accuracy(), 0.0);
    }
}
