//! The shared training loop: Adam + cross-entropy + early stopping on
//! validation accuracy, with a hook for injecting extra loss terms (used by
//! BANs' KD loss and RDD's reliability losses).

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rdd_graph::{accuracy_over, Dataset};
use rdd_tensor::{Adam, Matrix, Tape, Var, Workspace};

use crate::context::GraphContext;
use crate::gcn::Model;

/// Epoch-stage spans: parents for the tensor kernels underneath them, so
/// a trace attributes `train.epoch → train.forward → spmm` with self-times
/// instead of flat double-counted totals. Near-free when tracing is off.
static SPAN_EPOCH: rdd_obs::SpanCell = rdd_obs::SpanCell::new("train.epoch");
static SPAN_FORWARD: rdd_obs::SpanCell = rdd_obs::SpanCell::new("train.forward");
static SPAN_BACKWARD: rdd_obs::SpanCell = rdd_obs::SpanCell::new("train.backward");
static SPAN_VALIDATE: rdd_obs::SpanCell = rdd_obs::SpanCell::new("train.validate");

/// Learning-rate schedule applied on top of `TrainConfig::lr`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum LrSchedule {
    /// Constant learning rate (the paper's setup).
    #[default]
    Constant,
    /// SGDR-style cosine annealing with warm restarts every `period`
    /// epochs (Loshchilov & Hutter 2016) — the schedule Snapshot Ensembles
    /// ride on: `lr(e) = lr · (1 + cos(π·(e mod period)/period)) / 2`.
    CosineRestarts {
        /// Epochs per restart cycle.
        period: usize,
    },
}

impl LrSchedule {
    /// The multiplier applied to the base learning rate at `epoch`.
    pub fn factor(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::CosineRestarts { period } => {
                let period = period.max(1);
                let phase = (epoch % period) as f32 / period as f32;
                0.5 * (1.0 + (std::f32::consts::PI * phase).cos())
            }
        }
    }

    /// Whether `epoch` is the last epoch of a restart cycle (snapshot
    /// point).
    pub fn is_cycle_end(&self, epoch: usize) -> bool {
        match *self {
            LrSchedule::Constant => false,
            LrSchedule::CosineRestarts { period } => (epoch + 1).is_multiple_of(period.max(1)),
        }
    }
}

/// How the training loop reacts to a non-finite loss or gradient.
///
/// The first retry of a failing epoch is a *free replay*: parameters are
/// untouched (the optimizer never stepped on non-finite gradients) and the
/// RNG is rewound, so a transient injected fault reproduces the clean run
/// bitwise. From the second retry on, parameters roll back to the
/// best-validation snapshot, the learning rate is scaled by `lr_backoff`
/// and the optimizer moments restart. When `max_retries` total rollbacks
/// are exhausted the loop stops and the report is flagged `diverged`; the
/// model is still left holding its best snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DivergencePolicy {
    /// Total rollbacks allowed per training run before giving up.
    pub max_retries: usize,
    /// Multiplier applied to the learning rate on each non-free retry.
    pub lr_backoff: f32,
}

impl Default for DivergencePolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

/// Optimization hyperparameters (paper §5.1 defaults).
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Base learning rate.
    pub lr: f32,
    /// L2 coefficient on decay-masked parameters.
    pub weight_decay: f32,
    /// Maximum epochs.
    pub epochs: usize,
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// Never early-stop before this many epochs (guards against a slow
    /// warmup being mistaken for convergence on hard datasets).
    pub min_epochs: usize,
    /// Report progress every `log_every` epochs via `eprintln!` (0 = quiet).
    pub log_every: usize,
    /// Learning-rate schedule (constant by default).
    pub lr_schedule: LrSchedule,
    /// Non-finite loss/gradient recovery policy.
    pub divergence: DivergencePolicy,
}

impl TrainConfig {
    /// The raw citation-network default values — the seed every builder
    /// starts from. Private so public construction stays validated.
    pub(crate) fn preset_citation() -> Self {
        Self {
            lr: 0.01,
            weight_decay: 5e-4,
            epochs: 500,
            patience: 20,
            min_epochs: 100,
            log_every: 0,
            lr_schedule: LrSchedule::Constant,
            divergence: DivergencePolicy::default(),
        }
    }

    /// Paper defaults for the citation networks: Adam(0.01), L2 5e-4,
    /// 500 epochs, patience 20. A [`TrainConfig::builder`] shortcut.
    pub fn citation() -> Self {
        Self::builder().build().expect("citation preset is valid")
    }

    /// Paper defaults for NELL: weaker L2 (1e-5).
    pub fn nell() -> Self {
        Self::builder()
            .weight_decay(1e-5)
            .build()
            .expect("nell preset is valid")
    }

    /// A short budget for tests.
    pub fn fast() -> Self {
        Self::builder()
            .epochs(60)
            .patience(15)
            .min_epochs(20)
            .build()
            .expect("fast preset is valid")
    }
}

/// Extra loss terms appended to the supervised objective each epoch. The
/// hook sees the tape (with the training-mode logits recorded), the logits
/// variable and the epoch number, and returns `(term, weight)` pairs.
pub type LossHook<'a> = dyn FnMut(&mut Tape, Var, usize) -> Vec<(Var, f32)> + 'a;

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Best validation accuracy seen (the restored model).
    pub best_val_acc: f32,
    /// Epoch index of the best validation accuracy.
    pub best_epoch: usize,
    /// Epochs actually executed before stopping.
    pub epochs_run: usize,
    /// Training loss at the last executed epoch.
    pub final_train_loss: f32,
    /// Wall-clock training time in seconds.
    pub wall_time_s: f64,
    /// Rollbacks taken by the divergence guard (0 for a clean run).
    pub rollbacks: usize,
    /// True when the guard exhausted its retry budget; the model holds its
    /// best snapshot, but callers should treat the run as unreliable.
    pub diverged: bool,
}

/// Train `model` in place with cross-entropy on the training split and
/// early stopping on the validation split. The model ends holding the
/// parameters of its best validation epoch.
///
/// Allocates one [`Workspace`] for the run; callers orchestrating several
/// runs (e.g. the RDD cascade) should share one via [`train_in`].
pub fn train(
    model: &mut dyn Model,
    ctx: &GraphContext,
    data: &Dataset,
    cfg: &TrainConfig,
    rng: &mut StdRng,
    extra_loss: Option<&mut LossHook>,
) -> TrainReport {
    train_in(model, ctx, data, cfg, rng, extra_loss, &Workspace::new())
}

/// [`train`] against a caller-owned buffer pool. Every epoch's tape —
/// training-mode forward, backward gradients and the eval-mode validation
/// forward — draws its buffers from `ws` and returns them on drop, so
/// epochs after the first run with near-zero allocator traffic.
#[allow(clippy::too_many_arguments)]
pub fn train_in(
    model: &mut dyn Model,
    ctx: &GraphContext,
    data: &Dataset,
    cfg: &TrainConfig,
    rng: &mut StdRng,
    mut extra_loss: Option<&mut LossHook>,
    ws: &Workspace,
) -> TrainReport {
    let start = Instant::now();
    let labels = Rc::new(data.labels.clone());
    let train_idx = Rc::new(data.train_idx.clone());
    let n_params = model.params().len();
    let mut opt = Adam::new(cfg.lr, cfg.weight_decay, model.decay_mask());

    let mut best_val = f32::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut best_params: Vec<Matrix> = model.params().to_vec();
    let mut since_best = 0usize;
    let mut last_loss = f32::NAN;
    let mut epochs_run = 0usize;

    let mut rollbacks = 0usize;
    let mut attempts_this_epoch = 0usize;
    let mut lr_scale = 1.0f32;
    let mut diverged = false;

    let mut epoch = 0usize;
    while epoch < cfg.epochs {
        // Stage spans: the guard drops at the end of the loop body (also on
        // `continue`/`break`), so retries count as separate epoch spans.
        let _span_epoch = SPAN_EPOCH.enter();
        epochs_run = epoch + 1;
        opt.set_lr(cfg.lr * lr_scale * cfg.lr_schedule.factor(epoch));
        // Snapshot the RNG so a failed attempt can replay this exact epoch
        // (dropout masks and all) instead of silently shifting the stream.
        let rng_checkpoint = rng.clone();
        // --- training step ---
        let span_forward = SPAN_FORWARD.enter();
        let mut tape = Tape::with_workspace(ws);
        let logits = model.forward(&mut tape, ctx, true, rng);
        let logp = tape.log_softmax(logits);
        let ce = tape.nll_masked(logp, Rc::clone(&labels), Rc::clone(&train_idx));
        let mut terms = vec![(ce, 1.0f32)];
        if let Some(hook) = extra_loss.as_deref_mut() {
            terms.extend(hook(&mut tape, logits, epoch));
        }
        let loss = tape.weighted_sum(&terms);
        last_loss = tape.scalar(loss);
        drop(span_forward);
        match rdd_obs::fault::fire("epoch") {
            Some(rdd_obs::FaultKind::NanLoss) => last_loss = f32::NAN,
            Some(rdd_obs::FaultKind::Panic) => panic!("injected fault: panic@epoch:{epoch}"),
            _ => {}
        }
        // --- divergence guard ---
        // Only back-propagate a finite loss; never step the optimizer on
        // non-finite gradients, so the parameters stay intact for a replay.
        let grads = if last_loss.is_finite() {
            let _span = SPAN_BACKWARD.enter();
            tape.backward(loss, n_params)
        } else {
            Vec::new()
        };
        let finite = last_loss.is_finite()
            && grads
                .iter()
                .flatten()
                .all(|g| g.as_slice().iter().all(|v| v.is_finite()));
        if !finite {
            drop(tape);
            ws.give_grads(grads);
            *rng = rng_checkpoint;
            if rollbacks >= cfg.divergence.max_retries {
                diverged = true;
                rdd_obs::emit_divergence(model.name(), epoch, rollbacks);
                break;
            }
            rollbacks += 1;
            attempts_this_epoch += 1;
            let reason = if last_loss.is_finite() {
                "nonfinite_grad"
            } else {
                "nonfinite_loss"
            };
            if attempts_this_epoch > 1 {
                // A same-state replay already failed once here: the fault is
                // not transient. Roll parameters back to the best snapshot,
                // decay the learning rate and restart the Adam moments.
                lr_scale *= cfg.divergence.lr_backoff;
                for (dst, src) in model.params_mut().iter_mut().zip(&best_params) {
                    dst.as_mut_slice().copy_from_slice(src.as_slice());
                }
                opt = Adam::new(cfg.lr, cfg.weight_decay, model.decay_mask());
            }
            rdd_obs::emit_rollback(model.name(), epoch, rollbacks, lr_scale, reason);
            continue;
        }
        attempts_this_epoch = 0;
        opt.step(model.params_mut(), &grads);
        ws.give_grads(grads);

        // --- validation (eval-mode forward) ---
        let span_validate = SPAN_VALIDATE.enter();
        let preds = crate::predictor::eval_pred_in(model, ctx, ws);
        let val_acc = accuracy_over(&data.labels, &preds, &data.val_idx);
        drop(span_validate);
        if rdd_obs::enabled() {
            // Epoch telemetry: the supervised term alone (`l1`) plus the
            // split accuracies; RDD's loss hook stages its own extra fields
            // (L2/Lreg/γ/|V_r|/...) which `emit` merges into the record.
            rdd_obs::EpochTelemetry {
                model: model.name(),
                epoch,
                loss: last_loss,
                l1: tape.scalar(ce),
                train_acc: accuracy_over(&data.labels, &preds, &data.train_idx),
                val_acc,
                test_acc: accuracy_over(&data.labels, &preds, &data.test_idx),
            }
            .emit();
        }
        if val_acc > best_val {
            best_val = val_acc;
            best_epoch = epoch;
            // Copy into the standing snapshot instead of reallocating it.
            for (dst, src) in best_params.iter_mut().zip(model.params()) {
                dst.as_mut_slice().copy_from_slice(src.as_slice());
            }
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= cfg.patience && epoch + 1 >= cfg.min_epochs {
                break;
            }
        }
        if cfg.log_every > 0 && epoch % cfg.log_every == 0 {
            eprintln!(
                "[{}] epoch {epoch:4} loss {last_loss:.4} val {val_acc:.4} best {best_val:.4}",
                model.name()
            );
        }
        epoch += 1;
    }

    // Restore best parameters.
    model.params_mut().clone_from_slice(&best_params);

    TrainReport {
        best_val_acc: best_val,
        best_epoch,
        epochs_run,
        final_train_loss: last_loss,
        wall_time_s: start.elapsed().as_secs_f64(),
        rollbacks,
        diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::{Gcn, GcnConfig};
    use crate::predictor::PredictorExt;
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    #[test]
    fn gcn_learns_tiny_dataset() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(42);
        let mut model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let report = train(
            &mut model,
            &ctx,
            &data,
            &TrainConfig::fast(),
            &mut rng,
            None,
        );
        let preds = model.predictor(&ctx).predict();
        let acc = data.test_accuracy(&preds);
        assert!(
            acc > 0.6,
            "GCN should beat chance by a wide margin, got {acc}"
        );
        assert!(report.best_val_acc > 0.6, "val acc {}", report.best_val_acc);
        assert!(report.epochs_run <= 60);
    }

    #[test]
    fn early_stopping_triggers() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(43);
        let mut model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let cfg = TrainConfig {
            epochs: 500,
            patience: 5,
            min_epochs: 0,
            ..TrainConfig::fast()
        };
        let report = train(&mut model, &ctx, &data, &cfg, &mut rng, None);
        assert!(report.epochs_run < 500, "patience should stop early");
    }

    #[test]
    fn extra_loss_hook_runs() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(44);
        let mut model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let mut calls = 0usize;
        {
            let mut hook = |tape: &mut Tape, logits: Var, _epoch: usize| {
                calls += 1;
                // An L2 pull of the logits toward zero.
                let target = Rc::new(Matrix::zeros(
                    tape.value(logits).rows(),
                    tape.value(logits).cols(),
                ));
                let idx = Rc::new(vec![0usize]);
                let l = tape.mse_rows(logits, target, idx);
                vec![(l, 0.01)]
            };
            let cfg = TrainConfig {
                epochs: 5,
                patience: 50,
                ..TrainConfig::fast()
            };
            train(&mut model, &ctx, &data, &cfg, &mut rng, Some(&mut hook));
        }
        assert_eq!(calls, 5);
    }

    /// A hook term weighted NaN: poisons the epoch's total loss while the
    /// underlying graph stays well-formed.
    fn poison_term(tape: &mut Tape, logits: Var) -> (Var, f32) {
        let target = Rc::new(Matrix::zeros(
            tape.value(logits).rows(),
            tape.value(logits).cols(),
        ));
        let idx = Rc::new(vec![0usize]);
        (tape.mse_rows(logits, target, idx), f32::NAN)
    }

    #[test]
    fn transient_nan_recovers_bitwise_identical_to_clean_run() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let cfg = TrainConfig {
            epochs: 8,
            patience: 50,
            ..TrainConfig::fast()
        };

        let mut rng = seeded_rng(47);
        let mut clean = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let clean_report = train(&mut clean, &ctx, &data, &cfg, &mut rng, None);

        // Same seed, but epoch 3's first attempt reports a NaN loss. The
        // guard must replay it from an identical RNG/parameter state, so the
        // run ends bitwise equal to the clean one.
        let mut rng = seeded_rng(47);
        let mut faulty = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let mut poisoned = false;
        let mut hook = |tape: &mut Tape, logits: Var, epoch: usize| {
            if epoch == 3 && !poisoned {
                poisoned = true;
                return vec![poison_term(tape, logits)];
            }
            Vec::new()
        };
        let faulty_report = train(&mut faulty, &ctx, &data, &cfg, &mut rng, Some(&mut hook));

        assert!(poisoned, "the poison hook never fired");
        assert_eq!(faulty_report.rollbacks, 1);
        assert!(!faulty_report.diverged);
        assert_eq!(clean_report.rollbacks, 0);
        assert_eq!(faulty_report.epochs_run, clean_report.epochs_run);
        assert_eq!(
            faulty_report.best_val_acc.to_bits(),
            clean_report.best_val_acc.to_bits()
        );
        assert_eq!(
            faulty_report.final_train_loss.to_bits(),
            clean_report.final_train_loss.to_bits()
        );
        for (a, b) in faulty.params().iter().zip(clean.params()) {
            let same = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "parameters diverged after transient-NaN recovery");
        }
    }

    #[test]
    fn persistent_nan_exhausts_retries_and_flags_divergence() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let cfg = TrainConfig {
            epochs: 30,
            patience: 50,
            divergence: DivergencePolicy {
                max_retries: 2,
                lr_backoff: 0.5,
            },
            ..TrainConfig::fast()
        };
        let mut rng = seeded_rng(48);
        let mut model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        // Every attempt of every epoch from 2 on is poisoned: the guard's
        // replay and backoff retries all fail and the budget runs out.
        let mut hook = |tape: &mut Tape, logits: Var, epoch: usize| {
            if epoch >= 2 {
                return vec![poison_term(tape, logits)];
            }
            Vec::new()
        };
        let report = train(&mut model, &ctx, &data, &cfg, &mut rng, Some(&mut hook));
        assert!(report.diverged);
        assert_eq!(report.rollbacks, 2);
        assert_eq!(report.epochs_run, 3, "stuck on epoch index 2");
        assert!(report.best_epoch < 2);
        // The model still holds its (finite) best snapshot.
        for m in model.params() {
            assert!(m.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(45);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let p = model.predictor(&ctx).proba();
        for i in 0..p.rows() {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn model_keeps_best_params() {
        // After training, eval accuracy must equal the best epoch's, not the
        // last epoch's (guard against forgetting to restore).
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(46);
        let mut model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let report = train(
            &mut model,
            &ctx,
            &data,
            &TrainConfig::fast(),
            &mut rng,
            None,
        );
        let preds = model.predictor(&ctx).predict();
        let val_acc = accuracy_over(&data.labels, &preds, &data.val_idx);
        assert!((val_acc - report.best_val_acc).abs() < 1e-6);
    }
}
