//! Shared per-dataset training context.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;
use rdd_graph::Dataset;
use rdd_tensor::CsrMatrix;

/// Everything constant across a training run: the renormalized adjacency Â
/// and the sparse feature matrix X, both shared into tapes by `Rc`.
#[derive(Clone)]
pub struct GraphContext {
    /// Renormalized propagation operator Â.
    pub a_hat: Rc<CsrMatrix>,
    /// Sparse node features X.
    pub features: Rc<CsrMatrix>,
    /// Number of nodes.
    pub n: usize,
    /// Feature dimensionality.
    pub in_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl GraphContext {
    /// Precompute the context of `dataset`.
    pub fn new(dataset: &Dataset) -> Self {
        Self {
            a_hat: Rc::new(dataset.graph.normalized_adjacency()),
            features: Rc::new(dataset.features.clone()),
            n: dataset.n(),
            in_dim: dataset.num_features(),
            num_classes: dataset.num_classes,
        }
    }

    /// Inverted dropout over the stored entries of the sparse feature
    /// matrix (the reference GCN also drops input features). Returns a new
    /// matrix with entries zeroed with probability `p` and survivors scaled
    /// by `1/(1-p)`.
    pub fn dropout_features(&self, p: f32, rng: &mut StdRng) -> Rc<CsrMatrix> {
        if p <= 0.0 {
            return Rc::clone(&self.features);
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        Rc::new(self.features.map_values(|_, _, v| {
            if rng.gen::<f32>() < keep {
                v * scale
            } else {
                0.0
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    #[test]
    fn context_shapes() {
        let d = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&d);
        assert_eq!(ctx.n, 300);
        assert_eq!(ctx.in_dim, 64);
        assert_eq!(ctx.num_classes, 3);
        assert_eq!(ctx.a_hat.shape(), (300, 300));
        assert_eq!(ctx.features.shape(), (300, 64));
    }

    #[test]
    fn feature_dropout_preserves_expectation() {
        let d = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&d);
        let mut rng = seeded_rng(5);
        let dropped = ctx.dropout_features(0.5, &mut rng);
        let orig_sum: f32 = ctx.features.row_sums().iter().sum();
        let drop_sum: f32 = dropped.row_sums().iter().sum();
        assert!(
            (drop_sum - orig_sum).abs() / orig_sum < 0.1,
            "sum {drop_sum} vs {orig_sum}"
        );
    }

    #[test]
    fn zero_dropout_shares_matrix() {
        let d = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&d);
        let mut rng = seeded_rng(5);
        let same = ctx.dropout_features(0.0, &mut rng);
        assert!(Rc::ptr_eq(&same, &ctx.features));
    }
}
