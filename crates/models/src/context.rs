//! Shared per-dataset training context.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;
use rdd_graph::Dataset;
use rdd_tensor::CsrMatrix;

/// Everything constant across a training run: the renormalized adjacency Â
/// and the sparse feature matrix X, both shared into tapes by `Rc`.
#[derive(Clone)]
pub struct GraphContext {
    /// Renormalized propagation operator Â.
    pub a_hat: Rc<CsrMatrix>,
    /// Sparse node features X.
    pub features: Rc<CsrMatrix>,
    /// Number of nodes.
    pub n: usize,
    /// Feature dimensionality.
    pub in_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl GraphContext {
    /// Precompute the context of `dataset`.
    pub fn new(dataset: &Dataset) -> Self {
        Self {
            a_hat: Rc::new(dataset.graph.normalized_adjacency()),
            features: Rc::new(dataset.features.clone()),
            n: dataset.n(),
            in_dim: dataset.num_features(),
            num_classes: dataset.num_classes,
        }
    }

    /// Inverted dropout over the stored entries of the sparse feature
    /// matrix (the reference GCN also drops input features). Entries are
    /// dropped with probability `p` and survivors scaled by `1/(1-p)`.
    ///
    /// Dropped entries are *compacted out* of the returned matrix rather
    /// than stored as explicit zeros, so the layer-1 spmm only walks the
    /// survivors — at `p = 0.5` that halves the single largest kernel of
    /// every training epoch (forward and backward). The rng is consulted
    /// once per stored entry in row-major order, the same stream a
    /// zero-keeping `map_values` implementation would draw.
    pub fn dropout_features(&self, p: f32, rng: &mut StdRng) -> Rc<CsrMatrix> {
        if p <= 0.0 {
            return Rc::clone(&self.features);
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let (n, d) = self.features.shape();
        let nnz = self.features.nnz();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        indptr.push(0);
        // Branchless compaction: write every entry, advance the cursor only
        // for survivors. The coin flips are ~50/50, so a conditional push
        // would mispredict on nearly half the nnz.
        let mut len = 0usize;
        for i in 0..n {
            let (cols, vals) = self.features.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                indices[len] = c;
                values[len] = v * scale;
                len += (rng.gen::<f32>() < keep) as usize;
            }
            indptr.push(len);
        }
        indices.truncate(len);
        values.truncate(len);
        Rc::new(CsrMatrix::from_csr(n, d, indptr, indices, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    #[test]
    fn context_shapes() {
        let d = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&d);
        assert_eq!(ctx.n, 300);
        assert_eq!(ctx.in_dim, 64);
        assert_eq!(ctx.num_classes, 3);
        assert_eq!(ctx.a_hat.shape(), (300, 300));
        assert_eq!(ctx.features.shape(), (300, 64));
    }

    #[test]
    fn feature_dropout_preserves_expectation() {
        let d = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&d);
        let mut rng = seeded_rng(5);
        let dropped = ctx.dropout_features(0.5, &mut rng);
        let orig_sum: f32 = ctx.features.row_sums().iter().sum();
        let drop_sum: f32 = dropped.row_sums().iter().sum();
        assert!(
            (drop_sum - orig_sum).abs() / orig_sum < 0.1,
            "sum {drop_sum} vs {orig_sum}"
        );
        // Dropped entries are compacted out, not stored as zeros.
        assert!(
            dropped.nnz() < ctx.features.nnz(),
            "dropout kept all {} entries",
            dropped.nnz()
        );
        let (n, _) = dropped.shape();
        for i in 0..n {
            let (_, vals) = dropped.row(i);
            assert!(vals.iter().all(|&v| v != 0.0), "explicit zero in row {i}");
        }
    }

    #[test]
    fn zero_dropout_shares_matrix() {
        let d = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&d);
        let mut rng = seeded_rng(5);
        let same = ctx.dropout_features(0.0, &mut rng);
        assert!(Rc::ptr_eq(&same, &ctx.features));
    }
}
