//! The graph-free MLP student (`MlpModel`) and its canonical dense
//! forward.
//!
//! The RDD ensemble — and every artifact exported from it so far — can
//! only answer for nodes it was trained on. Following the KRD/GLNN line,
//! the ensemble's knowledge is distilled into a plain MLP over raw node
//! features: 2–3 `Linear+ReLU` layers, no adjacency anywhere in the
//! forward. At serve time the student answers **arbitrary unseen feature
//! vectors** with a pair of matmuls per micro-batch.
//!
//! Two forwards live here on purpose:
//!
//! * [`MlpModel::forward`] (the [`Model`] trait) records the train-time
//!   pass on a [`Tape`] — sparse features, input dropout, hidden dropout —
//!   so the existing trainer, divergence guard and Workspace pooling apply
//!   unchanged.
//! * [`mlp_forward_features`] is the **canonical inference forward** over a
//!   dense row batch. The v3 serve artifact and every offline comparison
//!   call this one function, which is what makes served feature rows
//!   bitwise-identical to the offline student forward.

use rand::rngs::StdRng;
use rdd_tensor::{glorot_uniform, Matrix, Tape, Var};

use crate::context::GraphContext;
use crate::gcn::Model;

/// Architecture/regularization of the distilled MLP student.
#[derive(Clone, Debug, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths (1–2 entries give the paper-shaped 2–3 linear
    /// layers; more are allowed).
    pub hidden: Vec<usize>,
    /// Dropout applied between hidden layers while training.
    pub dropout: f32,
    /// Dropout applied to the sparse input features while training.
    pub input_dropout: f32,
}

impl MlpConfig {
    /// The default student: two hidden layers of 64 (three `Linear`s),
    /// moderate dropout — wide enough to absorb the ensemble's soft
    /// targets on the synthetic presets without graph access.
    pub fn student() -> Self {
        Self {
            hidden: vec![64, 64],
            dropout: 0.5,
            input_dropout: 0.2,
        }
    }
}

/// The distilled student: `logits = ... ReLU(X·W₀)·W₁ ... · W_L`, features
/// only. Behind the [`Model`] trait so `train_in`, the divergence guard and
/// Workspace pooling are reused verbatim by the distillation loop.
#[derive(Debug)]
pub struct MlpModel {
    cfg: MlpConfig,
    in_dim: usize,
    num_classes: usize,
    params: Vec<Matrix>,
}

impl MlpModel {
    /// Build with Glorot-initialized weights for `ctx`'s shapes.
    pub fn new(ctx: &GraphContext, cfg: MlpConfig, rng: &mut StdRng) -> Self {
        let mut dims = vec![ctx.in_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(ctx.num_classes);
        let params = dims
            .windows(2)
            .map(|w| glorot_uniform(w[0], w[1], rng))
            .collect();
        Self {
            cfg,
            in_dim: ctx.in_dim,
            num_classes: ctx.num_classes,
            params,
        }
    }

    /// Reassemble a student from already-trained weight matrices (the v3
    /// artifact load path). Validates the dimension chain.
    pub fn from_params(params: Vec<Matrix>, cfg: MlpConfig) -> Result<Self, String> {
        validate_layer_chain(&params)?;
        let in_dim = params[0].rows();
        let num_classes = params[params.len() - 1].cols();
        Ok(Self {
            cfg,
            in_dim,
            num_classes,
            params,
        })
    }

    /// The input feature dimensionality the student was trained with.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

impl Model for MlpModel {
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = if training {
            ctx.dropout_features(self.cfg.input_dropout, rng)
        } else {
            std::rc::Rc::clone(&ctx.features)
        };
        let w0 = tape.param_of(0, &self.params[0]);
        let mut h = tape.spmm(&x, w0, false);
        for (l, w) in self.params.iter().enumerate().skip(1) {
            h = tape.relu(h);
            if training {
                h = tape.dropout(h, self.cfg.dropout, rng);
            }
            let wv = tape.param_of(l, w);
            h = tape.matmul(h, wv);
        }
        h
    }

    fn params(&self) -> &[Matrix] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    fn decay_mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.params.len()];
        if !m.is_empty() {
            m[0] = true;
        }
        m
    }

    fn name(&self) -> &'static str {
        "DistilledMLP"
    }
}

/// Check that `params` forms a non-empty `d₀→d₁→…→k` linear chain.
pub fn validate_layer_chain(params: &[Matrix]) -> Result<(), String> {
    if params.is_empty() {
        return Err("mlp needs at least one weight matrix".into());
    }
    for (l, pair) in params.windows(2).enumerate() {
        if pair[0].cols() != pair[1].rows() {
            return Err(format!(
                "layer {l} outputs {} columns but layer {} expects {} rows",
                pair[0].cols(),
                l + 1,
                pair[1].rows()
            ));
        }
    }
    Ok(())
}

/// The canonical dense MLP forward: `rows · W₀`, then `ReLU → · W_l` per
/// remaining layer. No dropout, no graph, no randomness — a fixed sequence
/// of dense matmuls, so the same weights and the same rows always produce
/// bitwise-identical logits. Serve-side feature inference and every offline
/// comparison (ci's bitwise gate, artifact tests) go through this one
/// function.
///
/// # Panics
/// If `rows.cols() != params[0].rows()` or the layer chain is inconsistent
/// (callers validate first; the serve path maps the mismatch to
/// `PredictError::FeatureDimMismatch`).
pub fn mlp_forward_features(params: &[Matrix], rows: &Matrix) -> Matrix {
    assert!(!params.is_empty(), "mlp forward with no layers");
    assert_eq!(
        rows.cols(),
        params[0].rows(),
        "feature dim mismatch in mlp forward"
    );
    let mut h = rows.matmul(&params[0]);
    for w in &params[1..] {
        for v in h.as_mut_slice() {
            *v = v.max(0.0);
        }
        h = h.matmul(w);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorExt;
    use crate::trainer::{train, TrainConfig};
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    fn ctx() -> GraphContext {
        GraphContext::new(&SynthConfig::tiny().generate())
    }

    #[test]
    fn student_shapes_follow_config() {
        let ctx = ctx();
        let mut rng = seeded_rng(3);
        let m = MlpModel::new(&ctx, MlpConfig::student(), &mut rng);
        assert_eq!(m.params().len(), 3, "two hidden layers => three linears");
        assert_eq!(m.params()[0].shape(), (ctx.in_dim, 64));
        assert_eq!(m.params()[2].shape(), (64, ctx.num_classes));
        assert_eq!(m.in_dim(), ctx.in_dim);
        assert_eq!(m.num_classes(), ctx.num_classes);
        let mut tape = Tape::new();
        let v = m.forward(&mut tape, &ctx, false, &mut rng);
        assert_eq!(tape.value(v).shape(), (ctx.n, ctx.num_classes));
    }

    #[test]
    fn mlp_learns_tiny_dataset_supervised() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(11);
        let mut m = MlpModel::new(&ctx, MlpConfig::student(), &mut rng);
        train(&mut m, &ctx, &data, &TrainConfig::fast(), &mut rng, None);
        let acc = data.test_accuracy(&m.predictor(&ctx).predict());
        assert!(acc > 0.5, "feature-only MLP should beat chance, got {acc}");
    }

    #[test]
    fn dense_forward_is_deterministic_and_matches_eval_shapes() {
        let ctx = ctx();
        let mut rng = seeded_rng(5);
        let m = MlpModel::new(&ctx, MlpConfig::student(), &mut rng);
        let rows = Matrix::from_fn(7, ctx.in_dim, |i, j| ((i * 31 + j) % 13) as f32 * 0.1);
        let a = mlp_forward_features(m.params(), &rows);
        let b = mlp_forward_features(m.params(), &rows);
        assert_eq!(a.shape(), (7, ctx.num_classes));
        let bitwise = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(bitwise, "dense forward must be reproducible bitwise");
    }

    #[test]
    fn dense_forward_agrees_with_tape_forward_on_graph_rows() {
        // The train-time spmm path and the dense serve path accumulate in
        // different orders; they must agree numerically (not bitwise).
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(9);
        let m = MlpModel::new(&ctx, MlpConfig::student(), &mut rng);
        let tape_logits = {
            let mut tape = Tape::new();
            let v = m.forward(&mut tape, &ctx, false, &mut rng);
            tape.value(v).clone()
        };
        let dense_rows = Matrix::from_fn(ctx.n, ctx.in_dim, |i, j| {
            let (cols, vals) = ctx.features.row(i);
            cols.iter()
                .position(|&c| c as usize == j)
                .map_or(0.0, |k| vals[k])
        });
        let dense_logits = mlp_forward_features(m.params(), &dense_rows);
        assert!(
            tape_logits.max_abs_diff(&dense_logits) < 1e-4,
            "spmm and dense paths diverged: {}",
            tape_logits.max_abs_diff(&dense_logits)
        );
    }

    #[test]
    fn from_params_validates_the_chain() {
        let good = vec![Matrix::zeros(8, 4), Matrix::zeros(4, 3)];
        let m = MlpModel::from_params(good, MlpConfig::student()).unwrap();
        assert_eq!(m.in_dim(), 8);
        assert_eq!(m.num_classes(), 3);
        let bad = vec![Matrix::zeros(8, 4), Matrix::zeros(5, 3)];
        let err = MlpModel::from_params(bad, MlpConfig::student()).unwrap_err();
        assert!(err.contains("layer 0"), "{err}");
        assert!(validate_layer_chain(&[]).is_err());
    }
}
