//! GraphSAGE (Hamilton et al. 2017) with the mean aggregator and per-epoch
//! neighbor sampling — the scalable spatial-GCN family from the paper's
//! related work (§6). Usable standalone or as an RDD base model through
//! `RddTrainer::with_base_model`.
//!
//! Layer rule: `h'_i = ReLU(W_self·h_i + W_neigh·mean_{j∈S(i)} h_j)` where
//! `S(i)` is a fresh sample of up to `sample_size` neighbors each training
//! epoch (eval mode uses the full neighborhood).

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rdd_tensor::{glorot_uniform, CsrMatrix, Matrix, Tape, Var};

use crate::context::GraphContext;
use crate::gcn::Model;

/// GraphSAGE hyperparameters.
#[derive(Clone, Debug)]
pub struct SageConfig {
    /// Hidden width of the single hidden layer.
    pub hidden: usize,
    /// Neighbors sampled per node per layer during training.
    pub sample_size: usize,
    /// Dropout on hidden activations.
    pub dropout: f32,
    /// Dropout on the sparse input features.
    pub input_dropout: f32,
}

impl Default for SageConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            sample_size: 10,
            dropout: 0.5,
            input_dropout: 0.5,
        }
    }
}

/// Two-layer mean-aggregator GraphSAGE.
///
/// Parameter layout: `[W_self_1, W_neigh_1, W_self_2, W_neigh_2]`.
pub struct GraphSage {
    cfg: SageConfig,
    params: Vec<Matrix>,
    /// Full-neighborhood mean operator for eval mode.
    full_mean: Rc<CsrMatrix>,
    /// Neighbor lists for sampling (from the dataset's adjacency).
    neighbors: Vec<Vec<u32>>,
}

impl GraphSage {
    /// Build with Glorot-initialized weights; caches neighbor lists for sampling.
    pub fn new(ctx: &GraphContext, cfg: SageConfig, rng: &mut StdRng) -> Self {
        let params = vec![
            glorot_uniform(ctx.in_dim, cfg.hidden, rng),
            glorot_uniform(ctx.in_dim, cfg.hidden, rng),
            glorot_uniform(cfg.hidden, ctx.num_classes, rng),
            glorot_uniform(cfg.hidden, ctx.num_classes, rng),
        ];
        // Recover neighbor lists from Â's stored pattern minus self-loops.
        let n = ctx.n;
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, nbrs) in neighbors.iter_mut().enumerate() {
            let (cols, _) = ctx.a_hat.row(i);
            for &j in cols {
                if j as usize != i {
                    nbrs.push(j);
                }
            }
        }
        let full_mean = Rc::new(mean_operator(&neighbors, n, usize::MAX, None));
        Self {
            cfg,
            params,
            full_mean,
            neighbors,
        }
    }

    /// A fresh sampled mean operator (training mode).
    fn sampled_mean(&self, rng: &mut StdRng) -> Rc<CsrMatrix> {
        Rc::new(mean_operator(
            &self.neighbors,
            self.neighbors.len(),
            self.cfg.sample_size,
            Some(rng),
        ))
    }
}

/// Row-normalized neighbor-mean operator, optionally subsampling each
/// neighborhood to `cap` entries.
fn mean_operator(
    neighbors: &[Vec<u32>],
    n: usize,
    cap: usize,
    mut rng: Option<&mut StdRng>,
) -> CsrMatrix {
    let mut triplets = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    for (i, nbrs) in neighbors.iter().enumerate() {
        if nbrs.is_empty() {
            // Isolated node: fall back to itself so the mean is defined.
            triplets.push((i, i, 1.0));
            continue;
        }
        let chosen: &[u32] = if nbrs.len() <= cap {
            nbrs
        } else {
            let rng = rng.as_deref_mut().expect("sampling needs an rng");
            scratch.clear();
            scratch.extend_from_slice(nbrs);
            scratch.partial_shuffle(rng, cap);
            &scratch[..cap]
        };
        let w = 1.0 / chosen.len() as f32;
        for &j in chosen {
            triplets.push((i, j as usize, w));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

impl Model for GraphSage {
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = if training {
            ctx.dropout_features(self.cfg.input_dropout, rng)
        } else {
            Rc::clone(&ctx.features)
        };
        let mean_op = if training {
            self.sampled_mean(rng)
        } else {
            Rc::clone(&self.full_mean)
        };

        // Layer 1 (sparse input): W_self·x + W_neigh·mean(x).
        let w_self1 = tape.param_of(0, &self.params[0]);
        let w_neigh1 = tape.param_of(1, &self.params[1]);
        let self_part = tape.spmm(&x, w_self1, false);
        let xw = tape.spmm(&x, w_neigh1, false);
        let neigh_part = tape.spmm(&mean_op, xw, false);
        let mut h = tape.add(self_part, neigh_part);
        h = tape.relu(h);
        if training {
            h = tape.dropout(h, self.cfg.dropout, rng);
        }

        // Layer 2 (dense hidden).
        let w_self2 = tape.param_of(2, &self.params[2]);
        let w_neigh2 = tape.param_of(3, &self.params[3]);
        let self2 = tape.matmul(h, w_self2);
        let hw = tape.matmul(h, w_neigh2);
        let neigh2 = tape.spmm(&mean_op, hw, false);
        tape.add(self2, neigh2)
    }

    fn params(&self) -> &[Matrix] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    fn decay_mask(&self) -> Vec<bool> {
        vec![true, true, false, false]
    }

    fn name(&self) -> &'static str {
        "GraphSAGE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorExt;
    use crate::trainer::{train, TrainConfig};
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    #[test]
    fn sage_output_shape() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(1);
        let sage = GraphSage::new(&ctx, SageConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let v = sage.forward(&mut tape, &ctx, false, &mut rng);
        assert_eq!(tape.value(v).shape(), (300, 3));
        assert_eq!(sage.params().len(), 4);
    }

    #[test]
    fn mean_operator_rows_sum_to_one() {
        let neighbors = vec![vec![1u32, 2], vec![0], vec![]];
        let op = mean_operator(&neighbors, 3, usize::MAX, None);
        for (i, s) in op.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
        // Isolated node self-references.
        assert_eq!(op.get(2, 2), 1.0);
    }

    #[test]
    fn sampling_caps_neighborhoods() {
        let neighbors = vec![(1u32..21).collect::<Vec<_>>(); 1]
            .into_iter()
            .chain(std::iter::repeat_with(Vec::new).take(20))
            .collect::<Vec<_>>();
        let mut rng = seeded_rng(2);
        let op = mean_operator(&neighbors, 21, 5, Some(&mut rng));
        assert_eq!(op.row_nnz(0), 5, "capped to sample size");
        assert!((op.row(0).1.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sage_learns_tiny_dataset() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(3);
        let mut sage = GraphSage::new(&ctx, SageConfig::default(), &mut rng);
        let cfg = TrainConfig {
            epochs: 80,
            patience: 80,
            min_epochs: 0,
            ..TrainConfig::fast()
        };
        train(&mut sage, &ctx, &data, &cfg, &mut rng, None);
        let acc = data.test_accuracy(&sage.predictor(&ctx).predict());
        assert!(acc > 0.6, "GraphSAGE should learn, got {acc}");
    }

    #[test]
    fn sage_backprops_to_all_params() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(4);
        let sage = GraphSage::new(&ctx, SageConfig::default(), &mut rng);
        let mut tape = Tape::new();
        let logits = sage.forward(&mut tape, &ctx, true, &mut rng);
        let lp = tape.log_softmax(logits);
        let loss = tape.nll_masked(
            lp,
            Rc::new(data.labels.clone()),
            Rc::new(data.train_idx.clone()),
        );
        let grads = tape.backward(loss, 4);
        for (i, g) in grads.iter().enumerate() {
            assert!(
                g.as_ref().map(|g| g.frob_sq() > 0.0).unwrap_or(false),
                "param {i} got no gradient"
            );
        }
    }
}
