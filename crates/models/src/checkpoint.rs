//! Model checkpointing: save/load a model's parameter matrices as a plain
//! text file (one matrix per block, shape header + row-major values).
//!
//! Format, line-oriented:
//!
//! ```text
//! rdd-checkpoint v1
//! model <name>
//! params <count>
//! matrix <rows> <cols>
//! <v v v ...>          (one line per row)
//! ...
//! ```

use std::fs;
use std::io;
use std::path::Path;

use rdd_tensor::Matrix;

use crate::gcn::Model;

/// Checkpointing errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed checkpoint content.
    Parse(String),
    /// Loaded shapes don't match the target model's parameters.
    ShapeMismatch {
        /// Parameter slot index.
        slot: usize,
        /// Shape the model expects.
        expected: (usize, usize),
        /// Shape found in the checkpoint.
        found: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::Parse(m) => write!(f, "parse error: {m}"),
            CheckpointError::ShapeMismatch {
                slot,
                expected,
                found,
            } => write!(
                f,
                "parameter {slot}: checkpoint has {found:?}, model expects {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Durably replace `path` with `contents`: write to a unique temp sibling,
/// fsync it, rename over the target, then fsync the parent directory
/// (best effort) so the rename itself survives a crash. Readers never see
/// a half-written file — they see the old content or the new.
///
/// This is the `ckpt` fault-injection site: `RDD_FAULT=io_fail@ckpt:<n>`
/// makes the *n*-th write fail with an injected error before touching the
/// filesystem, and `panic@ckpt:<n>` panics there.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    match rdd_obs::fault::fire("ckpt") {
        Some(rdd_obs::FaultKind::IoFail) => {
            return Err(io::Error::other(format!(
                "injected fault: io_fail@ckpt writing {}",
                path.display()
            )));
        }
        Some(rdd_obs::FaultKind::Panic) => {
            panic!("injected fault: panic@ckpt writing {}", path.display())
        }
        _ => {}
    }
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("no file name in {}", path.display())))?;
    let tmp = dir.join(format!(
        ".{}.tmp{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let written = (|| {
        let mut f = fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, contents.as_bytes())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if written.is_err() {
        let _ = fs::remove_file(&tmp);
        return written;
    }
    // The rename is only durable once the directory entry is flushed too;
    // best effort (opening a directory for fsync is platform-dependent).
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Serialize raw matrices under a model `name` — the same format [`save`]
/// writes, usable for non-parameter payloads (ensemble outputs, sums).
pub fn save_matrices(path: &Path, name: &str, mats: &[&Matrix]) -> Result<(), CheckpointError> {
    let mut out = String::new();
    out.push_str("rdd-checkpoint v1\n");
    out.push_str(&format!("model {name}\n"));
    out.push_str(&format!("params {}\n", mats.len()));
    for p in mats {
        out.push_str(&format!("matrix {} {}\n", p.rows(), p.cols()));
        for i in 0..p.rows() {
            let row: Vec<String> = p.row(i).iter().map(|v| format!("{v}")).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
    }
    atomic_write(path, &out)?;
    Ok(())
}

/// Serialize `model`'s parameters to `path` (atomically; see
/// [`atomic_write`]).
pub fn save(model: &dyn Model, path: &Path) -> Result<(), CheckpointError> {
    let refs: Vec<&Matrix> = model.params().iter().collect();
    save_matrices(path, model.name(), &refs)
}

/// Parse a checkpoint file into raw matrices (model-agnostic).
pub fn load_matrices(path: &Path) -> Result<(String, Vec<Matrix>), CheckpointError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CheckpointError::Parse("empty file".into()))?;
    if header != "rdd-checkpoint v1" {
        return Err(CheckpointError::Parse(format!("bad header {header:?}")));
    }
    let model_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Parse("missing model line".into()))?;
    let model_name = model_line
        .strip_prefix("model ")
        .ok_or_else(|| CheckpointError::Parse(format!("bad model line {model_line:?}")))?
        .to_string();
    let count_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Parse("missing params line".into()))?;
    let count: usize = count_line
        .strip_prefix("params ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| CheckpointError::Parse(format!("bad params line {count_line:?}")))?;

    let mut matrices = Vec::with_capacity(count);
    for m in 0..count {
        let shape_line = lines
            .next()
            .ok_or_else(|| CheckpointError::Parse(format!("missing matrix header {m}")))?;
        let rest = shape_line
            .strip_prefix("matrix ")
            .ok_or_else(|| CheckpointError::Parse(format!("bad matrix header {shape_line:?}")))?;
        let mut it = rest.split_whitespace();
        let rows: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("bad rows".into()))?;
        let cols: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("bad cols".into()))?;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row_line = lines
                .next()
                .ok_or_else(|| CheckpointError::Parse(format!("matrix {m} missing row {r}")))?;
            for tok in row_line.split_whitespace() {
                let v: f32 = tok
                    .parse()
                    .map_err(|_| CheckpointError::Parse(format!("bad value {tok:?}")))?;
                if !v.is_finite() {
                    return Err(CheckpointError::Parse(format!(
                        "non-finite value {tok:?} in matrix {m} row {r}"
                    )));
                }
                data.push(v);
            }
            if data.len() != (r + 1) * cols {
                return Err(CheckpointError::Parse(format!(
                    "matrix {m} row {r} has wrong width"
                )));
            }
        }
        matrices.push(Matrix::from_vec(rows, cols, data));
    }
    for leftover in lines {
        if !leftover.trim().is_empty() {
            return Err(CheckpointError::Parse(format!(
                "trailing garbage after {count} matrices: {leftover:?}"
            )));
        }
    }
    Ok((model_name, matrices))
}

/// Load a checkpoint into an existing `model` (shapes must match).
pub fn load_into(model: &mut dyn Model, path: &Path) -> Result<(), CheckpointError> {
    let (_, matrices) = load_matrices(path)?;
    if matrices.len() != model.params().len() {
        return Err(CheckpointError::Parse(format!(
            "checkpoint has {} parameters, model expects {}",
            matrices.len(),
            model.params().len()
        )));
    }
    for (slot, (p, m)) in model.params().iter().zip(&matrices).enumerate() {
        if p.shape() != m.shape() {
            return Err(CheckpointError::ShapeMismatch {
                slot,
                expected: p.shape(),
                found: m.shape(),
            });
        }
    }
    model.params_mut().clone_from_slice(&matrices);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::GraphContext;
    use crate::gcn::{Gcn, GcnConfig};
    use crate::predictor::PredictorExt;
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rdd_ckpt_{name}_{}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(1);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let before = model.predictor(&ctx).logits();

        let path = tmp("roundtrip");
        save(&model, &path).expect("save");
        let mut restored = Gcn::new(&ctx, GcnConfig::citation(), &mut seeded_rng(999));
        load_into(&mut restored, &path).expect("load");
        let after = restored.predictor(&ctx).logits();
        assert!(
            before.max_abs_diff(&after) < 1e-5,
            "predictions changed after reload"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(2);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let path = tmp("mismatch");
        save(&model, &path).expect("save");
        // A wider hidden layer cannot absorb the checkpoint.
        let mut other = Gcn::new(
            &ctx,
            GcnConfig {
                hidden: vec![32],
                ..GcnConfig::citation()
            },
            &mut rng,
        );
        let err = load_into(&mut other, &path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ShapeMismatch { .. }),
            "got {err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_is_a_parse_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not a checkpoint").expect("write");
        let err = load_matrices(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)), "got {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut seeded_rng(4));
        let path = tmp("trailing");
        save(&model, &path).expect("save");
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("1.0 2.0 3.0\n");
        std::fs::write(&path, text).expect("write");
        let err = load_matrices(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)), "got {err}");
        assert!(err.to_string().contains("trailing"), "got {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_values_are_rejected() {
        for bad in ["NaN", "inf", "-inf"] {
            let path = tmp(&format!("nonfinite_{}", bad.trim_start_matches('-')));
            let text = format!("rdd-checkpoint v1\nmodel GCN\nparams 1\nmatrix 1 2\n0.5 {bad}\n");
            std::fs::write(&path, text).expect("write");
            let err = load_matrices(&path).unwrap_err();
            assert!(matches!(err, CheckpointError::Parse(_)), "got {err}");
            assert!(err.to_string().contains("non-finite"), "got {err}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("rdd_ckpt_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("target.txt");
        atomic_write(&path, "first\n").expect("write 1");
        atomic_write(&path, "second\n").expect("write 2");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_matrices(Path::new("/nonexistent/ckpt.txt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn metadata_preserved() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(3);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let path = tmp("meta");
        save(&model, &path).expect("save");
        let (name, mats) = load_matrices(&path).expect("load");
        assert_eq!(name, "GCN");
        assert_eq!(mats.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
