//! Model checkpointing: save/load a model's parameter matrices as a plain
//! text file (one matrix per block, shape header + row-major values).
//!
//! Format, line-oriented:
//!
//! ```text
//! rdd-checkpoint v1
//! model <name>
//! params <count>
//! matrix <rows> <cols>
//! <v v v ...>          (one line per row)
//! ...
//! ```

use std::fs;
use std::io;
use std::path::Path;

use rdd_tensor::Matrix;

use crate::gcn::Model;

/// Checkpointing errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed checkpoint content.
    Parse(String),
    /// Loaded shapes don't match the target model's parameters.
    ShapeMismatch {
        /// Parameter slot index.
        slot: usize,
        /// Shape the model expects.
        expected: (usize, usize),
        /// Shape found in the checkpoint.
        found: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::Parse(m) => write!(f, "parse error: {m}"),
            CheckpointError::ShapeMismatch {
                slot,
                expected,
                found,
            } => write!(
                f,
                "parameter {slot}: checkpoint has {found:?}, model expects {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialize `model`'s parameters to `path`.
pub fn save(model: &dyn Model, path: &Path) -> Result<(), CheckpointError> {
    let mut out = String::new();
    out.push_str("rdd-checkpoint v1\n");
    out.push_str(&format!("model {}\n", model.name()));
    out.push_str(&format!("params {}\n", model.params().len()));
    for p in model.params() {
        out.push_str(&format!("matrix {} {}\n", p.rows(), p.cols()));
        for i in 0..p.rows() {
            let row: Vec<String> = p.row(i).iter().map(|v| format!("{v}")).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
    }
    fs::write(path, out)?;
    Ok(())
}

/// Parse a checkpoint file into raw matrices (model-agnostic).
pub fn load_matrices(path: &Path) -> Result<(String, Vec<Matrix>), CheckpointError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| CheckpointError::Parse("empty file".into()))?;
    if header != "rdd-checkpoint v1" {
        return Err(CheckpointError::Parse(format!("bad header {header:?}")));
    }
    let model_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Parse("missing model line".into()))?;
    let model_name = model_line
        .strip_prefix("model ")
        .ok_or_else(|| CheckpointError::Parse(format!("bad model line {model_line:?}")))?
        .to_string();
    let count_line = lines
        .next()
        .ok_or_else(|| CheckpointError::Parse("missing params line".into()))?;
    let count: usize = count_line
        .strip_prefix("params ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| CheckpointError::Parse(format!("bad params line {count_line:?}")))?;

    let mut matrices = Vec::with_capacity(count);
    for m in 0..count {
        let shape_line = lines
            .next()
            .ok_or_else(|| CheckpointError::Parse(format!("missing matrix header {m}")))?;
        let rest = shape_line
            .strip_prefix("matrix ")
            .ok_or_else(|| CheckpointError::Parse(format!("bad matrix header {shape_line:?}")))?;
        let mut it = rest.split_whitespace();
        let rows: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("bad rows".into()))?;
        let cols: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("bad cols".into()))?;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row_line = lines
                .next()
                .ok_or_else(|| CheckpointError::Parse(format!("matrix {m} missing row {r}")))?;
            for tok in row_line.split_whitespace() {
                let v: f32 = tok
                    .parse()
                    .map_err(|_| CheckpointError::Parse(format!("bad value {tok:?}")))?;
                data.push(v);
            }
            if data.len() != (r + 1) * cols {
                return Err(CheckpointError::Parse(format!(
                    "matrix {m} row {r} has wrong width"
                )));
            }
        }
        matrices.push(Matrix::from_vec(rows, cols, data));
    }
    Ok((model_name, matrices))
}

/// Load a checkpoint into an existing `model` (shapes must match).
pub fn load_into(model: &mut dyn Model, path: &Path) -> Result<(), CheckpointError> {
    let (_, matrices) = load_matrices(path)?;
    if matrices.len() != model.params().len() {
        return Err(CheckpointError::Parse(format!(
            "checkpoint has {} parameters, model expects {}",
            matrices.len(),
            model.params().len()
        )));
    }
    for (slot, (p, m)) in model.params().iter().zip(&matrices).enumerate() {
        if p.shape() != m.shape() {
            return Err(CheckpointError::ShapeMismatch {
                slot,
                expected: p.shape(),
                found: m.shape(),
            });
        }
    }
    model.params_mut().clone_from_slice(&matrices);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::GraphContext;
    use crate::gcn::{Gcn, GcnConfig};
    use crate::trainer::predict_logits;
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rdd_ckpt_{name}_{}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(1);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let before = predict_logits(&model, &ctx);

        let path = tmp("roundtrip");
        save(&model, &path).expect("save");
        let mut restored = Gcn::new(&ctx, GcnConfig::citation(), &mut seeded_rng(999));
        load_into(&mut restored, &path).expect("load");
        let after = predict_logits(&restored, &ctx);
        assert!(
            before.max_abs_diff(&after) < 1e-5,
            "predictions changed after reload"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(2);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let path = tmp("mismatch");
        save(&model, &path).expect("save");
        // A wider hidden layer cannot absorb the checkpoint.
        let mut other = Gcn::new(
            &ctx,
            GcnConfig {
                hidden: vec![32],
                ..GcnConfig::citation()
            },
            &mut rng,
        );
        let err = load_into(&mut other, &path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ShapeMismatch { .. }),
            "got {err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_is_a_parse_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not a checkpoint").expect("write");
        let err = load_matrices(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)), "got {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_matrices(Path::new("/nonexistent/ckpt.txt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn metadata_preserved() {
        let data = SynthConfig::tiny().generate();
        let ctx = GraphContext::new(&data);
        let mut rng = seeded_rng(3);
        let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let path = tmp("meta");
        save(&model, &path).expect("save");
        let (name, mats) = load_matrices(&path).expect("load");
        assert_eq!(name, "GCN");
        assert_eq!(mats.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
