#![warn(missing_docs)]
//! # rdd-models
//!
//! The GCN model zoo and shared training loop for the RDD (SIGMOD 2020)
//! reproduction: plain GCN, the deep baselines the paper compares against
//! (ResGCN, DenseGCN, JK-Net), a graph-free MLP diagnostic, and a trainer
//! with Adam, dropout, early stopping and an extra-loss hook that the
//! distillation methods (BANs, RDD) plug their objectives into.
//!
//! ```
//! use rdd_graph::SynthConfig;
//! use rdd_models::{Gcn, GcnConfig, GraphContext, PredictorExt, TrainConfig};
//!
//! let data = SynthConfig::tiny().generate();
//! let ctx = GraphContext::new(&data);
//! let mut rng = rdd_tensor::seeded_rng(1);
//! let mut model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
//! rdd_models::train(&mut model, &ctx, &data, &TrainConfig::fast(), &mut rng, None);
//! let acc = data.test_accuracy(&model.predictor(&ctx).predict());
//! assert!(acc > 0.3);
//! ```

pub mod checkpoint;
pub mod config;
pub mod context;
pub mod gat;
pub mod gcn;
pub mod metrics;
pub mod mlp;
pub mod predictor;
pub mod sage;
pub mod trainer;

pub use checkpoint::{
    atomic_write, load_into, load_matrices, save as save_checkpoint, save_matrices, CheckpointError,
};
pub use config::{ConfigError, TrainConfigBuilder};
pub use context::GraphContext;
pub use gat::{Gat, GatConfig};
pub use gcn::{DenseGcn, Gcn, GcnConfig, JkNet, Mlp, Model, ResGcn};
pub use metrics::{expected_calibration_error, ConfusionMatrix};
pub use mlp::{mlp_forward_features, validate_layer_chain, MlpConfig, MlpModel};
pub use predictor::{
    gather_prediction, ModelPredictor, PredictError, PredictRequest, Prediction, PredictionKind,
    Predictor, PredictorExt,
};
pub use sage::{GraphSage, SageConfig};
pub use trainer::{
    train, train_in, DivergencePolicy, LossHook, LrSchedule, TrainConfig, TrainReport,
};
