//! The GCN model zoo: plain GCN plus the deep variants the paper compares
//! against (ResGCN, DenseGCN, JK-Net) and a graph-free MLP diagnostic.
//!
//! All models share the [`Model`] trait: a forward pass that records onto an
//! autodiff [`Tape`] and returns the `n x k` logits node. Layer 1 always
//! consumes the *sparse* feature matrix (bag-of-words features are ~1%
//! dense), which is where most of the CPU savings come from.

use std::rc::Rc;

use rand::rngs::StdRng;
use rdd_tensor::{glorot_uniform, CsrMatrix, Matrix, Tape, Var};

use crate::context::GraphContext;

/// A trainable node-classification model.
pub trait Model {
    /// Record the forward pass on `tape`, returning the logits variable
    /// (`n x num_classes`). `training` enables dropout.
    fn forward(&self, tape: &mut Tape, ctx: &GraphContext, training: bool, rng: &mut StdRng)
        -> Var;

    /// Current parameter values (aligned with the tape slots used by
    /// `forward`).
    fn params(&self) -> &[Matrix];

    /// Mutable parameter access (used by the optimizer).
    fn params_mut(&mut self) -> &mut [Matrix];

    /// Which parameter slots receive L2 weight decay. The reference GCN
    /// decays only the first layer.
    fn decay_mask(&self) -> Vec<bool>;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Hyperparameters shared by all zoo members.
#[derive(Clone, Debug, PartialEq)]
pub struct GcnConfig {
    /// Hidden layer widths; `[16]` is the paper's 2-layer citation setup.
    pub hidden: Vec<usize>,
    /// Dropout applied to hidden activations.
    pub dropout: f32,
    /// Dropout applied to the sparse input features.
    pub input_dropout: f32,
}

impl GcnConfig {
    /// The paper's citation-network setup: one hidden layer of 16 units.
    pub fn citation() -> Self {
        Self {
            hidden: vec![16],
            dropout: 0.5,
            input_dropout: 0.5,
        }
    }

    /// The paper's NELL setup: hidden width 100, lighter dropout.
    pub fn nell() -> Self {
        Self {
            hidden: vec![100],
            dropout: 0.2,
            input_dropout: 0.2,
        }
    }

    /// A deep stack of `layers` hidden layers of equal width (ResGCN).
    pub fn deep(width: usize, layers: usize, dropout: f32) -> Self {
        Self {
            hidden: vec![width; layers],
            dropout,
            input_dropout: dropout,
        }
    }
}

fn init_weights(dims: &[usize], seed_rng: &mut StdRng) -> Vec<Matrix> {
    dims.windows(2)
        .map(|w| glorot_uniform(w[0], w[1], seed_rng))
        .collect()
}

/// Drop the features (sparse) if training, otherwise share them.
fn input_features(
    ctx: &GraphContext,
    cfg: &GcnConfig,
    training: bool,
    rng: &mut StdRng,
) -> Rc<CsrMatrix> {
    if training {
        ctx.dropout_features(cfg.input_dropout, rng)
    } else {
        Rc::clone(&ctx.features)
    }
}

/// Plain multi-layer GCN (Kipf & Welling): `H_{l+1} = ReLU(Â H_l W_l)`.
pub struct Gcn {
    cfg: GcnConfig,
    params: Vec<Matrix>,
}

impl Gcn {
    /// Build with Glorot-initialized weights.
    pub fn new(ctx: &GraphContext, cfg: GcnConfig, rng: &mut StdRng) -> Self {
        let mut dims = vec![ctx.in_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(ctx.num_classes);
        let params = init_weights(&dims, rng);
        Self { cfg, params }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GcnConfig {
        &self.cfg
    }
}

impl Model for Gcn {
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = input_features(ctx, &self.cfg, training, rng);
        // Layer 1: Â (X W1) with sparse X.
        let w1 = tape.param_of(0, &self.params[0]);
        let xw = tape.spmm(&x, w1, false);
        let mut h = tape.spmm(&ctx.a_hat, xw, true);
        for (l, w) in self.params.iter().enumerate().skip(1) {
            h = tape.relu(h);
            if training {
                h = tape.dropout(h, self.cfg.dropout, rng);
            }
            let wv = tape.param_of(l, w);
            let hw = tape.matmul(h, wv);
            h = tape.spmm(&ctx.a_hat, hw, true);
        }
        h
    }

    fn params(&self) -> &[Matrix] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    fn decay_mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.params.len()];
        if !m.is_empty() {
            m[0] = true;
        }
        m
    }

    fn name(&self) -> &'static str {
        "GCN"
    }
}

/// GCN with residual connections between equal-width hidden layers
/// (`H_{l+1} = ReLU(Â H_l W_l) + H_l`), the deep baseline from Kipf &
/// Welling the paper labels "ResGCN".
pub struct ResGcn {
    cfg: GcnConfig,
    params: Vec<Matrix>,
}

impl ResGcn {
    /// Build with Glorot-initialized weights.
    pub fn new(ctx: &GraphContext, cfg: GcnConfig, rng: &mut StdRng) -> Self {
        assert!(
            cfg.hidden.windows(2).all(|w| w[0] == w[1]),
            "ResGCN needs equal hidden widths for residuals"
        );
        let mut dims = vec![ctx.in_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(ctx.num_classes);
        let params = init_weights(&dims, rng);
        Self { cfg, params }
    }
}

impl Model for ResGcn {
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = input_features(ctx, &self.cfg, training, rng);
        let w1 = tape.param_of(0, &self.params[0]);
        let xw = tape.spmm(&x, w1, false);
        let mut h = tape.spmm(&ctx.a_hat, xw, true);
        let last = self.params.len() - 1;
        for (l, w) in self.params.iter().enumerate().skip(1) {
            let prev = h;
            h = tape.relu(h);
            if training {
                h = tape.dropout(h, self.cfg.dropout, rng);
            }
            let wv = tape.param_of(l, w);
            let hw = tape.matmul(h, wv);
            h = tape.spmm(&ctx.a_hat, hw, true);
            // Residual between equal-width hidden layers only.
            if l < last && tape.value(prev).cols() == tape.value(h).cols() {
                h = tape.add(h, prev);
            }
        }
        h
    }

    fn params(&self) -> &[Matrix] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    fn decay_mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.params.len()];
        if !m.is_empty() {
            m[0] = true;
        }
        m
    }

    fn name(&self) -> &'static str {
        "ResGCN"
    }
}

/// Densely-connected GCN: each layer consumes the concatenation of all
/// previous layer outputs (Li et al., "Can GCNs go as deep as CNNs?").
pub struct DenseGcn {
    cfg: GcnConfig,
    params: Vec<Matrix>,
}

impl DenseGcn {
    /// Build with Glorot-initialized weights.
    pub fn new(ctx: &GraphContext, cfg: GcnConfig, rng: &mut StdRng) -> Self {
        // Layer l input width = in_dim-projection + sum of previous widths.
        let mut params = Vec::with_capacity(cfg.hidden.len() + 1);
        let mut acc_width = 0usize;
        let mut prev_in = ctx.in_dim;
        for &hdim in &cfg.hidden {
            params.push(glorot_uniform(prev_in, hdim, rng));
            acc_width += hdim;
            prev_in = acc_width;
        }
        params.push(glorot_uniform(prev_in.max(1), ctx.num_classes, rng));
        Self { cfg, params }
    }
}

impl Model for DenseGcn {
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = input_features(ctx, &self.cfg, training, rng);
        let mut outputs: Vec<Var> = Vec::with_capacity(self.cfg.hidden.len());
        let last = self.params.len() - 1;
        for (l, w) in self.params.iter().enumerate() {
            let wv = tape.param_of(l, w);
            let hw = if l == 0 {
                tape.spmm(&x, wv, false)
            } else {
                // Dense connectivity: concat of all previous outputs.
                let cat = if outputs.len() == 1 {
                    outputs[0]
                } else {
                    tape.concat_cols(&outputs)
                };
                let mut inp = tape.relu(cat);
                if training {
                    inp = tape.dropout(inp, self.cfg.dropout, rng);
                }
                tape.matmul(inp, wv)
            };
            let h = tape.spmm(&ctx.a_hat, hw, true);
            if l == last {
                return h;
            }
            outputs.push(h);
        }
        unreachable!("loop returns at the last layer")
    }

    fn params(&self) -> &[Matrix] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    fn decay_mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.params.len()];
        if !m.is_empty() {
            m[0] = true;
        }
        m
    }

    fn name(&self) -> &'static str {
        "DenseGCN"
    }
}

/// Jumping-Knowledge network with the concatenation aggregator (Xu et al.
/// 2018): all hidden layer outputs are concatenated into the final linear
/// classifier, the configuration the paper found best on citation networks.
pub struct JkNet {
    cfg: GcnConfig,
    params: Vec<Matrix>,
}

impl JkNet {
    /// Build with Glorot-initialized weights.
    pub fn new(ctx: &GraphContext, cfg: GcnConfig, rng: &mut StdRng) -> Self {
        assert!(
            !cfg.hidden.is_empty(),
            "JK-Net needs at least one hidden layer"
        );
        let mut params = Vec::with_capacity(cfg.hidden.len() + 1);
        let mut prev = ctx.in_dim;
        for &hdim in &cfg.hidden {
            params.push(glorot_uniform(prev, hdim, rng));
            prev = hdim;
        }
        let cat_width: usize = cfg.hidden.iter().sum();
        params.push(glorot_uniform(cat_width, ctx.num_classes, rng));
        Self { cfg, params }
    }
}

impl Model for JkNet {
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = input_features(ctx, &self.cfg, training, rng);
        let mut outputs: Vec<Var> = Vec::with_capacity(self.cfg.hidden.len());
        let mut h: Option<Var> = None;
        let n_hidden = self.cfg.hidden.len();
        for l in 0..n_hidden {
            let wv = tape.param_of(l, &self.params[l]);
            let hw = match h {
                None => tape.spmm(&x, wv, false),
                Some(prev) => {
                    let mut inp = tape.relu(prev);
                    if training {
                        inp = tape.dropout(inp, self.cfg.dropout, rng);
                    }
                    tape.matmul(inp, wv)
                }
            };
            let out = tape.spmm(&ctx.a_hat, hw, true);
            outputs.push(out);
            h = Some(out);
        }
        // Jumping knowledge: concat every layer's representation.
        let cat = if outputs.len() == 1 {
            outputs[0]
        } else {
            tape.concat_cols(&outputs)
        };
        let mut agg = tape.relu(cat);
        if training {
            agg = tape.dropout(agg, self.cfg.dropout, rng);
        }
        let w_out = tape.param_of(n_hidden, &self.params[n_hidden]);
        tape.matmul(agg, w_out)
    }

    fn params(&self) -> &[Matrix] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    fn decay_mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.params.len()];
        if !m.is_empty() {
            m[0] = true;
        }
        m
    }

    fn name(&self) -> &'static str {
        "JK-Net"
    }
}

/// Graph-free MLP over the node features — a diagnostic lower bound that
/// quantifies how much signal the generator puts in features vs structure.
pub struct Mlp {
    cfg: GcnConfig,
    params: Vec<Matrix>,
}

impl Mlp {
    /// Build with Glorot-initialized weights.
    pub fn new(ctx: &GraphContext, cfg: GcnConfig, rng: &mut StdRng) -> Self {
        let mut dims = vec![ctx.in_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(ctx.num_classes);
        let params = init_weights(&dims, rng);
        Self { cfg, params }
    }
}

impl Model for Mlp {
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &GraphContext,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let x = input_features(ctx, &self.cfg, training, rng);
        let w1 = tape.param_of(0, &self.params[0]);
        let mut h = tape.spmm(&x, w1, false);
        for (l, w) in self.params.iter().enumerate().skip(1) {
            h = tape.relu(h);
            if training {
                h = tape.dropout(h, self.cfg.dropout, rng);
            }
            let wv = tape.param_of(l, w);
            h = tape.matmul(h, wv);
        }
        h
    }

    fn params(&self) -> &[Matrix] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    fn decay_mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.params.len()];
        if !m.is_empty() {
            m[0] = true;
        }
        m
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;
    use rdd_tensor::seeded_rng;

    fn ctx() -> GraphContext {
        GraphContext::new(&SynthConfig::tiny().generate())
    }

    fn logits_shape(model: &dyn Model, ctx: &GraphContext) -> (usize, usize) {
        let mut tape = Tape::new();
        let mut rng = seeded_rng(0);
        let v = model.forward(&mut tape, ctx, false, &mut rng);
        tape.value(v).shape()
    }

    #[test]
    fn gcn_output_shape() {
        let c = ctx();
        let mut rng = seeded_rng(1);
        let m = Gcn::new(&c, GcnConfig::citation(), &mut rng);
        assert_eq!(logits_shape(&m, &c), (300, 3));
        assert_eq!(m.params().len(), 2);
    }

    #[test]
    fn deep_gcn_output_shapes() {
        let c = ctx();
        let mut rng = seeded_rng(2);
        let res = ResGcn::new(&c, GcnConfig::deep(16, 4, 0.5), &mut rng);
        assert_eq!(logits_shape(&res, &c), (300, 3));
        let dense = DenseGcn::new(&c, GcnConfig::deep(16, 4, 0.5), &mut rng);
        assert_eq!(logits_shape(&dense, &c), (300, 3));
        let jk = JkNet::new(&c, GcnConfig::deep(16, 4, 0.5), &mut rng);
        assert_eq!(logits_shape(&jk, &c), (300, 3));
        let mlp = Mlp::new(&c, GcnConfig::citation(), &mut rng);
        assert_eq!(logits_shape(&mlp, &c), (300, 3));
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode() {
        let c = ctx();
        let mut rng = seeded_rng(3);
        let m = Gcn::new(&c, GcnConfig::citation(), &mut rng);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let mut r1 = seeded_rng(10);
        let mut r2 = seeded_rng(20); // different rng must not matter in eval
        let v1 = m.forward(&mut t1, &c, false, &mut r1);
        let v2 = m.forward(&mut t2, &c, false, &mut r2);
        assert!(t1.value(v1).max_abs_diff(t2.value(v2)) < 1e-7);
    }

    #[test]
    fn training_forward_differs_from_eval() {
        let c = ctx();
        let mut rng = seeded_rng(4);
        let m = Gcn::new(&c, GcnConfig::citation(), &mut rng);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let mut r = seeded_rng(11);
        let v1 = m.forward(&mut t1, &c, true, &mut r);
        let v2 = m.forward(&mut t2, &c, false, &mut r);
        assert!(t1.value(v1).max_abs_diff(t2.value(v2)) > 1e-6);
    }

    #[test]
    fn all_models_backprop_to_all_params() {
        let c = ctx();
        let mut rng = seeded_rng(5);
        let models: Vec<Box<dyn Model>> = vec![
            Box::new(Gcn::new(&c, GcnConfig::citation(), &mut rng)),
            Box::new(ResGcn::new(&c, GcnConfig::deep(8, 3, 0.5), &mut rng)),
            Box::new(DenseGcn::new(&c, GcnConfig::deep(8, 3, 0.5), &mut rng)),
            Box::new(JkNet::new(&c, GcnConfig::deep(8, 3, 0.5), &mut rng)),
            Box::new(Mlp::new(&c, GcnConfig::citation(), &mut rng)),
        ];
        let labels = std::rc::Rc::new((0..c.n).map(|i| i % 3).collect::<Vec<_>>());
        let idx = std::rc::Rc::new((0..30).collect::<Vec<_>>());
        for m in &models {
            let mut tape = Tape::new();
            let mut r = seeded_rng(6);
            let logits = m.forward(&mut tape, &c, true, &mut r);
            let lp = tape.log_softmax(logits);
            let loss = tape.nll_masked(lp, Rc::clone(&labels), Rc::clone(&idx));
            let grads = tape.backward(loss, m.params().len());
            for (i, g) in grads.iter().enumerate() {
                let g = g
                    .as_ref()
                    .unwrap_or_else(|| panic!("{}: no grad for param {i}", m.name()));
                assert!(g.frob_sq() > 0.0, "{}: zero grad for param {i}", m.name());
                assert_eq!(g.shape(), m.params()[i].shape(), "{}: grad shape", m.name());
            }
        }
    }

    #[test]
    fn decay_mask_first_layer_only() {
        let c = ctx();
        let mut rng = seeded_rng(7);
        let m = Gcn::new(&c, GcnConfig::citation(), &mut rng);
        assert_eq!(m.decay_mask(), vec![true, false]);
    }
}
