//! Behavioural tests of the model zoo: the phenomena the paper discusses
//! (over-smoothing with depth, residual connections mitigating it, the
//! graph mattering at all) reproduced at test scale.

use rdd_graph::SynthConfig;
use rdd_models::{
    train, Gcn, GcnConfig, GraphContext, Mlp, Model, PredictorExt, ResGcn, TrainConfig,
};
use rdd_tensor::seeded_rng;

fn data() -> rdd_graph::Dataset {
    SynthConfig::tiny().generate()
}

fn fit(model: &mut dyn Model, data: &rdd_graph::Dataset, ctx: &GraphContext, seed: u64) -> f32 {
    let cfg = TrainConfig {
        epochs: 80,
        patience: 80,
        min_epochs: 0,
        ..TrainConfig::fast()
    };
    let mut rng = seeded_rng(seed);
    train(model, ctx, data, &cfg, &mut rng, None);
    data.test_accuracy(&model.predictor(ctx).predict())
}

/// The paper's premise: graph structure carries signal beyond features, so
/// GCN beats a feature-only MLP on a homophilous graph.
#[test]
fn gcn_beats_mlp_on_homophilous_graph() {
    let data = data();
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(1);
    let mut gcn = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    let mut mlp = Mlp::new(&ctx, GcnConfig::citation(), &mut rng);
    let gcn_acc = fit(&mut gcn, &data, &ctx, 2);
    let mlp_acc = fit(&mut mlp, &data, &ctx, 2);
    assert!(
        gcn_acc > mlp_acc,
        "GCN {gcn_acc} should beat MLP {mlp_acc} when structure is informative"
    );
}

/// §2.2: deep plain GCNs over-smooth — a 6-propagation-step GCN should not
/// beat the 2-layer one on a small citation-like graph.
#[test]
fn deep_gcn_oversmooths() {
    let data = data();
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(3);
    let mut shallow = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    let mut deep = Gcn::new(&ctx, GcnConfig::deep(16, 5, 0.5), &mut rng);
    let shallow_acc = fit(&mut shallow, &data, &ctx, 4);
    let deep_acc = fit(&mut deep, &data, &ctx, 4);
    assert!(
        shallow_acc >= deep_acc - 0.02,
        "6-layer GCN ({deep_acc}) unexpectedly dominated 2-layer ({shallow_acc})"
    );
}

/// Residual connections should keep a deep stack closer to (or above) the
/// plain deep GCN.
#[test]
fn residuals_mitigate_depth() {
    let data = data();
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(5);
    let mut deep_plain = Gcn::new(&ctx, GcnConfig::deep(16, 4, 0.5), &mut rng);
    let mut deep_res = ResGcn::new(&ctx, GcnConfig::deep(16, 4, 0.5), &mut rng);
    let plain_acc = fit(&mut deep_plain, &data, &ctx, 6);
    let res_acc = fit(&mut deep_res, &data, &ctx, 6);
    assert!(
        res_acc >= plain_acc - 0.05,
        "ResGCN ({res_acc}) collapsed far below plain deep GCN ({plain_acc})"
    );
}

/// Early stopping must never return a model worse on validation than one
/// from a shorter budget (best-epoch snapshotting).
#[test]
fn longer_budget_never_hurts_validation() {
    let data = data();
    let ctx = GraphContext::new(&data);
    let run = |epochs: usize| {
        let mut rng = seeded_rng(7);
        let mut m = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        let cfg = TrainConfig {
            epochs,
            patience: epochs,
            min_epochs: 0,
            ..TrainConfig::fast()
        };
        train(&mut m, &ctx, &data, &cfg, &mut rng, None).best_val_acc
    };
    let short = run(20);
    let long = run(120);
    assert!(
        long >= short - 1e-6,
        "longer training lowered best-val: {long} < {short}"
    );
}

/// The trainer's report accounting must be internally consistent.
#[test]
fn train_report_is_consistent() {
    let data = data();
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(8);
    let mut m = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    let cfg = TrainConfig {
        epochs: 40,
        patience: 10,
        min_epochs: 0,
        ..TrainConfig::fast()
    };
    let report = train(&mut m, &ctx, &data, &cfg, &mut rng, None);
    assert!(report.best_epoch < report.epochs_run);
    assert!(report.epochs_run <= 40);
    assert!(report.wall_time_s > 0.0);
    assert!(report.final_train_loss.is_finite());
}
