//! Checkpoint robustness: a corrupted checkpoint file — truncated at any
//! line or byte boundary, reshaped, or carrying non-finite payloads — must
//! come back as a typed [`CheckpointError`], never a panic or a silently
//! wrong model.

use std::path::PathBuf;

use rdd_graph::SynthConfig;
use rdd_models::{
    load_into, load_matrices, save_checkpoint, CheckpointError, Gcn, GcnConfig, GraphContext,
};
use rdd_tensor::seeded_rng;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rdd_corrupt_{name}_{}", std::process::id()))
}

/// A real saved checkpoint's text, for corruption sweeps. Each caller
/// passes its own `tag`: tests run concurrently and must not share the
/// scratch file.
fn checkpoint_text(tag: &str) -> String {
    let data = SynthConfig::tiny().generate();
    let ctx = GraphContext::new(&data);
    let model = Gcn::new(&ctx, GcnConfig::citation(), &mut seeded_rng(7));
    let path = tmp(tag);
    save_checkpoint(&model, &path).expect("save");
    let text = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    text
}

#[test]
fn every_line_truncation_is_rejected() {
    let text = checkpoint_text("src_line_trunc");
    let lines: Vec<&str> = text.lines().collect();
    let path = tmp("line_trunc");
    for keep in 0..lines.len() {
        let mut prefix = lines[..keep].join("\n");
        if keep > 0 {
            prefix.push('\n');
        }
        std::fs::write(&path, &prefix).expect("write");
        let res = load_matrices(&path);
        assert!(
            res.is_err(),
            "checkpoint truncated to {keep}/{} lines must not load",
            lines.len()
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn byte_truncations_never_panic_and_mostly_fail() {
    let text = checkpoint_text("src_byte_trunc");
    // Any cut strictly before the last data row's line leaves a matrix
    // missing rows or a malformed header — always an error. Cuts inside
    // the final line may still parse (a float losing trailing digits is
    // still a float); the invariant there is a clean Result, not a panic.
    let last_line_start = text.trim_end().rfind('\n').map_or(0, |i| i + 1);
    let path = tmp("byte_trunc");
    // Step through byte positions (stride keeps the sweep fast but still
    // crosses every line of the header and several row interiors).
    for cut in (1..text.len()).step_by(7).chain([text.len() - 1]) {
        if !text.is_char_boundary(cut) {
            continue;
        }
        std::fs::write(&path, &text[..cut]).expect("write");
        let res = load_matrices(&path);
        if cut < last_line_start {
            assert!(res.is_err(), "cut at byte {cut} must not load");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shape_mismatch_is_typed_not_a_panic() {
    let data = SynthConfig::tiny().generate();
    let ctx = GraphContext::new(&data);
    let model = Gcn::new(&ctx, GcnConfig::citation(), &mut seeded_rng(8));
    let path = tmp("shape");
    save_checkpoint(&model, &path).expect("save");
    let mut wider = Gcn::new(
        &ctx,
        GcnConfig {
            hidden: vec![48],
            ..GcnConfig::citation()
        },
        &mut seeded_rng(9),
    );
    let err = load_into(&mut wider, &path).expect_err("shape mismatch must fail");
    assert!(
        matches!(err, CheckpointError::ShapeMismatch { .. }),
        "got {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn nan_payload_is_rejected_with_location() {
    let text = checkpoint_text("src_nan");
    // Replace the first data token after the first matrix header with NaN.
    let header_end = text.find("matrix ").expect("matrix header");
    let row_start = text[header_end..].find('\n').expect("newline") + header_end + 1;
    let tok_end = text[row_start..].find([' ', '\n']).expect("row token") + row_start;
    let poisoned = format!("{}NaN{}", &text[..row_start], &text[tok_end..]);
    let path = tmp("nan_payload");
    std::fs::write(&path, poisoned).expect("write");
    let err = load_matrices(&path).expect_err("NaN payload must fail");
    let msg = err.to_string();
    assert!(msg.contains("non-finite"), "got: {msg}");
    assert!(msg.contains("matrix 0"), "names the matrix: {msg}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn garbage_appended_to_valid_checkpoint_is_rejected() {
    let mut text = checkpoint_text("src_appended");
    text.push_str("0.25 0.5\n");
    let path = tmp("appended");
    std::fs::write(&path, text).expect("write");
    let err = load_matrices(&path).expect_err("trailing rows must fail");
    assert!(err.to_string().contains("trailing"), "got {err}");
    let _ = std::fs::remove_file(&path);
}
