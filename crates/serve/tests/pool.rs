//! Multi-threaded serving semantics: a [`ServePool`] hammered by
//! concurrent clients must answer every request exactly once with rows
//! bitwise identical to the offline ensemble, keep generations straight
//! across a mid-stream hot swap (including cache-epoch isolation), and
//! shed expired requests as typed errors.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rdd_core::Ensemble;
use rdd_models::PredictRequest;
use rdd_serve::{Artifact, PoolConfig, ServeConfig, ServeError, ServePool, ServeReply};
use rdd_tensor::Matrix;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rdd_serve_pool_{name}_{}", std::process::id()))
}

/// A small deterministic ensemble and its frozen artifact. `tag` seeds the
/// logits so different tags produce different (distinguishable) artifacts.
fn fixture(name: &str, tag: usize) -> (Ensemble, Artifact) {
    let n = 24;
    let k = 4;
    let mut ensemble = Ensemble::new();
    for t in 0..3usize {
        let data: Vec<f32> = (0..n * k)
            .map(|i| (((i * 37 + t * 101 + tag * 53) % 29) as f32 / 7.0) - 2.0)
            .collect();
        let logits = Matrix::from_vec(n, k, data);
        ensemble.push(logits.softmax_rows(), logits, 0.5 + t as f32 * 0.3);
    }
    let path = tmp(name);
    rdd_serve::write_ensemble(&path, &ensemble, "fixture", "pool-test").expect("write");
    let artifact = Artifact::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    (ensemble, artifact)
}

fn assert_row_bitwise(served: &[f32], offline: &[f32], what: &str) {
    assert_eq!(served.len(), offline.len(), "{what} width");
    for (a, b) in served.iter().zip(offline) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}");
    }
}

/// N workers × M client threads: every request answered exactly once, no
/// duplicates, every row bitwise equal to the offline ensemble.
#[test]
fn hammer_answers_every_request_exactly_once_bitwise() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 100;
    let (ensemble, artifact) = fixture("hammer", 0);
    let offline = ensemble.proba();
    let n = offline.rows();

    let cfg = PoolConfig {
        serve: ServeConfig {
            batch_size: 8,
            max_delay_ms: 1,
            cache_capacity: n,
            queue_capacity: CLIENTS * PER_CLIENT,
        },
        workers: 4,
        ..PoolConfig::default()
    };
    let (tx, rx) = mpsc::channel();
    let pool = Arc::new(ServePool::new(artifact, cfg, 1, tx).expect("pool"));

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    let id = (c * PER_CLIENT + i) as u64;
                    let node = (c * 7 + i * 13) % n;
                    pool.submit(id, PredictRequest::nodes(vec![node]))
                        .expect("submit");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client");
    }

    let mut seen: HashMap<u64, ServeReply> = HashMap::new();
    for _ in 0..CLIENTS * PER_CLIENT {
        let reply = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("reply before timeout");
        assert!(seen.insert(reply.id, reply).is_none(), "duplicate reply id");
    }
    for (id, reply) in &seen {
        let c = (*id as usize) / PER_CLIENT;
        let i = (*id as usize) % PER_CLIENT;
        let node = (c * 7 + i * 13) % n;
        let p = reply.result.as_ref().expect("serve");
        assert_eq!(p.nodes, vec![node]);
        assert_row_bitwise(p.proba.row(0), offline.row(node), &format!("id {id}"));
    }
    let pool = Arc::into_inner(pool).expect("sole owner");
    let report = pool.shutdown();
    assert_eq!(report.stats.requests, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(report.stats.shed, 0);
    assert_eq!(report.stats.expired, 0);
    assert_eq!(
        report.workers.iter().map(|w| w.requests).sum::<u64>(),
        (CLIENTS * PER_CLIENT) as u64
    );
}

/// Hot swap mid-stream: rows served before the swap match artifact A
/// bitwise, rows after match artifact B — including re-requested nodes
/// that were cached under A's epoch (stale cache rows must not leak
/// across the swap).
#[test]
fn mid_stream_swap_isolates_generations_and_cache_epochs() {
    let (ensemble_a, artifact_a) = fixture("swap_a", 1);
    let (ensemble_b, artifact_b) = fixture("swap_b", 2);
    let offline_a = ensemble_a.proba();
    let offline_b = ensemble_b.proba();
    let n = offline_a.rows();
    // The two fixtures must actually disagree for the test to mean anything.
    assert!(
        (0..n).any(|i| offline_a.row(i)[0].to_bits() != offline_b.row(i)[0].to_bits()),
        "fixtures must differ"
    );

    let checksum_a = artifact_a.checksum();
    let checksum_b = artifact_b.checksum();
    let cfg = PoolConfig {
        serve: ServeConfig {
            batch_size: 4,
            max_delay_ms: 0,
            cache_capacity: n,
            queue_capacity: 256,
        },
        workers: 3,
        ..PoolConfig::default()
    };
    let (tx, rx) = mpsc::channel();
    let pool = ServePool::new(artifact_a, cfg, checksum_a, tx).expect("pool");

    // Wave 1: every node twice, so the cache is warm under A's epoch.
    let wave = 2 * n;
    for i in 0..wave {
        pool.submit(i as u64, PredictRequest::nodes(vec![i % n]))
            .expect("submit");
    }
    let mut replies_a = Vec::new();
    for _ in 0..wave {
        replies_a.push(rx.recv_timeout(Duration::from_secs(30)).expect("wave 1"));
    }
    // All wave-1 replies drained before the swap, so every one is gen 0.
    for reply in &replies_a {
        assert_eq!(reply.generation, 0, "pre-swap generation");
        let p = reply.result.as_ref().expect("serve");
        let node = (reply.id as usize) % n;
        assert_row_bitwise(p.proba.row(0), offline_a.row(node), "generation 0 row");
    }

    let generation = pool.swap(artifact_b, checksum_b);
    assert_eq!(generation, 1);
    assert_eq!(pool.generation(), 1);

    // Wave 2: the same nodes again. Workers refresh their generation before
    // every batch, so each reply must carry gen 1 and B's rows — a stale
    // A-epoch cache row would fail the bitwise check.
    for i in 0..wave {
        pool.submit((wave + i) as u64, PredictRequest::nodes(vec![i % n]))
            .expect("submit");
    }
    for _ in 0..wave {
        let reply = rx.recv_timeout(Duration::from_secs(30)).expect("wave 2");
        assert_eq!(reply.generation, 1, "post-swap generation");
        let p = reply.result.as_ref().expect("serve");
        let node = (reply.id as usize - wave) % n;
        assert_row_bitwise(p.proba.row(0), offline_b.row(node), "generation 1 row");
    }

    let report = pool.shutdown();
    assert_eq!(report.stats.requests, 2 * wave as u64);
    assert_eq!(report.stats.shed + report.stats.expired, 0, "zero drops");
}

/// Requests whose deadline passes before dispatch come back as typed
/// `Expired` errors and are counted, while live requests still serve.
#[test]
fn expired_requests_shed_typed_and_counted() {
    let (ensemble, artifact) = fixture("deadline", 3);
    let offline = ensemble.proba();
    let cfg = PoolConfig {
        serve: ServeConfig {
            batch_size: 4,
            max_delay_ms: 0,
            cache_capacity: 0,
            queue_capacity: 16,
        },
        workers: 2,
        ..PoolConfig::default()
    };
    let (tx, rx) = mpsc::channel();
    let pool = ServePool::new(artifact, cfg, 1, tx).expect("pool");

    // A deadline already in the past must be shed no matter how fast the
    // worker dispatches it.
    pool.submit_with_deadline(0, PredictRequest::nodes(vec![1]), Some(Instant::now()))
        .expect("admitted");
    pool.submit(1, PredictRequest::nodes(vec![2]))
        .expect("submit");

    let mut expired = 0;
    let mut served = 0;
    for _ in 0..2 {
        let reply = rx.recv_timeout(Duration::from_secs(30)).expect("reply");
        match (&reply.id, &reply.result) {
            (0, Err(ServeError::Expired { waited_ms })) => {
                assert!(*waited_ms >= 0.0);
                expired += 1;
            }
            (1, Ok(p)) => {
                assert_row_bitwise(p.proba.row(0), offline.row(2), "live request");
                served += 1;
            }
            (id, other) => panic!("unexpected reply id {id}: {other:?}"),
        }
    }
    assert_eq!((expired, served), (1, 1));
    let report = pool.shutdown();
    assert_eq!(report.stats.expired, 1);
    assert_eq!(report.stats.requests, 2);
}
