//! Sharded-artifact round trips over real ensembles: for a sweep of
//! (nodes, shards) splits, every node must route to exactly one shard and
//! the composed shard set must reproduce the unsharded artifact bitwise —
//! in v1 and v2q — while damaged shard sets fail loudly, not wrongly.

use std::path::PathBuf;

use rdd_core::Ensemble;
use rdd_models::{PredictRequest, Predictor};
use rdd_serve::{
    fnv1a64, write_sharded, AnyArtifact, Artifact, ArtifactFormat, ServeError, ShardedArtifact,
};
use rdd_tensor::Matrix;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdd_shard_rt_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn fixture_ensemble(n: usize, k: usize) -> Ensemble {
    let mut ensemble = Ensemble::new();
    for t in 0..2usize {
        let data: Vec<f32> = (0..n * k)
            .map(|i| (((i * 31 + t * 89) % 23) as f32 / 5.0) - 2.0)
            .collect();
        let logits = Matrix::from_vec(n, k, data);
        ensemble.push(logits.softmax_rows(), logits, 0.8 + t as f32 * 0.4);
    }
    ensemble
}

/// Write both the unsharded and the sharded export of one ensemble and
/// load them back.
fn exports(
    dir: &std::path::Path,
    ensemble: &Ensemble,
    format: ArtifactFormat,
    shards: usize,
) -> (Artifact, ShardedArtifact) {
    let single_path = dir.join("single.artifact");
    rdd_serve::write_ensemble_as(&single_path, ensemble, "fixture", "shard-test", format)
        .expect("write single");
    let single = Artifact::load(&single_path).expect("load single");
    let manifest_path = dir.join("sharded.artifact");
    write_sharded(
        &manifest_path,
        single.meta(),
        single.proba_sum(),
        single.logits_sum(),
        format,
        shards,
    )
    .expect("write sharded");
    let sharded = ShardedArtifact::load(&manifest_path).expect("load sharded");
    (single, sharded)
}

#[test]
fn every_split_routes_each_node_to_exactly_one_shard_and_composes_bitwise() {
    for &(n, shards) in &[(7usize, 2usize), (24, 3), (24, 5), (30, 7), (16, 16)] {
        let dir = tmp_dir(&format!("prop_{n}_{shards}"));
        let ensemble = fixture_ensemble(n, 4);
        for format in [ArtifactFormat::V1, ArtifactFormat::V2q] {
            let (single, sharded) = exports(&dir, &ensemble, format, shards);
            assert_eq!(sharded.num_shards(), shards);

            // Routing: walking the nodes in order must visit the shards
            // in order, restart the offset at each boundary, and advance
            // it by one inside a shard — together that pins every node to
            // exactly one (shard, row) slot with exact coverage.
            let mut per_shard = vec![0usize; shards];
            let mut prev: Option<(usize, usize)> = None;
            for node in 0..n {
                let (shard, offset) = sharded.route(node).expect("route");
                assert!(shard < shards, "n {n} shards {shards} node {node}");
                match prev {
                    None => assert_eq!((shard, offset), (0, 0), "node 0 opens shard 0"),
                    Some((ps, po)) if shard == ps => {
                        assert_eq!(offset, po + 1, "offset advances within a shard")
                    }
                    Some((ps, _)) => {
                        assert_eq!(shard, ps + 1, "shards visited in order");
                        assert_eq!(offset, 0, "new shard starts at offset 0");
                    }
                }
                prev = Some((shard, offset));
                per_shard[shard] += 1;
            }
            assert_eq!(per_shard.iter().sum::<usize>(), n);
            assert!(per_shard.iter().all(|&c| c > 0), "no empty shard");
            assert!(sharded.route(n).is_err(), "out of range rejected");

            // Whole graph plus a cross-boundary subset with duplicates:
            // composed rows bitwise equal to the single-file artifact.
            let requests = [
                PredictRequest::all(),
                PredictRequest::nodes(vec![0, n - 1, n / 2, 0, n - 1]),
            ];
            for req in &requests {
                let a = single.predict_batch(req).expect("single");
                let b = sharded.predict_batch(req).expect("sharded");
                assert_eq!(a.nodes, b.nodes);
                assert_eq!(a.pred, b.pred);
                for i in 0..a.proba.rows() {
                    for (x, y) in a.proba.row(i).iter().zip(b.proba.row(i)) {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "n {n} shards {shards} {format:?} row {i}"
                        );
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn any_artifact_sniffs_both_kinds_behind_one_loader() {
    let dir = tmp_dir("sniff");
    let ensemble = fixture_ensemble(12, 3);
    let (single, sharded) = exports(&dir, &ensemble, ArtifactFormat::V1, 3);

    let any_single = AnyArtifact::load(&dir.join("single.artifact")).expect("sniff single");
    let any_sharded = AnyArtifact::load(&dir.join("sharded.artifact")).expect("sniff sharded");
    assert_eq!(any_single.num_shards(), 1);
    assert_eq!(any_sharded.num_shards(), 3);
    assert_eq!(any_single.checksum(), single.checksum());
    assert_eq!(any_sharded.checksum(), sharded.checksum());

    // Composed sums from the sharded view are bitwise the single export's.
    let stacked = any_sharded
        .proba_sum()
        .expect("sharded artifacts hold sums");
    for (a, b) in single.proba_sum().as_slice().iter().zip(stacked.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "stacked proba_sum");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_or_tampered_shard_files_fail_loudly() {
    let dir = tmp_dir("damage");
    let ensemble = fixture_ensemble(15, 3);
    let (_, _) = exports(&dir, &ensemble, ArtifactFormat::V1, 3);
    let manifest = dir.join("sharded.artifact");

    // Tamper one shard file: its own checksum-first validation trips.
    let shard_path = dir.join("sharded.artifact.shard1");
    let pristine = std::fs::read_to_string(&shard_path).expect("read shard");
    std::fs::write(&shard_path, pristine.replace("matrix", "m4trix")).expect("tamper");
    match ShardedArtifact::load(&manifest) {
        Err(ServeError::Checksum { .. }) | Err(ServeError::Artifact(_)) => {}
        other => panic!("tampered shard must fail checksum-first, got {other:?}"),
    }
    std::fs::write(&shard_path, pristine).expect("restore");
    ShardedArtifact::load(&manifest).expect("restored set loads again");

    // Delete a shard file: composition must fail, not serve partial data.
    std::fs::remove_file(&shard_path).expect("remove");
    assert!(
        ShardedArtifact::load(&manifest).is_err(),
        "missing shard file must fail the load"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_structural_damage_is_rejected_after_rechecksum() {
    let dir = tmp_dir("structure");
    let ensemble = fixture_ensemble(12, 3);
    let (_, _) = exports(&dir, &ensemble, ArtifactFormat::V1, 3);
    let manifest = dir.join("sharded.artifact");
    let text = std::fs::read_to_string(&manifest).expect("read");

    // Drop the middle shard line and re-checksum so only the structural
    // validation (gap in node coverage) can catch it.
    let mutated: String = text
        .lines()
        .filter(|l| !l.starts_with("shard 1 "))
        .map(|l| format!("{l}\n"))
        .collect();
    let body_end = mutated.rfind("\nchecksum ").expect("checksum line") + 1;
    let checksum = fnv1a64(mutated[..body_end].as_bytes());
    let mutated = format!("{}checksum {checksum:016x}\n", &mutated[..body_end]);
    std::fs::write(&manifest, mutated).expect("write");
    match ShardedArtifact::load(&manifest) {
        Err(ServeError::Artifact(msg)) => {
            assert!(
                msg.contains("gap") || msg.contains("sequential") || msg.contains("shard"),
                "structural error should name the shard problem: {msg}"
            );
        }
        other => panic!("gapped manifest must be rejected, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
