//! End-to-end serving semantics: the full engine path over a real
//! artifact must hand back exactly the rows the offline ensemble computes
//! — bitwise, batched or not, cached or not — and predictor failures must
//! surface as typed errors.

use std::path::PathBuf;

use rdd_core::Ensemble;
use rdd_models::{PredictError, PredictRequest, Predictor};
use rdd_serve::{write_ensemble, Artifact, ServeConfig, ServeEngine, ServeError};
use rdd_tensor::Matrix;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rdd_serve_engine_{name}_{}", std::process::id()))
}

/// A small deterministic ensemble and its frozen artifact.
fn fixture(tag: &str) -> (Ensemble, Artifact) {
    let n = 24;
    let k = 4;
    let mut ensemble = Ensemble::new();
    for t in 0..3usize {
        let data: Vec<f32> = (0..n * k)
            .map(|i| (((i * 37 + t * 101) % 29) as f32 / 7.0) - 2.0)
            .collect();
        let logits = Matrix::from_vec(n, k, data);
        ensemble.push(logits.softmax_rows(), logits, 0.5 + t as f32 * 0.3);
    }
    let path = tmp(tag);
    write_ensemble(&path, &ensemble, "fixture", "unit-test").expect("write");
    let artifact = Artifact::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    (ensemble, artifact)
}

fn assert_row_bitwise(served: &[f32], offline: &[f32], what: &str) {
    assert_eq!(served.len(), offline.len(), "{what} width");
    for (a, b) in served.iter().zip(offline) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}");
    }
}

#[test]
fn served_rows_are_bitwise_equal_to_offline_ensemble_proba() {
    let (ensemble, artifact) = fixture("bitwise");
    let offline = ensemble.proba();
    let n = artifact.num_nodes();

    // Drive the engine through mixed single-node, multi-node, duplicate,
    // and whole-graph requests, twice (second pass hits the cache), and
    // compare every served row against the offline matrix.
    let cfg = ServeConfig {
        batch_size: 4,
        max_delay_ms: 0,
        cache_capacity: n,
        queue_capacity: 64,
    };
    let mut engine = ServeEngine::new(&artifact, cfg, artifact.checksum()).unwrap();
    let requests: Vec<PredictRequest> = vec![
        PredictRequest::nodes(vec![0]),
        PredictRequest::nodes(vec![5, 5, 2]),
        PredictRequest::all(),
        PredictRequest::nodes(vec![n - 1, 0]),
        PredictRequest::nodes(vec![3]),
        PredictRequest::nodes(vec![7, 11, 13, 7]),
    ];
    for pass in 0..2 {
        let mut replies = Vec::new();
        for (i, nodes) in requests.iter().enumerate() {
            if let Some(batch) = engine.submit(i as u64, nodes.clone()).unwrap() {
                replies.extend(batch);
            }
        }
        replies.extend(engine.flush());
        assert_eq!(replies.len(), requests.len(), "pass {pass}");
        for reply in &replies {
            let p = reply.result.as_ref().expect("serve");
            let want = &requests[reply.id as usize];
            match want {
                PredictRequest::ByNodes(ids) => assert_eq!(&p.nodes, ids),
                _ => assert_eq!(p.nodes.len(), n),
            }
            for (r, &node) in p.nodes.iter().enumerate() {
                assert_row_bitwise(
                    p.proba.row(r),
                    offline.row(node),
                    &format!("pass {pass} request {} node {node}", reply.id),
                );
                assert_eq!(
                    p.pred[r],
                    offline
                        .row(node)
                        .iter()
                        .enumerate()
                        .fold((0usize, f32::MIN), |acc, (j, &v)| if v > acc.1 {
                            (j, v)
                        } else {
                            acc
                        },)
                        .0
                );
            }
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.requests, 2 * requests.len() as u64);
    assert!(
        stats.cache_hits > 0,
        "second pass must be served from the cache"
    );
}

#[test]
fn cache_off_still_matches_offline_bitwise() {
    let (ensemble, artifact) = fixture("uncached");
    let offline = ensemble.proba();
    let cfg = ServeConfig {
        batch_size: 1,
        max_delay_ms: 0,
        cache_capacity: 0,
        queue_capacity: 8,
    };
    let mut engine = ServeEngine::new(&artifact, cfg, artifact.checksum()).unwrap();
    for node in [0usize, 9, 23, 9] {
        let replies = engine
            .submit(node as u64, PredictRequest::nodes(vec![node]))
            .unwrap()
            .expect("flush");
        let p = replies[0].result.as_ref().expect("serve");
        assert_row_bitwise(p.proba.row(0), offline.row(node), &format!("node {node}"));
    }
    assert_eq!(engine.stats().cache_hits, 0);
}

#[test]
fn empty_ensemble_is_a_typed_error_through_the_engine() {
    let empty = Ensemble::new();
    let mut engine =
        ServeEngine::new(&empty, ServeConfig::default(), 0).expect("engine over empty ensemble");
    // Whole-graph over an empty predictor: n = 0, so the request resolves
    // to zero nodes and succeeds vacuously...
    let replies = engine
        .submit(0, PredictRequest::all())
        .unwrap()
        .map_or_else(Vec::new, |r| r);
    let replies = if replies.is_empty() {
        engine.flush()
    } else {
        replies
    };
    assert!(
        replies[0].result.is_ok(),
        "empty node list serves trivially"
    );
    // ...but asking for any concrete node must fail with the typed error.
    engine.submit(1, PredictRequest::nodes(vec![0])).unwrap();
    let replies = engine.flush();
    match &replies[0].result {
        Err(ServeError::Predict(PredictError::NodeOutOfRange { num_nodes: 0, .. })) => {}
        other => panic!("expected NodeOutOfRange over empty ensemble, got {other:?}"),
    }
    // And the ensemble API itself reports emptiness as a typed error.
    assert_eq!(empty.try_proba().unwrap_err(), PredictError::EmptyEnsemble);
    assert_eq!(
        empty.try_predict().unwrap_err(),
        PredictError::EmptyEnsemble
    );
}
