//! Property tests for the int8 quantizer: across a randomized sweep of
//! row shapes, value ranges and degenerate cases, quantize→dequantize
//! drift must stay within half a quantization step per element, the
//! wire encoding must round-trip losslessly, and the SIMD dequant path
//! must match the scalar one within the documented FMA bound.

use rdd_serve::quant::{
    b64_decode, b64_encode, decode_qrow, dequantize_row, encode_qrow, max_ulp_diff, quantize_row,
    ulp_distance,
};
use rdd_tensor::{simd, Matrix, SimdTier};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn unit(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

#[test]
fn quantize_dequantize_drift_is_within_half_a_step() {
    let mut rng = Rng(0x51ce_0001);
    for case in 0..200 {
        let len = 1 + (rng.next_u64() % 64) as usize;
        // Vary center and span over orders of magnitude, including rows
        // much smaller and much larger than [0, 1].
        let center = (rng.unit() - 0.5) * 10f32.powi((case % 7) as i32 - 3);
        let span = rng.unit() * 10f32.powi((case % 5) as i32 - 2);
        let row: Vec<f32> = (0..len)
            .map(|_| center + (rng.unit() - 0.5) * span)
            .collect();

        let qr = quantize_row(&row);
        assert!(qr.scale >= 0.0 && qr.scale.is_finite(), "case {case}");
        assert!(qr.zero.is_finite(), "case {case}");

        let mut back = vec![0f32; len];
        dequantize_row(SimdTier::Scalar, &qr, &mut back);
        for (j, (a, b)) in row.iter().zip(&back).enumerate() {
            // Half a step of rounding, plus fp slack from the affine
            // arithmetic at the row's magnitude.
            let tol = qr.scale * 0.5 + (qr.zero.abs() + qr.scale * 255.0) * f32::EPSILON * 4.0;
            assert!(
                (a - b).abs() <= tol,
                "case {case} [{j}]: {a} vs {b} (scale {}, tol {tol})",
                qr.scale
            );
        }
    }
}

#[test]
fn wire_encoding_roundtrips_bitwise_for_any_row() {
    let mut rng = Rng(0x51ce_0002);
    for case in 0..100 {
        let len = (rng.next_u64() % 48) as usize;
        let qr = rdd_serve::quant::QuantRow {
            scale: rng.unit() * 0.1,
            zero: (rng.unit() - 0.5) * 8.0,
            q: (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect(),
        };
        let line = encode_qrow(&qr);
        let back = decode_qrow(&line, len).expect("decode");
        assert_eq!(back.scale.to_bits(), qr.scale.to_bits(), "case {case}");
        assert_eq!(back.zero.to_bits(), qr.zero.to_bits(), "case {case}");
        assert_eq!(back.q, qr.q, "case {case}");
        // And the raw base64 layer round-trips arbitrary bytes.
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        assert_eq!(b64_decode(&b64_encode(&bytes)).unwrap(), bytes);
    }
}

#[test]
fn degenerate_rows_quantize_exactly() {
    // Constant rows (scale 0) and two-value rows (codes at the endpoints)
    // must survive the round trip exactly, not just within tolerance.
    for value in [0.0f32, -1.5, 1e-8, 3.0e4] {
        let row = vec![value; 9];
        let qr = quantize_row(&row);
        assert_eq!(qr.scale, 0.0);
        let mut back = vec![0f32; 9];
        dequantize_row(SimdTier::Scalar, &qr, &mut back);
        assert_eq!(back, row, "constant {value}");
    }
    let row = [2.0f32, 7.1, 2.0, 7.1];
    let qr = quantize_row(&row);
    let mut back = [0f32; 4];
    dequantize_row(SimdTier::Scalar, &qr, &mut back);
    // min maps to code 0 → exactly `zero`; max maps to code 255 →
    // zero + scale·255, which re-rounds to within an ulp of max.
    assert_eq!(back[0], 2.0);
    assert!(ulp_distance(back[1], 7.1) <= 2, "{} vs 7.1", back[1]);
}

#[test]
fn simd_dequant_matches_scalar_within_fma_bound() {
    let mut rng = Rng(0x51ce_0003);
    let best = simd::detect_best();
    for case in 0..50 {
        let len = 1 + (rng.next_u64() % 64) as usize;
        let row: Vec<f32> = (0..len).map(|_| (rng.unit() - 0.5) * 6.0).collect();
        let qr = quantize_row(&row);
        let mut scalar_out = vec![0f32; len];
        let mut simd_out = vec![0f32; len];
        dequantize_row(SimdTier::Scalar, &qr, &mut scalar_out);
        dequantize_row(best, &qr, &mut simd_out);
        let bound = (qr.zero.abs() + qr.scale * 255.0) * f32::EPSILON;
        for (j, (a, b)) in scalar_out.iter().zip(&simd_out).enumerate() {
            assert!(
                (a - b).abs() <= bound,
                "case {case} [{j}]: {a} vs {b} (bound {bound})"
            );
        }
    }
}

#[test]
fn matrix_level_drift_measurement_is_consistent() {
    let mut rng = Rng(0x51ce_0004);
    let m = Matrix::from_vec(12, 7, (0..84).map(|_| (rng.unit() - 0.5) * 4.0).collect());
    let back = rdd_serve::quant::quantize_dequantize(&m);
    // The measured matrix-level ULP drift must bound every per-element
    // distance (it is the max), and quantizing the dequantized matrix
    // again must be idempotent to within one more half-step.
    let drift = max_ulp_diff(&m, &back);
    for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
        assert!(ulp_distance(*a, *b) <= drift);
    }
    let back2 = rdd_serve::quant::quantize_dequantize(&back);
    for (i, (a, b)) in back.as_slice().iter().zip(back2.as_slice()).enumerate() {
        let row = i / 7;
        let qr = quantize_row(back.row(row));
        assert!((a - b).abs() <= qr.scale * 0.5 + 1e-6, "[{i}] {a} vs {b}");
    }
}
