//! Artifact round-trip properties: exporting an ensemble (or a completed
//! crash-safe run directory) and loading the file back must reproduce the
//! ensemble's `proba()` **bitwise** — and any damage to the file
//! (corruption, truncation, version skew, inconsistent meta) must come
//! back as a typed [`ServeError`], never a panic or silently wrong rows.

use std::path::PathBuf;

use rdd_core::{distill_run, DistillConfig, Ensemble, RddConfig, RddTrainer, RunState};
use rdd_graph::SynthConfig;
use rdd_models::{mlp_forward_features, Model, PredictRequest, PredictionKind, Predictor};
use rdd_serve::quant::{encode_qrow, QuantRow};
use rdd_serve::{
    export_run, write_ensemble, write_ensemble_as, write_mlp_artifact, AnyArtifact, Artifact,
    ArtifactFormat, ArtifactMeta, MlpArtifact, ServeError,
};
use rdd_tensor::Matrix;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rdd_artifact_{name}_{}", std::process::id()))
}

/// Deterministic xorshift64 stream, so each sweep case is reproducible
/// without an RNG dependency.
struct Stream(u64);

impl Stream {
    fn next_f32(&mut self) -> f32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // Map onto [-4, 4): plenty of dynamic range for softmax logits.
        ((self.0 >> 40) as f32 / (1u64 << 24) as f32) * 8.0 - 4.0
    }

    fn matrix(&mut self, n: usize, k: usize) -> Matrix {
        let data = (0..n * k).map(|_| self.next_f32()).collect();
        Matrix::from_vec(n, k, data)
    }
}

/// A randomized ensemble: `members` softmaxed outputs with varied alphas.
fn random_ensemble(seed: u64, n: usize, k: usize, members: usize) -> Ensemble {
    let mut s = Stream(seed | 1);
    let mut ensemble = Ensemble::new();
    for t in 0..members {
        let logits = s.matrix(n, k);
        let alpha = 0.25 + 0.5 * (t as f32 + s.next_f32().abs());
        ensemble.push(logits.softmax_rows(), logits, alpha);
    }
    ensemble
}

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what} shape");
    for i in 0..a.rows() {
        for (x, y) in a.row(i).iter().zip(b.row(i)) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what} row {i}");
        }
    }
}

#[test]
fn export_load_roundtrip_is_bitwise_over_randomized_ensembles() {
    // A sweep over shapes, member counts, and seeds: the round-trip
    // invariant must hold for every case, not just one lucky ensemble.
    let cases: &[(u64, usize, usize, usize)] = &[
        (1, 5, 2, 1),
        (2, 12, 3, 2),
        (3, 12, 3, 5),
        (4, 30, 7, 3),
        (5, 1, 4, 2),
        (6, 64, 3, 4),
        (7, 9, 2, 7),
        (8, 17, 5, 1),
    ];
    for &(seed, n, k, members) in cases {
        let ensemble = random_ensemble(seed, n, k, members);
        let path = tmp(&format!("roundtrip_{seed}"));
        let checksum = write_ensemble(&path, &ensemble, "sweep", "unit-test").expect("write");
        let artifact = Artifact::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);

        assert_eq!(artifact.checksum(), checksum, "case {seed}");
        assert_eq!(artifact.meta().members, members, "case {seed}");
        assert_eq!(artifact.meta().dataset_n, n, "case {seed}");
        assert_eq!(artifact.num_nodes(), n, "case {seed}");
        assert_eq!(artifact.num_classes(), k, "case {seed}");
        assert_bitwise_equal(artifact.proba(), &ensemble.proba(), "proba");
        assert_bitwise_equal(
            artifact.proba_sum(),
            ensemble.proba_sum().expect("non-empty"),
            "proba_sum",
        );
        assert_bitwise_equal(
            artifact.logits_sum(),
            ensemble.logits_sum().expect("non-empty"),
            "logits_sum",
        );
        assert_bitwise_equal(&artifact.logits(), &ensemble.logits(), "logits");
        assert_eq!(artifact.predict_all().expect("predict"), ensemble.predict());
    }
}

#[test]
fn export_run_matches_the_live_ensemble_bitwise() {
    // End to end through the crash-safe path: train a tiny run, export the
    // directory, and require the artifact to serve the exact rows the live
    // run's ensemble holds.
    let dataset = SynthConfig::tiny().generate();
    let mut cfg = RddConfig::fast();
    cfg.num_base_models = 2;
    cfg.train.epochs = 12;
    cfg.train.min_epochs = 4;
    cfg.train.patience = 4;
    let dir = tmp("export_run_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = RddTrainer::new(cfg)
        .run_crash_safe(&dataset, &dir, "tiny")
        .expect("train");

    let path = tmp("export_run_artifact");
    let artifact = export_run(&dir, &path).expect("export");
    assert_eq!(
        artifact.meta().members,
        outcome.base_models.iter().filter(|m| !m.dropped).count()
    );
    assert_eq!(artifact.meta().dataset_name, "tiny");
    assert_eq!(artifact.meta().source, "tiny");
    assert_eq!(
        artifact.predict_all().expect("predict"),
        outcome.ensemble_pred,
        "served argmax must equal the live run's ensemble predictions"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn export_refuses_an_incomplete_run() {
    let dataset = SynthConfig::tiny().generate();
    let dir = tmp("incomplete_run");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = RddConfig::fast();
    let _state = rdd_core::RunState::create(&dir, "tiny", &cfg, &dataset).expect("create");
    let err = export_run(&dir, &tmp("incomplete_artifact")).unwrap_err();
    assert!(
        err.to_string().contains("not complete"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A valid artifact's text, for the corruption sweeps.
fn artifact_text(tag: &str) -> String {
    let ensemble = random_ensemble(0xA5, 8, 3, 2);
    let path = tmp(&format!("text_{tag}"));
    write_ensemble(&path, &ensemble, "sweep", "unit-test").expect("write");
    let text = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    text
}

fn load_text(tag: &str, text: &str) -> Result<Artifact, ServeError> {
    let path = tmp(&format!("load_{tag}"));
    std::fs::write(&path, text).expect("write corrupted");
    let out = Artifact::load(&path);
    let _ = std::fs::remove_file(&path);
    out
}

#[test]
fn every_single_byte_flip_is_caught() {
    let text = artifact_text("byteflip");
    let bytes = text.as_bytes();
    // Flip one bit of every byte in the checksummed body (stop before the
    // checksum line so the stored value itself stays parseable).
    let body_end = text.rfind("\nchecksum ").unwrap() + 1;
    for i in (0..body_end).step_by(7) {
        let mut corrupted = bytes.to_vec();
        corrupted[i] ^= 0x01;
        // Skip flips that break UTF-8 (read_to_string rejects those with
        // an Io error before the checksum ever runs).
        let Ok(s) = String::from_utf8(corrupted) else {
            continue;
        };
        match load_text("byteflip", &s) {
            Err(ServeError::Checksum { .. }) | Err(ServeError::Artifact(_)) => {}
            Ok(_) => panic!("byte {i} flip loaded cleanly"),
            Err(other) => panic!("byte {i} flip gave unexpected error {other}"),
        }
    }
}

#[test]
fn truncation_at_every_line_is_caught() {
    let text = artifact_text("trunc");
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let truncated = lines[..keep].join("\n");
        let err = load_text("trunc", &truncated).unwrap_err();
        match err {
            ServeError::Artifact(_) | ServeError::Checksum { .. } => {}
            other => panic!("truncation to {keep} lines gave unexpected error {other}"),
        }
    }
    // Truncating mid-line (dropping the final newline) must also fail.
    let err = load_text("trunc_tail", text.trim_end()).unwrap_err();
    assert!(matches!(err, ServeError::Artifact(_)), "got {err}");
}

/// A valid **v2q** artifact's text, for the quantized corruption sweeps.
fn artifact_text_v2q(tag: &str) -> String {
    let ensemble = random_ensemble(0xA5, 8, 3, 2);
    let path = tmp(&format!("text_v2q_{tag}"));
    write_ensemble_as(&path, &ensemble, "sweep", "unit-test", ArtifactFormat::V2q).expect("write");
    let text = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    text
}

#[test]
fn v2q_roundtrip_drift_is_bounded_by_half_a_quant_step() {
    let ensemble = random_ensemble(0x77, 20, 5, 3);
    let path = tmp("v2q_roundtrip");
    write_ensemble_as(&path, &ensemble, "sweep", "unit-test", ArtifactFormat::V2q).expect("write");
    let artifact = Artifact::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);

    assert_eq!(artifact.format(), ArtifactFormat::V2q);
    for (name, got, want) in [
        (
            "proba_sum",
            artifact.proba_sum(),
            ensemble.proba_sum().expect("non-empty"),
        ),
        (
            "logits_sum",
            artifact.logits_sum(),
            ensemble.logits_sum().expect("non-empty"),
        ),
    ] {
        for i in 0..want.rows() {
            let row = want.row(i);
            let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            // Affine int8: the dequantized value sits within half a step
            // of the original (plus fp slack in the affine arithmetic).
            let tol = (hi - lo) / 255.0 * 0.5 + 1e-5;
            for (j, (x, y)) in got.row(i).iter().zip(row).enumerate() {
                assert!(
                    (x - y).abs() <= tol,
                    "{name}[{i}][{j}]: {x} vs {y} (tol {tol})"
                );
            }
        }
    }
}

#[test]
fn v1_artifacts_still_load_and_report_their_format() {
    let ensemble = random_ensemble(0x31, 6, 4, 2);
    let path = tmp("v1_format");
    write_ensemble(&path, &ensemble, "sweep", "unit-test").expect("write");
    let artifact = Artifact::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(artifact.format(), ArtifactFormat::V1);
    assert_bitwise_equal(artifact.proba(), &ensemble.proba(), "proba");
}

#[test]
fn every_single_byte_flip_in_a_v2q_artifact_is_caught() {
    // Same sweep as the v1 test, over the quantized layout: header, meta,
    // qmatrix headers and base64 scale/zero/code lines are all covered.
    let text = artifact_text_v2q("byteflip");
    let bytes = text.as_bytes();
    let body_end = text.rfind("\nchecksum ").unwrap() + 1;
    for i in (0..body_end).step_by(7) {
        let mut corrupted = bytes.to_vec();
        corrupted[i] ^= 0x01;
        let Ok(s) = String::from_utf8(corrupted) else {
            continue;
        };
        match load_text("v2q_byteflip", &s) {
            Err(ServeError::Checksum { .. }) | Err(ServeError::Artifact(_)) => {}
            Ok(_) => panic!("byte {i} flip loaded cleanly"),
            Err(other) => panic!("byte {i} flip gave unexpected error {other}"),
        }
    }
}

#[test]
fn truncation_at_every_line_of_a_v2q_artifact_is_caught() {
    let text = artifact_text_v2q("trunc");
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let truncated = lines[..keep].join("\n");
        let err = load_text("v2q_trunc", &truncated).unwrap_err();
        match err {
            ServeError::Artifact(_) | ServeError::Checksum { .. } => {}
            other => panic!("truncation to {keep} lines gave unexpected error {other}"),
        }
    }
    let err = load_text("v2q_trunc_tail", text.trim_end()).unwrap_err();
    assert!(matches!(err, ServeError::Artifact(_)), "got {err}");
}

/// Replace the first base64 row after the first `qmatrix` header with a
/// hand-built row, re-checksum, and return the loader's verdict.
fn load_with_first_qrow(tag: &str, row: &QuantRow) -> Result<Artifact, ServeError> {
    let text = artifact_text_v2q(tag);
    let row_start = text.find("int8\n").unwrap() + "int8\n".len();
    let row_end = row_start + text[row_start..].find('\n').unwrap();
    let mutated = format!(
        "{}{}{}",
        &text[..row_start],
        encode_qrow(row),
        &text[row_end..]
    );
    let body_end = mutated.rfind("\nchecksum ").unwrap() + 1;
    let checksum = rdd_serve::fnv1a64(mutated[..body_end].as_bytes());
    load_text(
        tag,
        &format!("{}checksum {checksum:016x}\n", &mutated[..body_end]),
    )
}

#[test]
fn bad_quant_scales_and_zero_points_are_typed_errors() {
    let qrow = |scale: f32, zero: f32| QuantRow {
        scale,
        zero,
        q: vec![0, 128, 255],
    };
    // The first qmatrix row sits on line 4 (header, meta, qmatrix, row).
    for bad_scale in [f32::NAN, f32::INFINITY, -0.5] {
        match load_with_first_qrow("bad_scale", &qrow(bad_scale, 0.0)).unwrap_err() {
            ServeError::QuantScale { line, value } => {
                assert_eq!(line, 4);
                assert_eq!(value.to_bits(), bad_scale.to_bits());
            }
            other => panic!("scale {bad_scale}: expected QuantScale, got {other}"),
        }
    }
    for bad_zero in [f32::NAN, f32::NEG_INFINITY] {
        match load_with_first_qrow("bad_zero", &qrow(0.01, bad_zero)).unwrap_err() {
            ServeError::QuantZeroPoint { line, value } => {
                assert_eq!(line, 4);
                assert_eq!(value.to_bits(), bad_zero.to_bits());
            }
            other => panic!("zero {bad_zero}: expected QuantZeroPoint, got {other}"),
        }
    }
    // A zero scale is the legal constant-row encoding, not an error.
    let artifact = load_with_first_qrow("zero_scale", &qrow(0.0, 0.125)).expect("constant row");
    assert_eq!(artifact.proba_sum().row(0), &[0.125, 0.125, 0.125]);
}

#[test]
fn wrong_version_is_a_typed_error() {
    let text = artifact_text("version");
    let bumped = text.replacen("rdd-artifact v1", "rdd-artifact v9", 1);
    // Re-checksum the edited body so version skew — not corruption — is
    // what the loader sees.
    let body_end = bumped.rfind("\nchecksum ").unwrap() + 1;
    let checksum = rdd_serve::fnv1a64(bumped[..body_end].as_bytes());
    let fixed = format!("{}checksum {checksum:016x}\n", &bumped[..body_end]);
    match load_text("version", &fixed).unwrap_err() {
        ServeError::WrongVersion { found } => assert_eq!(found, "rdd-artifact v9"),
        other => panic!("expected WrongVersion, got {other}"),
    }
}

/// A valid v3 (mlp) meta/params pair for the student round-trip sweeps.
/// `alpha_total` must be the exact fold of the alphas or `validate()`
/// rejects the meta before anything is written.
fn mlp_fixture(seed: u64, in_dim: usize, hidden: usize, k: usize) -> (ArtifactMeta, Vec<Matrix>) {
    let mut s = Stream(seed | 1);
    let meta = ArtifactMeta {
        dataset_name: "sweep".into(),
        dataset_n: 8,
        num_classes: k,
        source: "unit-test".into(),
        members: 2,
        alphas: vec![1.25, 0.75],
        alpha_total: 2.0,
    };
    let params = vec![s.matrix(in_dim, hidden), s.matrix(hidden, k)];
    (meta, params)
}

/// A valid **v3 (mlp)** artifact's text, for the student corruption sweeps.
fn artifact_text_v3(tag: &str) -> String {
    let (meta, params) = mlp_fixture(0xA5, 6, 5, 3);
    let path = tmp(&format!("text_v3_{tag}"));
    write_mlp_artifact(&path, &meta, &params, false).expect("write");
    let text = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    text
}

#[test]
fn v3_roundtrip_serves_features_bitwise_and_loads_via_any_artifact() {
    let cases: &[(u64, usize, usize, usize, bool)] = &[
        (1, 6, 5, 3, false),
        (2, 12, 8, 4, false),
        (3, 3, 2, 2, false),
        (4, 6, 5, 3, true),
    ];
    for &(seed, in_dim, hidden, k, quantize) in cases {
        let (meta, params) = mlp_fixture(seed, in_dim, hidden, k);
        let path = tmp(&format!("v3_roundtrip_{seed}"));
        let checksum = write_mlp_artifact(&path, &meta, &params, quantize).expect("write");

        // The sniffing loader must route the v3 header to the mlp parser.
        let any = AnyArtifact::load(&path).expect("any load");
        assert_eq!(any.format(), ArtifactFormat::V3Mlp, "case {seed}");
        assert_eq!(any.checksum(), checksum, "case {seed}");
        assert_eq!(any.num_shards(), 1, "case {seed}");
        assert!(any.as_mlp().is_some(), "case {seed}");
        assert!(any.proba_sum().is_none(), "mlp artifacts hold no sums");

        let artifact = MlpArtifact::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(artifact.meta(), &meta, "case {seed}");
        assert_eq!(artifact.quantized(), quantize, "case {seed}");

        // Served feature rows must be bitwise identical to the canonical
        // offline forward over the *loaded* weights (for f32 artifacts the
        // loaded weights are the written weights, so this chains to the
        // original student).
        let rows = Stream(seed ^ 0xFEED).matrix(7, in_dim);
        let p = artifact
            .predict_batch(&PredictRequest::features(rows.clone()))
            .expect("predict");
        assert_eq!(p.kind, PredictionKind::Features, "case {seed}");
        assert_eq!(p.nodes, (0..7).collect::<Vec<_>>(), "case {seed}");
        let offline = mlp_forward_features(artifact.params(), &rows).softmax_rows();
        assert_bitwise_equal(&p.proba, &offline, "served vs offline forward");
        if !quantize {
            let original = mlp_forward_features(&params, &rows).softmax_rows();
            assert_bitwise_equal(&p.proba, &original, "served vs original student");
        }
    }
}

#[test]
fn every_single_byte_flip_in_a_v3_artifact_is_caught() {
    // Same sweep as the v1/v2q tests, over the student layout: header,
    // meta, the `mlp` shape line, and every weight-matrix row.
    let text = artifact_text_v3("byteflip");
    let bytes = text.as_bytes();
    let body_end = text.rfind("\nchecksum ").unwrap() + 1;
    for i in (0..body_end).step_by(7) {
        let mut corrupted = bytes.to_vec();
        corrupted[i] ^= 0x01;
        let Ok(s) = String::from_utf8(corrupted) else {
            continue;
        };
        let path = tmp("v3_byteflip");
        std::fs::write(&path, &s).expect("write corrupted");
        let out = MlpArtifact::load(&path);
        let _ = std::fs::remove_file(&path);
        match out {
            Err(ServeError::Checksum { .. })
            | Err(ServeError::Artifact(_))
            | Err(ServeError::WrongVersion { .. }) => {}
            Ok(_) => panic!("byte {i} flip loaded cleanly"),
            Err(other) => panic!("byte {i} flip gave unexpected error {other}"),
        }
    }
}

#[test]
fn truncation_at_every_line_of_a_v3_artifact_is_caught() {
    let text = artifact_text_v3("trunc");
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let truncated = lines[..keep].join("\n");
        let path = tmp("v3_trunc");
        std::fs::write(&path, &truncated).expect("write truncated");
        let out = MlpArtifact::load(&path);
        let _ = std::fs::remove_file(&path);
        match out {
            Err(ServeError::Artifact(_)) | Err(ServeError::Checksum { .. }) => {}
            Ok(_) => panic!("truncation to {keep} lines loaded cleanly"),
            Err(other) => panic!("truncation to {keep} lines gave unexpected error {other}"),
        }
    }
}

#[test]
fn distilled_student_tracks_the_ensemble_on_cora_sim() {
    // End to end on the paper's primary dataset: train a small teacher
    // cascade, distill the graph-free student, freeze it as a v3 artifact,
    // and require (a) a bounded accuracy gap and (b) served feature rows
    // bitwise identical to the offline student forward.
    let dataset = SynthConfig::cora_sim().generate();
    let mut cfg = RddConfig::fast();
    cfg.num_base_models = 2;
    let dir = tmp("distill_cora_run");
    let _ = std::fs::remove_dir_all(&dir);
    RddTrainer::new(cfg)
        .run_crash_safe(&dataset, &dir, "cora")
        .expect("train");

    let state = RunState::load(&dir).expect("run state");
    let out = distill_run(&state, &dataset, &DistillConfig::fast()).expect("distill");
    assert!(out.num_reliable > 0, "some nodes must carry KD weight");
    assert!(
        out.student_test_acc > 0.5,
        "student acc {}",
        out.student_test_acc
    );
    assert!(
        out.accuracy_gap() < 0.2,
        "student trails teacher by {:.3} ({:.3} vs {:.3})",
        out.accuracy_gap(),
        out.student_test_acc,
        out.ensemble_test_acc
    );

    let (n, k) = state.dataset_shape();
    let ensemble = state.load_ensemble().expect("ensemble");
    let meta = ArtifactMeta {
        dataset_name: state.dataset_name().to_string(),
        dataset_n: n,
        num_classes: k,
        source: state.source().to_string(),
        members: ensemble.len(),
        alphas: ensemble.alphas(),
        alpha_total: ensemble.alpha_total(),
    };
    let path = tmp("distill_cora_artifact");
    let student_params = Model::params(&out.student).to_vec();
    write_mlp_artifact(&path, &meta, &student_params, false).expect("write");
    let artifact = MlpArtifact::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);

    // Serve the first 16 training-graph feature rows as raw vectors: the
    // replies must match the offline student forward bitwise.
    let in_dim = artifact.in_dim();
    let mut rows = Matrix::zeros(16, in_dim);
    for i in 0..16 {
        for j in 0..in_dim {
            rows.set(i, j, dataset.features.get(i, j));
        }
    }
    let p = artifact
        .predict_batch(&PredictRequest::features(rows.clone()))
        .expect("predict");
    let offline = mlp_forward_features(&student_params, &rows).softmax_rows();
    assert_bitwise_equal(&p.proba, &offline, "served cora rows vs offline student");
}

#[test]
fn inconsistent_meta_and_shapes_are_rejected() {
    let reject = |tag: &str, mutate: &dyn Fn(&str) -> String| {
        let text = artifact_text(tag);
        let mutated = mutate(&text);
        let body_end = mutated.rfind("\nchecksum ").unwrap() + 1;
        let checksum = rdd_serve::fnv1a64(mutated[..body_end].as_bytes());
        let fixed = format!("{}checksum {checksum:016x}\n", &mutated[..body_end]);
        match load_text(tag, &fixed).unwrap_err() {
            ServeError::Artifact(msg) => msg,
            other => panic!("{tag}: expected Artifact error, got {other}"),
        }
    };

    // Meta/matrix shape skew.
    let msg = reject("meta_n", &|t| t.replacen("\"n\":8", "\"n\":9", 1));
    assert!(msg.contains("expected") || msg.contains("shape"), "{msg}");

    // alpha_total no longer the fold of the alphas.
    let msg = reject("meta_alpha", &|t| {
        let start = t.find("\"alpha_total\":").unwrap();
        let end = start + t[start..].find('}').unwrap();
        format!("{}\"alpha_total\":123.5{}", &t[..start], &t[end..])
    });
    assert!(msg.contains("alpha_total"), "{msg}");

    // A NaN payload (encoded as `nan`, which the float parser accepts but
    // the finiteness gate must reject).
    let msg = reject("nonfinite", &|t| {
        let row_start = t.find("matrix 8 3\n").unwrap() + "matrix 8 3\n".len();
        let row_end = row_start + t[row_start..].find('\n').unwrap();
        let row = &t[row_start..row_end];
        let first_tok = row.split(' ').next().unwrap();
        format!(
            "{}{}{}",
            &t[..row_start],
            row.replacen(first_tok, "NaN", 1),
            &t[row_end..]
        )
    });
    assert!(msg.contains("non-finite"), "{msg}");
}
