//! Serve-path chaos: with faults injected into the worker loop and the
//! batch kernel, a [`ServePool`] must still answer every request exactly
//! once — success or typed error, never a silent drop or a hang — and
//! rows served after the fault clears must stay bitwise identical to the
//! offline ensemble. The swap-failure test corrupts a watched artifact
//! mid-stream and checks the old generation keeps serving until a good
//! replacement lands.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use rdd_core::Ensemble;
use rdd_models::PredictRequest;
use rdd_serve::{
    AnyArtifact, Artifact, ArtifactWatcher, PoolConfig, ServeConfig, ServeError, ServePool,
    ServeReply, WatchOutcome,
};
use rdd_tensor::Matrix;

/// Injected faults are process-global; tests that arm one (or run a pool
/// whose workers pass fault sites) serialize here so a fault armed by one
/// test can't fire inside another.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rdd_serve_chaos_{name}_{}", std::process::id()))
}

/// A small deterministic ensemble and its frozen artifact, left on disk at
/// the returned path. `tag` perturbs the logits so different tags produce
/// bitwise-distinguishable artifacts.
fn fixture(name: &str, tag: usize) -> (Ensemble, Artifact, PathBuf) {
    let n = 24;
    let k = 4;
    let mut ensemble = Ensemble::new();
    for t in 0..3usize {
        let data: Vec<f32> = (0..n * k)
            .map(|i| (((i * 37 + t * 101 + tag * 53) % 29) as f32 / 7.0) - 2.0)
            .collect();
        let logits = Matrix::from_vec(n, k, data);
        ensemble.push(logits.softmax_rows(), logits, 0.5 + t as f32 * 0.3);
    }
    let path = tmp(name);
    rdd_serve::write_ensemble(&path, &ensemble, "fixture", "chaos-test").expect("write");
    let artifact = Artifact::load(&path).expect("load");
    (ensemble, artifact, path)
}

fn assert_row_bitwise(served: &[f32], offline: &[f32], what: &str) {
    assert_eq!(served.len(), offline.len(), "{what} width");
    for (a, b) in served.iter().zip(offline) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}");
    }
}

/// Drain exactly `expect` replies with a hard wall-clock bound per reply:
/// a supervised pool must never hang, even mid-panic.
fn drain(rx: &mpsc::Receiver<ServeReply>, expect: usize) -> HashMap<u64, ServeReply> {
    let mut seen = HashMap::new();
    for _ in 0..expect {
        let reply = rx
            .recv_timeout(Duration::from_secs(20))
            .expect("reply within wall-clock bound (no hangs under fault)");
        assert!(seen.insert(reply.id, reply).is_none(), "duplicate reply id");
    }
    // Nothing extra in flight: exactly one reply per request.
    assert!(
        rx.recv_timeout(Duration::from_millis(50)).is_err(),
        "more replies than requests"
    );
    seen
}

/// `panic@serve_worker` mid-stream: both panics land inside the retry
/// budget, so every request is answered `Ok` with rows bitwise equal to
/// the offline ensemble, and the pool reports the panics and respawns.
#[test]
fn worker_panics_requeue_and_every_request_is_answered_bitwise() {
    let _guard = lock();
    let (ensemble, artifact, path) = fixture("worker_panic", 0);
    let _ = std::fs::remove_file(&path);
    let offline = ensemble.proba();
    let n = offline.rows();

    rdd_obs::fault::arm("panic@serve_worker:1x2").expect("arm");
    let cfg = PoolConfig {
        serve: ServeConfig {
            batch_size: 4,
            max_delay_ms: 1,
            cache_capacity: 0,
            queue_capacity: 256,
        },
        workers: 2,
        ..PoolConfig::default()
    };
    let (tx, rx) = mpsc::channel();
    let pool = ServePool::new(artifact, cfg, 1, tx).expect("pool");
    const REQUESTS: usize = 60;
    for i in 0..REQUESTS {
        pool.submit(i as u64, PredictRequest::nodes(vec![i % n]))
            .expect("submit");
    }
    let seen = drain(&rx, REQUESTS);
    rdd_obs::fault::disarm();

    for (id, reply) in &seen {
        let p = reply.result.as_ref().expect("inside retry budget");
        assert_row_bitwise(
            p.proba.row(0),
            offline.row(*id as usize % n),
            &format!("id {id}"),
        );
    }
    let report = pool.shutdown();
    let panics: u64 = report.workers.iter().map(|w| w.panics).sum();
    let respawns: u64 = report.workers.iter().map(|w| w.respawns).sum();
    assert!(panics >= 1, "injected panic must be recorded");
    assert!(respawns >= 1, "panicked worker must be respawned");
    assert_eq!(report.stats.failed, 0, "no request burned its budget");
}

/// `panic@serve_batch` (inside the batch kernel itself) is supervised the
/// same way: the claimed batch is requeued and re-served bitwise.
#[test]
fn batch_kernel_panic_is_supervised_and_requeued() {
    let _guard = lock();
    let (ensemble, artifact, path) = fixture("batch_panic", 1);
    let _ = std::fs::remove_file(&path);
    let offline = ensemble.proba();
    let n = offline.rows();

    rdd_obs::fault::arm("panic@serve_batch:2").expect("arm");
    let cfg = PoolConfig {
        serve: ServeConfig {
            batch_size: 4,
            max_delay_ms: 1,
            cache_capacity: 0,
            queue_capacity: 256,
        },
        workers: 2,
        ..PoolConfig::default()
    };
    let (tx, rx) = mpsc::channel();
    let pool = ServePool::new(artifact, cfg, 1, tx).expect("pool");
    const REQUESTS: usize = 40;
    for i in 0..REQUESTS {
        pool.submit(i as u64, PredictRequest::nodes(vec![i % n]))
            .expect("submit");
    }
    let seen = drain(&rx, REQUESTS);
    rdd_obs::fault::disarm();

    for (id, reply) in &seen {
        let p = reply.result.as_ref().expect("inside retry budget");
        assert_row_bitwise(
            p.proba.row(0),
            offline.row(*id as usize % n),
            &format!("id {id}"),
        );
    }
    let report = pool.shutdown();
    assert!(
        report.workers.iter().map(|w| w.panics).sum::<u64>() >= 1,
        "kernel panic must be recorded"
    );
    assert_eq!(report.stats.failed, 0);
}

/// A fault that outlives the retry budget must surface as a typed
/// `WorkerFailed` reply for every claimed request — never a silent drop,
/// never a hang.
#[test]
fn fault_outliving_retry_budget_is_a_typed_error_not_a_hang() {
    let _guard = lock();
    let (_ensemble, artifact, path) = fixture("spent_budget", 2);
    let _ = std::fs::remove_file(&path);

    rdd_obs::fault::arm("panic@serve_worker:0x64").expect("arm");
    let cfg = PoolConfig {
        serve: ServeConfig {
            batch_size: 2,
            max_delay_ms: 1,
            cache_capacity: 0,
            queue_capacity: 64,
        },
        workers: 1,
        retry_budget: 1,
        ..PoolConfig::default()
    };
    let (tx, rx) = mpsc::channel();
    let pool = ServePool::new(artifact, cfg, 1, tx).expect("pool");
    const REQUESTS: usize = 6;
    for i in 0..REQUESTS {
        pool.submit(i as u64, PredictRequest::nodes(vec![i]))
            .expect("submit");
    }
    let seen = drain(&rx, REQUESTS);
    rdd_obs::fault::disarm();

    for (id, reply) in &seen {
        match &reply.result {
            Err(ServeError::WorkerFailed { retries }) => {
                assert_eq!(*retries, 1, "id {id} spent exactly the budget")
            }
            other => panic!("id {id}: expected WorkerFailed, got {other:?}"),
        }
    }
    let report = pool.shutdown();
    assert_eq!(report.stats.failed, REQUESTS as u64);
}

/// Satellite (d): corrupt the watched artifact mid-stream. The watcher
/// reports the failure with backoff, the pool keeps serving the old
/// generation bitwise, and a subsequent good artifact still swaps in.
#[test]
fn corrupt_watched_artifact_keeps_old_generation_until_good_replacement() {
    let _guard = lock();
    let (ensemble_a, artifact_a, path) = fixture("swap_rollback", 3);
    let offline_a = ensemble_a.proba();
    let n = offline_a.rows();
    let checksum_a = artifact_a.checksum();

    let cfg = PoolConfig {
        serve: ServeConfig {
            batch_size: 4,
            max_delay_ms: 0,
            cache_capacity: n,
            queue_capacity: 256,
        },
        workers: 2,
        ..PoolConfig::default()
    };
    let (tx, rx) = mpsc::channel();
    let pool = ServePool::new(AnyArtifact::Single(artifact_a), cfg, checksum_a, tx).expect("pool");
    let mut watcher = ArtifactWatcher::with_intervals(
        &path,
        checksum_a,
        Duration::from_millis(1),
        Duration::from_millis(8),
    );

    // Corrupt the watched file in place (mtime moves, content is garbage).
    std::thread::sleep(Duration::from_millis(20));
    std::fs::write(&path, "not an artifact\n").expect("corrupt");
    match watcher.poll(Instant::now()) {
        WatchOutcome::Failed {
            error,
            failures,
            backoff_ms,
        } => {
            assert!(!error.to_string().is_empty());
            assert_eq!(failures, 1);
            assert!(backoff_ms >= 1);
        }
        other => panic!("expected Failed on corrupt artifact, got {other:?}"),
    }

    // Rollback semantics: the live generation is untouched and still
    // serves bitwise-identical rows.
    for i in 0..n {
        pool.submit(i as u64, PredictRequest::nodes(vec![i]))
            .expect("submit");
    }
    for (id, reply) in drain(&rx, n) {
        assert_eq!(reply.generation, 0, "corrupt load must not bump generation");
        let p = reply.result.as_ref().expect("serve");
        assert_row_bitwise(p.proba.row(0), offline_a.row(id as usize), "old generation");
    }

    // A good replacement written afterwards still swaps in.
    std::thread::sleep(Duration::from_millis(20));
    let (ensemble_b, artifact_b, _same_path) = fixture("swap_rollback", 4);
    let offline_b = ensemble_b.proba();
    let checksum_b = artifact_b.checksum();
    assert_ne!(checksum_a, checksum_b, "fixtures must differ");
    let deadline = Instant::now() + Duration::from_secs(10);
    let next = loop {
        assert!(
            Instant::now() < deadline,
            "watcher never saw the good artifact"
        );
        match watcher.poll(Instant::now() + Duration::from_millis(50)) {
            WatchOutcome::Loaded(next) => break next,
            WatchOutcome::Pending | WatchOutcome::Unchanged => {
                std::thread::sleep(Duration::from_millis(5))
            }
            WatchOutcome::Failed { .. } => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    assert_eq!(next.checksum(), checksum_b);
    let generation = pool
        .try_swap(*next, checksum_b)
        .expect("swap good artifact");
    watcher.installed(checksum_b);
    assert_eq!(generation, 1);
    assert_eq!(watcher.failures(), 0, "success resets the failure count");

    for i in 0..n {
        pool.submit((n + i) as u64, PredictRequest::nodes(vec![i]))
            .expect("submit");
    }
    for (id, reply) in drain(&rx, n) {
        assert_eq!(reply.generation, 1, "post-swap generation");
        let p = reply.result.as_ref().expect("serve");
        let node = id as usize - n;
        assert_row_bitwise(p.proba.row(0), offline_b.row(node), "new generation");
    }
    let _ = std::fs::remove_file(&path);
    pool.shutdown();
}
