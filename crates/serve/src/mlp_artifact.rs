//! The v3 (mlp) artifact: a distilled graph-free student frozen as weight
//! matrices.
//!
//! v1/v2q artifacts store the ensemble's per-node distribution sums, so
//! they can only answer for the nodes the run trained on. `rdd distill-mlp`
//! trains an MLP student against the frozen ensemble (see
//! `rdd_core::distill`) and exports its weights instead:
//!
//! ```text
//! rdd-artifact v3 (mlp)
//! meta {...}                 # the teacher run's ArtifactMeta (provenance)
//! mlp <in_dim> <k> <layers>  # declared student shape, cross-checked
//! matrix <d0> <d1>           # W0   (or `qmatrix <d0> <d1> int8` blocks
//! <d0 rows of d1 floats>     #       with --quantize int8)
//! ...                        # W1..W_{L-1}
//! checksum <16 hex digits>   # same FNV-1a 64 discipline as v1/v2q
//! ```
//!
//! A loaded [`MlpArtifact`] answers [`PredictRequest::ByFeatures`] — any
//! row count, fixed feature dim, **no adjacency** — through the canonical
//! dense forward [`rdd_models::mlp_forward_features`], the same function
//! every offline comparison calls, so served feature replies are bitwise
//! identical to the offline student forward. Node-id requests are rejected
//! with a typed [`PredictError::NodesUnsupported`]: there are no per-node
//! rows to read.

use std::path::Path;

use rdd_models::{
    mlp_forward_features, validate_layer_chain, PredictError, PredictRequest, Prediction,
    PredictionKind, Predictor,
};
use rdd_tensor::Matrix;

use crate::artifact::{
    fnv1a64, parse_matrix, parse_qmatrix, push_matrix, push_qmatrix, ArtifactFormat, ArtifactMeta,
    Lines, HEADER_V3_MLP,
};
use crate::error::ServeError;

/// Serialize and atomically write a v3 (mlp) artifact: the student's
/// weight matrices under the teacher run's meta. `quantize` swaps each
/// `matrix` block for an int8 `qmatrix` block (lossy, ~0.3× the bytes).
/// Returns the file checksum.
pub fn write_mlp_artifact(
    path: &Path,
    meta: &ArtifactMeta,
    params: &[Matrix],
    quantize: bool,
) -> Result<u64, ServeError> {
    meta.validate().map_err(ServeError::Artifact)?;
    validate_layer_chain(params).map_err(ServeError::Artifact)?;
    let k = params[params.len() - 1].cols();
    if k != meta.num_classes {
        return Err(ServeError::Artifact(format!(
            "student emits {k} classes but meta declares {}",
            meta.num_classes
        )));
    }
    let mut text = String::new();
    text.push_str(HEADER_V3_MLP);
    text.push('\n');
    text.push_str("meta ");
    meta.to_json().write(&mut text);
    text.push('\n');
    use std::fmt::Write as _;
    let _ = writeln!(text, "mlp {} {} {}", params[0].rows(), k, params.len());
    for w in params {
        if quantize {
            push_qmatrix(&mut text, w);
        } else {
            push_matrix(&mut text, w);
        }
    }
    let checksum = fnv1a64(text.as_bytes());
    let _ = writeln!(text, "checksum {checksum:016x}");
    rdd_models::atomic_write(path, &text).map_err(ServeError::Io)?;
    Ok(checksum)
}

/// A loaded, validated v3 artifact: the frozen student as a feature-only
/// [`Predictor`].
#[derive(Clone, Debug)]
pub struct MlpArtifact {
    meta: ArtifactMeta,
    params: Vec<Matrix>,
    quantized: bool,
    /// FNV-1a 64 of the file content (also the serve cache's key epoch —
    /// unused for feature rows, which are uncacheable, but still the
    /// generation identity for swap/telemetry).
    checksum: u64,
}

impl MlpArtifact {
    /// Load and fully validate a v3 file: checksum first, then header,
    /// meta, the declared `mlp` shape line, and every weight block
    /// (consistent encoding, consistent layer chain, finite values).
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let text = std::fs::read_to_string(path)?;
        let body_end = text
            .rfind("\nchecksum ")
            .ok_or_else(|| ServeError::Artifact("missing checksum line".into()))?
            + 1;
        let stored_line = text[body_end..].trim_end();
        let stored = stored_line
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| ServeError::Artifact(format!("bad checksum line {stored_line:?}")))?;
        if !text[body_end..].ends_with('\n') || text[body_end..].lines().count() != 1 {
            return Err(ServeError::Artifact(
                "trailing garbage after checksum line".into(),
            ));
        }
        let computed = fnv1a64(&text.as_bytes()[..body_end]);
        if computed != stored {
            return Err(ServeError::Checksum { stored, computed });
        }

        let mut lines = Lines {
            rest: text[..body_end].lines(),
            line_no: 0,
        };
        let header = lines.next()?;
        if header != HEADER_V3_MLP {
            if header.starts_with("rdd-artifact") {
                return Err(ServeError::WrongVersion {
                    found: header.to_string(),
                });
            }
            return Err(ServeError::Artifact(format!(
                "not an rdd artifact (first line {header:?})"
            )));
        }
        let meta_line = lines.next()?;
        let meta_src = meta_line
            .strip_prefix("meta ")
            .ok_or_else(|| ServeError::Artifact("line 2: expected 'meta {{...}}'".into()))?;
        let meta_json = rdd_obs::parse(meta_src)
            .map_err(|e| ServeError::Artifact(format!("bad meta json: {e}")))?;
        let meta = ArtifactMeta::from_json(&meta_json).map_err(ServeError::Artifact)?;
        meta.validate().map_err(ServeError::Artifact)?;

        let shape_line = lines.next()?;
        let toks: Vec<&str> = shape_line.split_whitespace().collect();
        let (in_dim, k, layers) = match toks.as_slice() {
            ["mlp", d, k, l] => {
                let parse = |tok: &str| -> Result<usize, ServeError> {
                    tok.parse::<usize>().map_err(|_| {
                        ServeError::Artifact(format!("bad mlp shape line {shape_line:?}"))
                    })
                };
                (parse(d)?, parse(k)?, parse(l)?)
            }
            _ => {
                return Err(ServeError::Artifact(format!(
                    "line 3: expected 'mlp IN_DIM K LAYERS', found {shape_line:?}"
                )))
            }
        };
        if layers == 0 {
            return Err(ServeError::Artifact("mlp declares zero layers".into()));
        }
        if k != meta.num_classes {
            return Err(ServeError::Artifact(format!(
                "mlp line declares {k} classes but meta declares {}",
                meta.num_classes
            )));
        }

        let tier = rdd_tensor::simd::active();
        let mut params = Vec::with_capacity(layers);
        let mut quantized = None;
        for l in 0..layers {
            // Sniff the block keyword without consuming it; the block
            // parsers own their header lines.
            let kw = lines
                .rest
                .clone()
                .next()
                .map(|line| line.split_whitespace().next().unwrap_or(""))
                .unwrap_or("");
            let (w, is_q) = match kw {
                "matrix" => (parse_matrix(&mut lines)?, false),
                "qmatrix" => (parse_qmatrix(&mut lines, tier)?, true),
                _ => {
                    return Err(ServeError::Artifact(format!(
                        "layer {l}: expected a matrix or qmatrix block, found {kw:?}"
                    )))
                }
            };
            if *quantized.get_or_insert(is_q) != is_q {
                return Err(ServeError::Artifact(format!(
                    "layer {l}: mixed matrix/qmatrix encodings in one artifact"
                )));
            }
            params.push(w);
        }
        if lines.rest.next().is_some() {
            return Err(ServeError::Artifact(
                "trailing garbage before checksum line".into(),
            ));
        }
        validate_layer_chain(&params).map_err(ServeError::Artifact)?;
        if params[0].rows() != in_dim {
            return Err(ServeError::Artifact(format!(
                "mlp line declares in_dim {in_dim} but layer 0 has {} rows",
                params[0].rows()
            )));
        }
        if params[layers - 1].cols() != k {
            return Err(ServeError::Artifact(format!(
                "mlp line declares {k} classes but the last layer emits {}",
                params[layers - 1].cols()
            )));
        }
        Ok(Self {
            meta,
            params,
            quantized: quantized.unwrap_or(false),
            checksum: stored,
        })
    }

    /// The teacher run's metadata (provenance; `dataset_n` is the size of
    /// the graph the student was distilled on, not a serving bound).
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// Always [`ArtifactFormat::V3Mlp`].
    pub fn format(&self) -> ArtifactFormat {
        ArtifactFormat::V3Mlp
    }

    /// The file checksum (the artifact's generation identity).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The student's weight matrices, first to last.
    pub fn params(&self) -> &[Matrix] {
        &self.params
    }

    /// Input feature dimensionality the student expects.
    pub fn in_dim(&self) -> usize {
        self.params[0].rows()
    }

    /// Number of linear layers.
    pub fn num_layers(&self) -> usize {
        self.params.len()
    }

    /// Whether the weight blocks were int8-quantized on disk.
    pub fn quantized(&self) -> bool {
        self.quantized
    }

    /// Answer a dense feature-row batch: the canonical
    /// [`mlp_forward_features`] pass, then a row softmax — the one code
    /// path shared with every offline comparison, which is what makes
    /// served feature replies bitwise-reproducible.
    pub fn predict_features(&self, rows: &Matrix) -> Result<Prediction, PredictError> {
        if rows.cols() != self.in_dim() {
            return Err(PredictError::FeatureDimMismatch {
                got: rows.cols(),
                expected: self.in_dim(),
            });
        }
        let proba = mlp_forward_features(&self.params, rows).softmax_rows();
        Ok(Prediction {
            nodes: (0..rows.rows()).collect(),
            pred: proba.argmax_rows(),
            proba,
            kind: PredictionKind::Features,
        })
    }
}

impl Predictor for MlpArtifact {
    /// The training graph's node count (provenance only — node requests
    /// are rejected regardless).
    fn num_nodes(&self) -> usize {
        self.meta.dataset_n
    }

    fn num_classes(&self) -> usize {
        self.meta.num_classes
    }

    fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
        match req {
            PredictRequest::ByFeatures(rows) => self.predict_features(rows),
            PredictRequest::All | PredictRequest::ByNodes(_) => {
                Err(PredictError::NodesUnsupported {
                    predictor: "mlp artifact",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rdd_mlp_unit_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture(in_dim: usize, hidden: usize, k: usize) -> (ArtifactMeta, Vec<Matrix>) {
        let meta = ArtifactMeta {
            dataset_name: "unit".into(),
            dataset_n: 9,
            num_classes: k,
            source: "unit-test".into(),
            members: 2,
            alphas: vec![1.5, 0.5],
            alpha_total: 2.0,
        };
        let gen = |r: usize, c: usize, salt: usize| {
            let data: Vec<f32> = (0..r * c)
                .map(|i| ((i * 37 + salt) % 97) as f32 / 29.0 - 1.5)
                .collect();
            Matrix::from_vec(r, c, data)
        };
        (meta, vec![gen(in_dim, hidden, 1), gen(hidden, k, 11)])
    }

    fn rows(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |i, j| ((i * 13 + j * 7) % 19) as f32 * 0.1)
    }

    #[test]
    fn roundtrip_serves_features_bitwise() {
        let dir = tmpdir("roundtrip");
        let (meta, params) = fixture(6, 5, 3);
        let path = dir.join("s.artifact");
        let checksum = write_mlp_artifact(&path, &meta, &params, false).unwrap();
        let art = MlpArtifact::load(&path).unwrap();
        assert_eq!(art.checksum(), checksum);
        assert_eq!(art.format(), ArtifactFormat::V3Mlp);
        assert!(!art.quantized());
        assert_eq!(art.in_dim(), 6);
        assert_eq!(art.num_layers(), 2);
        assert_eq!(art.num_classes(), 3);
        // Full-precision weights roundtrip bitwise (shortest-roundtrip
        // Display), so the served forward equals the in-memory forward.
        let batch = rows(4, 6);
        let served = art
            .predict_batch(&PredictRequest::features(batch.clone()))
            .unwrap();
        assert_eq!(served.kind, PredictionKind::Features);
        assert_eq!(served.nodes, vec![0, 1, 2, 3]);
        let offline = mlp_forward_features(&params, &batch).softmax_rows();
        let same = served
            .proba
            .as_slice()
            .iter()
            .zip(offline.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "served feature rows must be bitwise vs offline");
    }

    #[test]
    fn quantized_roundtrip_is_close_not_bitwise() {
        let dir = tmpdir("quant");
        let (meta, params) = fixture(6, 5, 3);
        let path = dir.join("q.artifact");
        write_mlp_artifact(&path, &meta, &params, true).unwrap();
        let art = MlpArtifact::load(&path).unwrap();
        assert!(art.quantized());
        for (orig, loaded) in params.iter().zip(art.params()) {
            assert_eq!(orig.shape(), loaded.shape());
            assert!(
                orig.max_abs_diff(loaded) < 0.05,
                "int8 drift {} too large",
                orig.max_abs_diff(loaded)
            );
        }
    }

    #[test]
    fn node_requests_are_typed_unsupported() {
        let dir = tmpdir("nodes");
        let (meta, params) = fixture(4, 3, 2);
        let path = dir.join("n.artifact");
        write_mlp_artifact(&path, &meta, &params, false).unwrap();
        let art = MlpArtifact::load(&path).unwrap();
        for req in [PredictRequest::all(), PredictRequest::nodes(vec![0])] {
            assert!(matches!(
                art.predict_batch(&req),
                Err(PredictError::NodesUnsupported {
                    predictor: "mlp artifact"
                })
            ));
        }
    }

    #[test]
    fn feature_dim_mismatch_is_typed() {
        let dir = tmpdir("dim");
        let (meta, params) = fixture(4, 3, 2);
        let path = dir.join("d.artifact");
        write_mlp_artifact(&path, &meta, &params, false).unwrap();
        let art = MlpArtifact::load(&path).unwrap();
        let err = art
            .predict_batch(&PredictRequest::features(rows(2, 5)))
            .unwrap_err();
        assert_eq!(
            err,
            PredictError::FeatureDimMismatch {
                got: 5,
                expected: 4
            }
        );
    }

    #[test]
    fn writer_rejects_broken_chains_and_wrong_classes() {
        let dir = tmpdir("reject");
        let (meta, _) = fixture(4, 3, 2);
        let path = dir.join("x.artifact");
        let broken = vec![Matrix::zeros(4, 3), Matrix::zeros(5, 2)];
        assert!(write_mlp_artifact(&path, &meta, &broken, false).is_err());
        let wrong_k = vec![Matrix::zeros(4, 3), Matrix::zeros(3, 7)];
        let err = write_mlp_artifact(&path, &meta, &wrong_k, false).unwrap_err();
        assert!(err.to_string().contains("7 classes"), "{err}");
        assert!(write_mlp_artifact(&path, &meta, &[], false).is_err());
    }

    #[test]
    fn corruption_is_a_checksum_error_and_v1_header_is_wrong_version() {
        let dir = tmpdir("corrupt");
        let (meta, params) = fixture(4, 3, 2);
        let path = dir.join("c.artifact");
        write_mlp_artifact(&path, &meta, &params, false).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("mlp 4", "mlp 5", 1)).unwrap();
        assert!(matches!(
            MlpArtifact::load(&path),
            Err(ServeError::Checksum { .. })
        ));
        // A re-checksummed tampered shape line fails the cross-check.
        let mutated = text.replacen("mlp 4", "mlp 5", 1);
        let body_end = mutated.rfind("\nchecksum ").unwrap() + 1;
        let checksum = fnv1a64(mutated[..body_end].as_bytes());
        std::fs::write(
            &path,
            format!("{}checksum {checksum:016x}\n", &mutated[..body_end]),
        )
        .unwrap();
        match MlpArtifact::load(&path) {
            Err(ServeError::Artifact(msg)) => assert!(msg.contains("in_dim"), "{msg}"),
            other => panic!("expected a shape error, got {other:?}", other = other.err()),
        }
        // The v3 loader rejects a v1 file as a version mismatch.
        let v1ish = "rdd-artifact v1\nmeta {}\n";
        let checksum = fnv1a64(v1ish.as_bytes());
        std::fs::write(&path, format!("{v1ish}checksum {checksum:016x}\n")).unwrap();
        assert!(matches!(
            MlpArtifact::load(&path),
            Err(ServeError::WrongVersion { .. })
        ));
    }
}
