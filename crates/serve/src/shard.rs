//! Node-range-sharded artifacts: one export split into K checksummed
//! shard files plus a manifest.
//!
//! [`write_sharded`] cuts the node axis into K contiguous ranges and
//! writes each range as a **complete, self-validating artifact** in the
//! usual v1/v2q encoding (same alphas, same `alpha_total`, `dataset_n` =
//! the shard's row count), so every shard loads through the untouched
//! [`Artifact::load`] path and its rows are bitwise identical to the same
//! rows of the unsharded export — the normalization `sum · (1/alpha_total)`
//! uses the same scalar either way. The manifest ties them together:
//!
//! ```text
//! rdd-artifact-manifest v1
//! meta {...}                          # the full (unsharded) meta line
//! shard 0 0 906 <16 hex> <filename>   # index, [start, end), file checksum
//! shard 1 906 1812 <16 hex> <filename>
//! ...
//! checksum <16 hex digits>            # FNV-1a 64 over every preceding byte
//! ```
//!
//! [`ShardedArtifact::load`] verifies the manifest checksum first, loads
//! every shard, cross-checks each file's checksum against the recorded
//! one, and rejects gaps, overlaps, or shards whose meta disagrees with
//! the manifest's. Requests route by node id → range (each node id maps to
//! exactly one shard) behind the same [`Predictor`] trait, so the serve
//! engine, pool and cache never know whether an artifact is sharded.
//! [`AnyArtifact`] sniffs the first line and loads either kind.

use std::path::{Path, PathBuf};

use rdd_core::RunState;
use rdd_models::{PredictError, PredictRequest, Prediction, PredictionKind, Predictor};
use rdd_tensor::Matrix;

use crate::artifact::{
    fnv1a64, write_artifact_as, Artifact, ArtifactFormat, ArtifactMeta, HEADER_V3_MLP,
};
use crate::error::{RddError, ServeError};
use crate::mlp_artifact::MlpArtifact;

/// First line of a shard manifest.
pub const MANIFEST_HEADER: &str = "rdd-artifact-manifest v1";

/// Split `n` rows into `shards` contiguous `[start, end)` ranges, as even
/// as possible (the first `n % shards` ranges get one extra row). Requires
/// `1 <= shards <= n`.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards >= 1 && shards <= n, "need 1 <= shards <= rows");
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

fn slice_rows(m: &Matrix, start: usize, end: usize) -> Matrix {
    let k = m.cols();
    Matrix::from_vec(end - start, k, m.as_slice()[start * k..end * k].to_vec())
}

fn shard_file_name(manifest: &Path, index: usize) -> Result<String, ServeError> {
    let name = manifest
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| {
            ServeError::Artifact(format!("bad manifest path {:?}", manifest.display()))
        })?;
    Ok(format!("{name}.shard{index}"))
}

/// Write `shards` checksummed shard artifacts (`<path>.shard<i>`, each in
/// `format`) plus the manifest at `path`. Returns the manifest checksum.
pub fn write_sharded(
    path: &Path,
    meta: &ArtifactMeta,
    proba_sum: &Matrix,
    logits_sum: &Matrix,
    format: ArtifactFormat,
    shards: usize,
) -> Result<u64, ServeError> {
    meta.validate().map_err(ServeError::Artifact)?;
    if shards < 1 {
        return Err(ServeError::Artifact("cannot export 0 shards".into()));
    }
    if shards > meta.dataset_n {
        return Err(ServeError::Artifact(format!(
            "cannot split {} rows into {shards} shards",
            meta.dataset_n
        )));
    }
    for (name, m) in [("proba_sum", proba_sum), ("logits_sum", logits_sum)] {
        if m.shape() != (meta.dataset_n, meta.num_classes) {
            return Err(ServeError::Artifact(format!(
                "{name} shape {:?} does not match dataset ({} x {})",
                m.shape(),
                meta.dataset_n,
                meta.num_classes
            )));
        }
    }
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    use std::fmt::Write as _;
    let mut text = String::new();
    text.push_str(MANIFEST_HEADER);
    text.push('\n');
    text.push_str("meta ");
    meta.to_json().write(&mut text);
    text.push('\n');
    for (i, (start, end)) in shard_ranges(meta.dataset_n, shards).into_iter().enumerate() {
        let shard_meta = ArtifactMeta {
            dataset_n: end - start,
            ..meta.clone()
        };
        let file = shard_file_name(path, i)?;
        let checksum = write_artifact_as(
            &dir.join(&file),
            &shard_meta,
            &slice_rows(proba_sum, start, end),
            &slice_rows(logits_sum, start, end),
            format,
        )?;
        let _ = writeln!(text, "shard {i} {start} {end} {checksum:016x} {file}");
    }
    let checksum = fnv1a64(text.as_bytes());
    let _ = writeln!(text, "checksum {checksum:016x}");
    rdd_models::atomic_write(path, &text).map_err(ServeError::Io)?;
    Ok(checksum)
}

/// [`crate::export_run_as`], but sharded: distill a completed crash-safe
/// run directory into `shards` checksummed shard artifacts plus the
/// manifest at `artifact_path`, and load the composed result back.
pub fn export_run_sharded(
    run_dir: &Path,
    artifact_path: &Path,
    format: ArtifactFormat,
    shards: usize,
) -> Result<ShardedArtifact, RddError> {
    let state = RunState::load(run_dir)?;
    if !state.is_complete() {
        return Err(ServeError::Artifact(format!(
            "run {} is not complete ({} members committed); finish or `rdd resume` it first",
            run_dir.display(),
            state.next_member()
        ))
        .into());
    }
    let ensemble = state.load_ensemble()?;
    let (proba_sum, logits_sum) = match (ensemble.proba_sum(), ensemble.logits_sum()) {
        (Some(ps), Some(ls)) => (ps, ls),
        _ => {
            return Err(ServeError::Artifact(format!(
                "run {} kept no ensemble members; nothing to serve",
                run_dir.display()
            ))
            .into())
        }
    };
    let (n, k) = state.dataset_shape();
    let meta = ArtifactMeta {
        dataset_name: state.dataset_name().to_string(),
        dataset_n: n,
        num_classes: k,
        source: state.source().to_string(),
        members: ensemble.len(),
        alphas: ensemble.alphas(),
        alpha_total: ensemble.alpha_total(),
    };
    write_sharded(artifact_path, &meta, proba_sum, logits_sum, format, shards)?;
    Ok(ShardedArtifact::load(artifact_path)?)
}

/// A loaded, fully cross-validated shard set behind one [`Predictor`].
#[derive(Clone, Debug)]
pub struct ShardedArtifact {
    meta: ArtifactMeta,
    format: ArtifactFormat,
    /// FNV-1a 64 of the manifest (the composed artifact's cache epoch —
    /// it commits to every shard checksum, so it changes iff any shard
    /// content changes).
    checksum: u64,
    shards: Vec<Artifact>,
    /// Start row of each shard; shard `i` covers
    /// `starts[i]..starts[i] + shards[i].num_nodes()`.
    starts: Vec<usize>,
}

impl ShardedArtifact {
    /// Load a manifest and every shard it references. Validation order:
    /// manifest checksum, manifest structure, then per-shard load (each
    /// shard's own checksum) + cross-checks (recorded checksum, contiguous
    /// complete coverage, meta consistency).
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let text = std::fs::read_to_string(path)?;
        let body_end = text
            .rfind("\nchecksum ")
            .ok_or_else(|| ServeError::Artifact("missing checksum line".into()))?
            + 1;
        let stored_line = text[body_end..].trim_end();
        let stored = stored_line
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| ServeError::Artifact(format!("bad checksum line {stored_line:?}")))?;
        if !text[body_end..].ends_with('\n') || text[body_end..].lines().count() != 1 {
            return Err(ServeError::Artifact(
                "trailing garbage after checksum line".into(),
            ));
        }
        let computed = fnv1a64(&text.as_bytes()[..body_end]);
        if computed != stored {
            return Err(ServeError::Checksum { stored, computed });
        }

        let mut lines = text[..body_end].lines();
        let header = lines
            .next()
            .ok_or_else(|| ServeError::Artifact("empty manifest".into()))?;
        if header != MANIFEST_HEADER {
            if header.starts_with("rdd-artifact") {
                return Err(ServeError::WrongVersion {
                    found: header.to_string(),
                });
            }
            return Err(ServeError::Artifact(format!(
                "not an rdd artifact manifest (first line {header:?})"
            )));
        }
        let meta_line = lines
            .next()
            .ok_or_else(|| ServeError::Artifact("manifest truncated at line 2".into()))?;
        let meta_src = meta_line
            .strip_prefix("meta ")
            .ok_or_else(|| ServeError::Artifact("line 2: expected 'meta {{...}}'".into()))?;
        let meta_json = rdd_obs::parse(meta_src)
            .map_err(|e| ServeError::Artifact(format!("bad meta json: {e}")))?;
        let meta = ArtifactMeta::from_json(&meta_json).map_err(ServeError::Artifact)?;
        meta.validate().map_err(ServeError::Artifact)?;

        let dir: PathBuf = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let mut shards: Vec<Artifact> = Vec::new();
        let mut starts: Vec<usize> = Vec::new();
        let mut covered = 0usize;
        for (line_no, line) in lines.enumerate() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            let err =
                |msg: String| ServeError::Artifact(format!("manifest line {}: {msg}", line_no + 3));
            let [kw, idx, start, end, checksum, file] = toks.as_slice() else {
                return Err(err(format!(
                    "expected 'shard I START END CHECKSUM FILE', found {line:?}"
                )));
            };
            if *kw != "shard" {
                return Err(err(format!("expected a shard line, found {line:?}")));
            }
            let parse = |tok: &str| -> Result<usize, ServeError> {
                tok.parse::<usize>()
                    .map_err(|_| err(format!("bad number {tok:?}")))
            };
            let (idx, start, end) = (parse(idx)?, parse(start)?, parse(end)?);
            let recorded = u64::from_str_radix(checksum, 16)
                .map_err(|_| err(format!("bad checksum {checksum:?}")))?;
            if idx != shards.len() {
                return Err(err(format!("shard index {idx}, expected {}", shards.len())));
            }
            if start != covered {
                return Err(err(format!(
                    "shard {idx} starts at {start}, expected {covered} (gap or overlap)"
                )));
            }
            if end <= start || end > meta.dataset_n {
                return Err(err(format!(
                    "shard {idx} range [{start}, {end}) is empty or exceeds {} rows",
                    meta.dataset_n
                )));
            }
            // Chaos site: `corrupt@shard_load` makes this shard read fail
            // with a typed corruption error, exercising swap rollback
            // (the live generation must keep serving).
            if rdd_obs::fault::fire("shard_load") == Some(rdd_obs::FaultKind::Corrupt) {
                return Err(ServeError::Artifact(format!(
                    "{file}: injected corruption (RDD_FAULT corrupt@shard_load)"
                )));
            }
            let shard = Artifact::load(&dir.join(file))?;
            if shard.checksum() != recorded {
                return Err(err(format!(
                    "shard {idx} ({file}): manifest records checksum {recorded:016x} \
                     but the file has {:016x}",
                    shard.checksum()
                )));
            }
            let sm = shard.meta();
            let consistent = sm.dataset_n == end - start
                && sm.num_classes == meta.num_classes
                && sm.dataset_name == meta.dataset_name
                && sm.source == meta.source
                && sm.members == meta.members
                && sm.alpha_total.to_bits() == meta.alpha_total.to_bits()
                && sm.alphas.len() == meta.alphas.len()
                && sm
                    .alphas
                    .iter()
                    .zip(&meta.alphas)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !consistent {
                return Err(err(format!(
                    "shard {idx} ({file}): meta disagrees with the manifest's"
                )));
            }
            if let Some(first) = shards.first() {
                if shard.format() != first.format() {
                    return Err(err(format!(
                        "shard {idx} ({file}): format {} but shard 0 is {}",
                        shard.format().name(),
                        first.format().name()
                    )));
                }
            }
            covered = end;
            starts.push(start);
            shards.push(shard);
        }
        if shards.is_empty() {
            return Err(ServeError::Artifact("manifest lists no shards".into()));
        }
        if covered != meta.dataset_n {
            return Err(ServeError::Artifact(format!(
                "shards cover {covered} of {} rows",
                meta.dataset_n
            )));
        }
        let format = shards[0].format();
        Ok(Self {
            meta,
            format,
            checksum: stored,
            shards,
            starts,
        })
    }

    /// The full (unsharded) metadata.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The encoding every shard uses.
    pub fn format(&self) -> ArtifactFormat {
        self.format
    }

    /// The manifest checksum (the composed artifact's cache epoch).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The loaded shards, in node order.
    pub fn shards(&self) -> &[Artifact] {
        &self.shards
    }

    fn stack(&self, get: impl Fn(&Artifact) -> &Matrix) -> Matrix {
        let k = self.meta.num_classes;
        let mut data = Vec::with_capacity(self.meta.dataset_n * k);
        for shard in &self.shards {
            data.extend_from_slice(get(shard).as_slice());
        }
        Matrix::from_vec(self.meta.dataset_n, k, data)
    }

    /// The composed `Σ α_t · proba_t` (shard rows concatenated in node
    /// order — bitwise equal to the unsharded export's).
    pub fn proba_sum(&self) -> Matrix {
        self.stack(Artifact::proba_sum)
    }

    /// The composed `Σ α_t · logits_t`.
    pub fn logits_sum(&self) -> Matrix {
        self.stack(Artifact::logits_sum)
    }

    /// Route a node id to `(shard index, row within that shard)`. Ranges
    /// are contiguous and complete, so every in-range id maps to exactly
    /// one shard.
    pub fn route(&self, node: usize) -> Result<(usize, usize), PredictError> {
        if node >= self.meta.dataset_n {
            return Err(PredictError::NodeOutOfRange {
                node,
                num_nodes: self.meta.dataset_n,
            });
        }
        let shard = self.starts.partition_point(|&s| s <= node) - 1;
        Ok((shard, node - self.starts[shard]))
    }

    fn predict_nodes(&self, ids: &[usize]) -> Result<Prediction, PredictError> {
        // Group the request per shard (local row ids), remembering where
        // each requested row lands so the reply keeps request order.
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut slots: Vec<(usize, usize)> = Vec::with_capacity(ids.len());
        for &id in ids {
            let (shard, local) = self.route(id)?;
            slots.push((shard, per_shard[shard].len()));
            per_shard[shard].push(local);
        }
        let mut partials: Vec<Option<Prediction>> = Vec::with_capacity(self.shards.len());
        for (shard, locals) in self.shards.iter().zip(&per_shard) {
            partials.push(if locals.is_empty() {
                None
            } else {
                Some(shard.predict_batch(&PredictRequest::nodes(locals.clone()))?)
            });
        }
        let k = self.meta.num_classes;
        let mut proba = Matrix::zeros(ids.len(), k);
        let mut pred = Vec::with_capacity(ids.len());
        for (r, &(shard, pos)) in slots.iter().enumerate() {
            let p = partials[shard].as_ref().expect("routed shard executed");
            proba.row_mut(r).copy_from_slice(p.proba.row(pos));
            pred.push(p.pred[pos]);
        }
        Ok(Prediction {
            nodes: ids.to_vec(),
            proba,
            pred,
            kind: PredictionKind::Node,
        })
    }
}

impl Predictor for ShardedArtifact {
    fn num_nodes(&self) -> usize {
        self.meta.dataset_n
    }

    fn num_classes(&self) -> usize {
        self.meta.num_classes
    }

    fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
        match req {
            PredictRequest::ByNodes(ids) => self.predict_nodes(ids),
            PredictRequest::All => {
                self.predict_nodes(&(0..self.meta.dataset_n).collect::<Vec<_>>())
            }
            PredictRequest::ByFeatures(_) => Err(PredictError::FeaturesUnsupported {
                predictor: "sharded artifact",
            }),
        }
    }
}

/// Any artifact kind behind one loader: sniffs the first line, then
/// delegates to [`Artifact::load`], [`ShardedArtifact::load`] or
/// [`MlpArtifact::load`]. This is what the CLI serves from, so `rdd serve`
/// and `rdd artifact-info` take a single file, a manifest, or a distilled
/// student interchangeably — capability differences surface through
/// [`ArtifactFormat::supports_nodes`] / [`ArtifactFormat::supports_features`]
/// and typed [`PredictError`]s, never through separate entry points.
#[derive(Clone, Debug)]
pub enum AnyArtifact {
    /// One single-file ensemble artifact (v1 or v2q).
    Single(Artifact),
    /// A manifest-composed shard set.
    Sharded(ShardedArtifact),
    /// A distilled graph-free MLP student (v3), feature-vector requests
    /// only.
    Mlp(MlpArtifact),
}

impl AnyArtifact {
    /// Load `path` as whichever artifact kind its first line declares.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        use std::io::BufRead as _;
        let file = std::fs::File::open(path)?;
        let mut first = String::new();
        std::io::BufReader::new(file).read_line(&mut first)?;
        let first = first.trim_end();
        if first == MANIFEST_HEADER {
            Ok(AnyArtifact::Sharded(ShardedArtifact::load(path)?))
        } else if first == HEADER_V3_MLP {
            Ok(AnyArtifact::Mlp(MlpArtifact::load(path)?))
        } else {
            Ok(AnyArtifact::Single(Artifact::load(path)?))
        }
    }

    /// The artifact's metadata (the full meta for a shard set; the teacher
    /// run's meta for a distilled student).
    pub fn meta(&self) -> &ArtifactMeta {
        match self {
            AnyArtifact::Single(a) => a.meta(),
            AnyArtifact::Sharded(s) => s.meta(),
            AnyArtifact::Mlp(m) => m.meta(),
        }
    }

    /// The on-disk encoding (every shard of a set shares one).
    pub fn format(&self) -> ArtifactFormat {
        match self {
            AnyArtifact::Single(a) => a.format(),
            AnyArtifact::Sharded(s) => s.format(),
            AnyArtifact::Mlp(m) => m.format(),
        }
    }

    /// The cache-epoch checksum: the file checksum for a single artifact,
    /// the manifest checksum (which commits to every shard) for a set.
    pub fn checksum(&self) -> u64 {
        match self {
            AnyArtifact::Single(a) => a.checksum(),
            AnyArtifact::Sharded(s) => s.checksum(),
            AnyArtifact::Mlp(m) => m.checksum(),
        }
    }

    /// Number of shards (1 for any single-file artifact).
    pub fn num_shards(&self) -> usize {
        match self {
            AnyArtifact::Single(_) | AnyArtifact::Mlp(_) => 1,
            AnyArtifact::Sharded(s) => s.num_shards(),
        }
    }

    /// The distilled student, when this is a v3 artifact.
    pub fn as_mlp(&self) -> Option<&MlpArtifact> {
        match self {
            AnyArtifact::Mlp(m) => Some(m),
            _ => None,
        }
    }

    /// The (composed) `Σ α_t · proba_t`, cloned out. `None` for a v3
    /// student, which stores weight matrices instead of per-node sums.
    pub fn proba_sum(&self) -> Option<Matrix> {
        match self {
            AnyArtifact::Single(a) => Some(a.proba_sum().clone()),
            AnyArtifact::Sharded(s) => Some(s.proba_sum()),
            AnyArtifact::Mlp(_) => None,
        }
    }

    /// The (composed) `Σ α_t · logits_t`, cloned out. `None` for a v3
    /// student.
    pub fn logits_sum(&self) -> Option<Matrix> {
        match self {
            AnyArtifact::Single(a) => Some(a.logits_sum().clone()),
            AnyArtifact::Sharded(s) => Some(s.logits_sum()),
            AnyArtifact::Mlp(_) => None,
        }
    }
}

impl Predictor for AnyArtifact {
    fn num_nodes(&self) -> usize {
        match self {
            AnyArtifact::Single(a) => a.num_nodes(),
            AnyArtifact::Sharded(s) => s.num_nodes(),
            AnyArtifact::Mlp(m) => m.num_nodes(),
        }
    }

    fn num_classes(&self) -> usize {
        match self {
            AnyArtifact::Single(a) => a.num_classes(),
            AnyArtifact::Sharded(s) => s.num_classes(),
            AnyArtifact::Mlp(m) => m.num_classes(),
        }
    }

    fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
        match self {
            AnyArtifact::Single(a) => a.predict_batch(req),
            AnyArtifact::Sharded(s) => s.predict_batch(req),
            AnyArtifact::Mlp(m) => m.predict_batch(req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rdd_shard_unit_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture(n: usize, k: usize) -> (ArtifactMeta, Matrix, Matrix) {
        let meta = ArtifactMeta {
            dataset_name: "unit".into(),
            dataset_n: n,
            num_classes: k,
            source: "unit-test".into(),
            members: 2,
            alphas: vec![1.5, 0.5],
            alpha_total: 2.0,
        };
        let gen = |salt: usize| {
            let data: Vec<f32> = (0..n * k)
                .map(|i| ((i * 37 + salt) % 97) as f32 / 29.0 + 0.125)
                .collect();
            Matrix::from_vec(n, k, data)
        };
        (meta, gen(1), gen(11))
    }

    #[test]
    fn ranges_are_contiguous_complete_and_even() {
        assert_eq!(shard_ranges(10, 1), vec![(0, 10)]);
        assert_eq!(shard_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(shard_ranges(9, 3), vec![(0, 3), (3, 6), (6, 9)]);
        assert_eq!(shard_ranges(3, 3), vec![(0, 1), (1, 2), (2, 3)]);
        for (n, s) in [(100, 7), (5, 5), (64, 8)] {
            let r = shard_ranges(n, s);
            assert_eq!(r.len(), s);
            assert_eq!(r[0].0, 0);
            assert_eq!(r[s - 1].1, n);
            for w in r.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let (min, max) = r
                .iter()
                .map(|(a, b)| b - a)
                .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
            assert!(max - min <= 1, "even split");
        }
    }

    #[test]
    fn sharded_write_load_matches_unsharded_bitwise() {
        let dir = tmpdir("bitwise");
        let (meta, ps, ls) = fixture(11, 3);
        let single_path = dir.join("single.artifact");
        write_artifact_as(&single_path, &meta, &ps, &ls, ArtifactFormat::V1).unwrap();
        let single = Artifact::load(&single_path).unwrap();
        let manifest = dir.join("set.artifact");
        write_sharded(&manifest, &meta, &ps, &ls, ArtifactFormat::V1, 3).unwrap();
        let sharded = ShardedArtifact::load(&manifest).unwrap();
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.num_nodes(), 11);
        let a = single.predict_batch(&PredictRequest::all()).unwrap();
        let b = sharded.predict_batch(&PredictRequest::all()).unwrap();
        assert_eq!(a.pred, b.pred);
        let same = a
            .proba
            .as_slice()
            .iter()
            .zip(b.proba.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "sharded rows must be bitwise equal to unsharded");
        // Subsets route across shard boundaries with order and duplicates.
        let req = PredictRequest::nodes(vec![10, 0, 5, 10]);
        let a = single.predict_batch(&req).unwrap();
        let b = sharded.predict_batch(&req).unwrap();
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.proba.as_slice(), b.proba.as_slice());
    }

    #[test]
    fn every_node_routes_to_exactly_one_shard() {
        let dir = tmpdir("route");
        let (meta, ps, ls) = fixture(23, 2);
        let manifest = dir.join("r.artifact");
        write_sharded(&manifest, &meta, &ps, &ls, ArtifactFormat::V1, 4).unwrap();
        let s = ShardedArtifact::load(&manifest).unwrap();
        let mut per_shard = vec![0usize; s.num_shards()];
        for node in 0..23 {
            let (shard, local) = s.route(node).unwrap();
            assert!(local < s.shards()[shard].num_nodes());
            per_shard[shard] += 1;
        }
        assert_eq!(per_shard.iter().sum::<usize>(), 23);
        assert!(per_shard.iter().all(|&c| c > 0));
        assert!(matches!(
            s.route(23),
            Err(PredictError::NodeOutOfRange { node: 23, .. })
        ));
    }

    #[test]
    fn manifest_corruption_is_a_checksum_error() {
        let dir = tmpdir("corrupt");
        let (meta, ps, ls) = fixture(8, 2);
        let manifest = dir.join("c.artifact");
        write_sharded(&manifest, &meta, &ps, &ls, ArtifactFormat::V1, 2).unwrap();
        let text = std::fs::read_to_string(&manifest).unwrap();
        let mutated = text.replacen("shard 0 0", "shard 0 1", 1);
        std::fs::write(&manifest, &mutated).unwrap();
        assert!(matches!(
            ShardedArtifact::load(&manifest),
            Err(ServeError::Checksum { .. })
        ));
        // Re-checksumming the tampered body gets past integrity and into
        // the structural gap check.
        let body_end = mutated.rfind("\nchecksum ").unwrap() + 1;
        let checksum = fnv1a64(mutated[..body_end].as_bytes());
        std::fs::write(
            &manifest,
            format!("{}checksum {checksum:016x}\n", &mutated[..body_end]),
        )
        .unwrap();
        match ShardedArtifact::load(&manifest) {
            Err(ServeError::Artifact(msg)) => assert!(msg.contains("gap or overlap"), "{msg}"),
            other => panic!(
                "expected a structural error, got {other:?}",
                other = other.err()
            ),
        }
    }

    #[test]
    fn unknown_manifest_version_is_wrong_version() {
        let dir = tmpdir("version");
        let path = dir.join("v.artifact");
        let body = "rdd-artifact-manifest v9\nmeta {}\n";
        let checksum = fnv1a64(body.as_bytes());
        std::fs::write(&path, format!("{body}checksum {checksum:016x}\n")).unwrap();
        assert!(matches!(
            ShardedArtifact::load(&path),
            Err(ServeError::WrongVersion { .. })
        ));
    }

    #[test]
    fn any_artifact_sniffs_both_kinds() {
        let dir = tmpdir("any");
        let (meta, ps, ls) = fixture(6, 2);
        let single = dir.join("one.artifact");
        write_artifact_as(&single, &meta, &ps, &ls, ArtifactFormat::V2q).unwrap();
        let manifest = dir.join("many.artifact");
        write_sharded(&manifest, &meta, &ps, &ls, ArtifactFormat::V2q, 2).unwrap();
        let one = AnyArtifact::load(&single).unwrap();
        let many = AnyArtifact::load(&manifest).unwrap();
        assert!(matches!(one, AnyArtifact::Single(_)));
        assert!(matches!(many, AnyArtifact::Sharded(_)));
        assert_eq!(one.num_shards(), 1);
        assert_eq!(many.num_shards(), 2);
        assert_eq!(one.format(), ArtifactFormat::V2q);
        assert_eq!(many.meta().dataset_n, 6);
        // v2q shards dequantize row-by-row, so composition is still
        // bitwise vs. the single v2q file.
        let a = one.predict_batch(&PredictRequest::all()).unwrap();
        let b = many.predict_batch(&PredictRequest::all()).unwrap();
        let same = a
            .proba
            .as_slice()
            .iter()
            .zip(b.proba.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "v2q sharded rows must match the single v2q file");
    }

    #[test]
    fn single_loader_rejects_a_manifest() {
        let dir = tmpdir("reject");
        let (meta, ps, ls) = fixture(4, 2);
        let manifest = dir.join("m.artifact");
        write_sharded(&manifest, &meta, &ps, &ls, ArtifactFormat::V1, 2).unwrap();
        assert!(matches!(
            Artifact::load(&manifest),
            Err(ServeError::WrongVersion { .. })
        ));
    }
}
