#![warn(missing_docs)]
//! # rdd-serve
//!
//! The inference half of the RDD reproduction: freeze a trained teacher
//! ensemble into a versioned, checksummed **artifact** file and serve
//! predictions from it with zero re-training.
//!
//! * [`artifact`] — `export_run` distills a completed crash-safe run
//!   directory into one artifact file; [`Artifact::load`] validates
//!   header/version, checksum, shapes and finiteness, and the loaded
//!   artifact implements the `Predictor` trait with responses bitwise
//!   identical to the live run's `Ensemble::proba`; the int8-quantized
//!   v2q format ([`quant`]) trades that bitwise guarantee for ~0.3× the
//!   bytes, behind the same loader and trait;
//! * [`shard`] — node-range-sharded artifacts: `write_sharded` splits an
//!   export into K checksummed shard files plus a manifest, and
//!   [`ShardedArtifact`] composes them back behind the same `Predictor`
//!   trait with per-shard rows bitwise identical to the unsharded export
//!   ([`AnyArtifact`] sniffs the first line and loads single-file,
//!   manifest, or v3 student interchangeably);
//! * [`mlp_artifact`] — the v3 (mlp) format: `rdd distill-mlp` freezes a
//!   graph-free distilled student's weight matrices (optionally int8)
//!   into a checksummed artifact; [`MlpArtifact`] serves arbitrary
//!   **feature vectors** (`PredictRequest::ByFeatures`, no adjacency)
//!   through the same canonical forward as every offline comparison, so
//!   served feature replies are bitwise identical to the offline student;
//! * [`engine`] — [`ServeEngine`]: request micro-batching (bounded queue,
//!   flush on size or deadline, optional per-request deadlines shed as
//!   typed [`ServeError::Expired`]) with a per-node LRU prediction cache
//!   keyed by artifact checksum, emitting per-batch latency/cache
//!   telemetry through `rdd-obs`;
//! * [`pool`] — [`ServePool`]: N supervised worker threads over one
//!   bounded queue and a shared lock-partitioned [`ShardedLru`] cache.
//!   A panicking worker requeues its batch (bounded per-request retry
//!   budget, then typed [`ServeError::WorkerFailed`] replies) and is
//!   respawned; hot artifact swap ([`SwapCell`], [`ServePool::swap`])
//!   rolls a new generation in with zero dropped requests, and the
//!   validation-gated [`ServePool::try_swap`] keeps the live generation
//!   when a replacement cannot serve traffic;
//! * [`swap`] — the epoch-tagged swap slot plus [`ArtifactWatcher`]:
//!   mtime polling with full load-and-validate before install
//!   ([`checked_load`]) and exponential capped backoff after failed
//!   loads (swap rollback keeps the old generation live);
//! * [`breaker`] — [`CircuitBreaker`]: a rolling-window overload breaker
//!   (p99 latency + shed rate) that sheds admission with typed
//!   [`ServeError::Overloaded`] replies while open and recovers through
//!   half-open probe rounds;
//! * [`bench`] — a closed-loop throughput bench across
//!   {unbatched, batched} × {cold, warm}, single-threaded or pooled;
//! * [`error`] — [`ServeError`] plus the crate-spanning [`RddError`] the
//!   CLI funnels every subsystem's failures through.
//!
//! ```no_run
//! use rdd_models::PredictRequest;
//! use rdd_serve::{Artifact, ServeConfig, ServeEngine};
//!
//! let artifact = Artifact::load(std::path::Path::new("run.artifact")).unwrap();
//! let epoch = artifact.checksum();
//! let mut engine = ServeEngine::new(artifact, ServeConfig::default(), epoch).unwrap();
//! if let Some(replies) = engine.submit(0, PredictRequest::nodes(vec![42])).unwrap() {
//!     for reply in replies {
//!         println!("{:?}", reply.result.unwrap().pred);
//!     }
//! }
//! ```

pub mod artifact;
pub mod bench;
pub mod breaker;
pub mod cache;
pub mod engine;
pub mod error;
pub mod mlp_artifact;
pub mod pool;
pub mod quant;
pub mod shard;
pub mod swap;

pub use artifact::{
    export_run, export_run_as, fnv1a64, write_artifact, write_artifact_as, write_ensemble,
    write_ensemble_as, Artifact, ArtifactFormat, ArtifactMeta,
};
pub use bench::{bench_artifact, bench_artifact_features, bench_artifact_pooled, BenchResult};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::{LruCache, ShardedLru};
pub use engine::{
    RollingWindow, ServeConfig, ServeEngine, ServeReply, ServeStats, ShedCause, WindowAccum,
    DEFAULT_METRICS_WINDOW_S,
};
pub use error::{RddError, ServeError};
pub use mlp_artifact::{write_mlp_artifact, MlpArtifact};
pub use pool::{PoolConfig, PoolReport, ServePool, WorkerReport};
pub use shard::{export_run_sharded, write_sharded, AnyArtifact, ShardedArtifact};
pub use swap::{checked_load, ArtifactWatcher, SwapCell, WatchOutcome};

#[cfg(test)]
pub(crate) mod testutil {
    /// Fault-injection state is process-global (`rdd_obs::fault`); every
    /// unit test in this crate that arms a spec serializes on this lock,
    /// recovering from poisoning so one failed test cannot cascade.
    pub(crate) static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
