#![warn(missing_docs)]
//! # rdd-serve
//!
//! The inference half of the RDD reproduction: freeze a trained teacher
//! ensemble into a versioned, checksummed **artifact** file and serve
//! predictions from it with zero re-training.
//!
//! * [`artifact`] — `export_run` distills a completed crash-safe run
//!   directory into one artifact file; [`Artifact::load`] validates
//!   header/version, checksum, shapes and finiteness, and the loaded
//!   artifact implements the `Predictor` trait with responses bitwise
//!   identical to the live run's `Ensemble::proba`; the int8-quantized
//!   v2q format ([`quant`]) trades that bitwise guarantee for ~0.3× the
//!   bytes, behind the same loader and trait;
//! * [`engine`] — [`ServeEngine`]: request micro-batching (bounded queue,
//!   flush on size or deadline) with a per-node LRU prediction cache keyed
//!   by artifact checksum, emitting per-batch latency/cache telemetry
//!   through `rdd-obs`;
//! * [`bench`] — a closed-loop throughput bench across
//!   {unbatched, batched} × {cold, warm};
//! * [`error`] — [`ServeError`] plus the crate-spanning [`RddError`] the
//!   CLI funnels every subsystem's failures through.
//!
//! ```no_run
//! use rdd_serve::{Artifact, ServeConfig, ServeEngine};
//!
//! let artifact = Artifact::load(std::path::Path::new("run.artifact")).unwrap();
//! let epoch = artifact.checksum();
//! let mut engine = ServeEngine::new(artifact, ServeConfig::default(), epoch).unwrap();
//! if let Some(replies) = engine.submit(0, Some(vec![42])).unwrap() {
//!     for reply in replies {
//!         println!("{:?}", reply.result.unwrap().pred);
//!     }
//! }
//! ```

pub mod artifact;
pub mod bench;
pub mod cache;
pub mod engine;
pub mod error;
pub mod quant;

pub use artifact::{
    export_run, export_run_as, fnv1a64, write_artifact, write_artifact_as, write_ensemble,
    write_ensemble_as, Artifact, ArtifactFormat, ArtifactMeta,
};
pub use bench::{bench_artifact, BenchResult};
pub use cache::LruCache;
pub use engine::{
    RollingWindow, ServeConfig, ServeEngine, ServeReply, ServeStats, DEFAULT_METRICS_WINDOW_S,
};
pub use error::{RddError, ServeError};
