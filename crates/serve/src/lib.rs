#![warn(missing_docs)]
//! # rdd-serve
//!
//! The inference half of the RDD reproduction: freeze a trained teacher
//! ensemble into a versioned, checksummed **artifact** file and serve
//! predictions from it with zero re-training.
//!
//! * [`artifact`] — `export_run` distills a completed crash-safe run
//!   directory into one artifact file; [`Artifact::load`] validates
//!   header/version, checksum, shapes and finiteness, and the loaded
//!   artifact implements the `Predictor` trait with responses bitwise
//!   identical to the live run's `Ensemble::proba`; the int8-quantized
//!   v2q format ([`quant`]) trades that bitwise guarantee for ~0.3× the
//!   bytes, behind the same loader and trait;
//! * [`shard`] — node-range-sharded artifacts: `write_sharded` splits an
//!   export into K checksummed shard files plus a manifest, and
//!   [`ShardedArtifact`] composes them back behind the same `Predictor`
//!   trait with per-shard rows bitwise identical to the unsharded export
//!   ([`AnyArtifact`] sniffs manifest vs. single-file and loads either);
//! * [`engine`] — [`ServeEngine`]: request micro-batching (bounded queue,
//!   flush on size or deadline, optional per-request deadlines shed as
//!   typed [`ServeError::Expired`]) with a per-node LRU prediction cache
//!   keyed by artifact checksum, emitting per-batch latency/cache
//!   telemetry through `rdd-obs`;
//! * [`pool`] — [`ServePool`]: N worker threads over one bounded queue
//!   and a shared lock-partitioned [`ShardedLru`] cache, with hot
//!   artifact swap ([`SwapCell`], [`ServePool::swap`]) that rolls a new
//!   generation in with zero dropped requests;
//! * [`bench`] — a closed-loop throughput bench across
//!   {unbatched, batched} × {cold, warm}, single-threaded or pooled;
//! * [`error`] — [`ServeError`] plus the crate-spanning [`RddError`] the
//!   CLI funnels every subsystem's failures through.
//!
//! ```no_run
//! use rdd_serve::{Artifact, ServeConfig, ServeEngine};
//!
//! let artifact = Artifact::load(std::path::Path::new("run.artifact")).unwrap();
//! let epoch = artifact.checksum();
//! let mut engine = ServeEngine::new(artifact, ServeConfig::default(), epoch).unwrap();
//! if let Some(replies) = engine.submit(0, Some(vec![42])).unwrap() {
//!     for reply in replies {
//!         println!("{:?}", reply.result.unwrap().pred);
//!     }
//! }
//! ```

pub mod artifact;
pub mod bench;
pub mod cache;
pub mod engine;
pub mod error;
pub mod pool;
pub mod quant;
pub mod shard;
pub mod swap;

pub use artifact::{
    export_run, export_run_as, fnv1a64, write_artifact, write_artifact_as, write_ensemble,
    write_ensemble_as, Artifact, ArtifactFormat, ArtifactMeta,
};
pub use bench::{bench_artifact, bench_artifact_pooled, BenchResult};
pub use cache::{LruCache, ShardedLru};
pub use engine::{
    RollingWindow, ServeConfig, ServeEngine, ServeReply, ServeStats, ShedCause, WindowAccum,
    DEFAULT_METRICS_WINDOW_S,
};
pub use error::{RddError, ServeError};
pub use pool::{PoolConfig, PoolReport, ServePool, WorkerReport};
pub use shard::{export_run_sharded, write_sharded, AnyArtifact, ShardedArtifact};
pub use swap::SwapCell;
