//! Int8 row quantization for the v2q artifact format.
//!
//! Each matrix row is stored affinely: `v ≈ zero + scale · q` with
//! `q ∈ [0, 255]`, `zero = min(row)` and `scale = (max(row) − min(row)) / 255`.
//! A constant row gets `scale = 0` and round-trips exactly. The three
//! values per row are packed binary — `[scale f32 LE][zero f32 LE][k × u8]`
//! — and base64-encoded onto one artifact line, which is what buys the
//! v2q size win over v1's shortest-roundtrip decimal text.
//!
//! Dequantization routes through the SIMD tier
//! ([`rdd_tensor::simd::dequant_u8`]), so a v2q load vectorizes under
//! `RDD_SIMD=auto` and stays scalar-exact under `RDD_SIMD=off`.
//!
//! Drift is reported in ULPs ([`ulp_distance`]): the monotone bit-space
//! distance between the dequantized value and the original. Quantization
//! is lossy by design, so these distances are large near zero (a quant
//! step of ~1e-3 spans millions of ULPs at 1e-7) — the artifact records
//! the *measured* bound so `rdd artifact-info` and ci can check against
//! it rather than against a guess.

use rdd_tensor::{simd, Matrix, SimdTier};

/// One quantized row: the affine parameters plus the u8 codes.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantRow {
    /// Step size `(max − min) / 255`; `0` for a constant row.
    pub scale: f32,
    /// Affine offset, the row minimum.
    pub zero: f32,
    /// One code per column.
    pub q: Vec<u8>,
}

/// Quantize one row. `row` must be non-empty and finite (artifact rows
/// already are — the v1 writer rejects non-finite values upstream).
pub fn quantize_row(row: &[f32]) -> QuantRow {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in row {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let scale = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
    let q = row
        .iter()
        .map(|&v| {
            if scale == 0.0 {
                0u8
            } else {
                // Round-to-nearest code; clamp guards the hi endpoint
                // where fp division can land a hair above 255.
                ((v - lo) / scale).round().clamp(0.0, 255.0) as u8
            }
        })
        .collect();
    QuantRow { scale, zero: lo, q }
}

/// Dequantize into `out` (`out.len() == q.len()`) through the SIMD tier.
pub fn dequantize_row(tier: SimdTier, row: &QuantRow, out: &mut [f32]) {
    simd::dequant_u8(tier, &row.q, row.scale, row.zero, out);
}

/// Quantize then dequantize a full matrix — the loader's view of what a
/// v2q round trip preserves. Used by drift measurement and tests.
pub fn quantize_dequantize(m: &Matrix) -> Matrix {
    let tier = simd::active();
    let (r, c) = m.shape();
    let mut out = Matrix::zeros(r, c);
    for i in 0..r {
        let qr = quantize_row(m.row(i));
        dequantize_row(tier, &qr, out.row_mut(i));
    }
    out
}

/// Monotone bit-space distance between two finite floats: 0 iff equal
/// (−0 and +0 coincide), 1 for adjacent representable values, and
/// strictly increasing with real distance. Signed values map through the
/// standard sign-magnitude-to-lexicographic trick so the metric is
/// continuous across zero.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        (if bits < 0 { i32::MIN - bits } else { bits }) as i64
    }
    (key(a) - key(b)).unsigned_abs()
}

/// Largest [`ulp_distance`] over two same-shape matrices.
pub fn max_ulp_diff(a: &Matrix, b: &Matrix) -> u64 {
    assert_eq!(a.shape(), b.shape(), "ulp diff over mismatched shapes");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| ulp_distance(x, y))
        .max()
        .unwrap_or(0)
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard-alphabet base64 without padding (the decoder derives the
/// byte count from the string length, so padding is dead weight on an
/// artifact line).
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let v = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(B64[(v >> 18) as usize & 63] as char);
        out.push(B64[(v >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(B64[(v >> 6) as usize & 63] as char);
        }
        if chunk.len() > 2 {
            out.push(B64[v as usize & 63] as char);
        }
    }
    out
}

fn b64_val(c: u8) -> Result<u32, String> {
    match c {
        b'A'..=b'Z' => Ok((c - b'A') as u32),
        b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
        b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(format!("invalid base64 byte {:?}", c as char)),
    }
}

/// Decode unpadded base64; rejects bad characters and impossible lengths.
pub fn b64_decode(s: &str) -> Result<Vec<u8>, String> {
    let src = s.as_bytes();
    if src.len() % 4 == 1 {
        return Err(format!("invalid base64 length {}", src.len()));
    }
    let mut out = Vec::with_capacity(src.len() / 4 * 3 + 2);
    for chunk in src.chunks(4) {
        let mut v = 0u32;
        for &c in chunk {
            v = (v << 6) | b64_val(c)?;
        }
        // Left-align the partial group so byte extraction is uniform.
        v <<= 6 * (4 - chunk.len());
        out.push((v >> 16) as u8);
        if chunk.len() > 2 {
            out.push((v >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(v as u8);
        }
    }
    Ok(out)
}

/// Pack one quantized row for an artifact line:
/// `base64([scale f32 LE][zero f32 LE][q …])`.
pub fn encode_qrow(row: &QuantRow) -> String {
    let mut bytes = Vec::with_capacity(8 + row.q.len());
    bytes.extend_from_slice(&row.scale.to_le_bytes());
    bytes.extend_from_slice(&row.zero.to_le_bytes());
    bytes.extend_from_slice(&row.q);
    b64_encode(&bytes)
}

/// Inverse of [`encode_qrow`] for a row of `k` columns. Validates length
/// only — scale/zero sanity is the loader's job (it owns the typed
/// `ServeError` variants).
pub fn decode_qrow(line: &str, k: usize) -> Result<QuantRow, String> {
    let bytes = b64_decode(line)?;
    if bytes.len() != 8 + k {
        return Err(format!(
            "quantized row holds {} bytes, expected {} (8 + {k} codes)",
            bytes.len(),
            8 + k
        ));
    }
    let scale = f32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let zero = f32::from_le_bytes(bytes[4..8].try_into().unwrap());
    Ok(QuantRow {
        scale,
        zero,
        q: bytes[8..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_roundtrips_all_lengths() {
        for len in 0..40usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let enc = b64_encode(&bytes);
            assert_eq!(b64_decode(&enc).unwrap(), bytes, "len {len}");
        }
        // Known vector (RFC 4648 minus padding).
        assert_eq!(b64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(b64_encode(b"foob"), "Zm9vYg");
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(b64_decode("ab!d").is_err());
        assert!(b64_decode("abcde").is_err()); // length ≡ 1 mod 4
    }

    #[test]
    fn constant_row_roundtrips_exactly() {
        let row = [0.25f32; 7];
        let qr = quantize_row(&row);
        assert_eq!(qr.scale, 0.0);
        assert_eq!(qr.zero, 0.25);
        let mut out = [0f32; 7];
        dequantize_row(SimdTier::Scalar, &qr, &mut out);
        assert_eq!(out, row);
    }

    #[test]
    fn quantization_error_is_within_half_a_step() {
        let row: Vec<f32> = (0..97).map(|i| (i as f32 * 0.37).sin()).collect();
        let qr = quantize_row(&row);
        let mut out = vec![0f32; row.len()];
        dequantize_row(SimdTier::Scalar, &qr, &mut out);
        for (a, b) in row.iter().zip(&out) {
            assert!(
                (a - b).abs() <= qr.scale * 0.5 + 1e-6,
                "{a} vs {b} (scale {})",
                qr.scale
            );
        }
        // Endpoints are representable codes, so they survive (to ~1 ulp of
        // the affine arithmetic).
        let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
        assert_eq!(qr.zero, lo);
    }

    #[test]
    fn qrow_line_roundtrips() {
        let qr = QuantRow {
            scale: 0.0125,
            zero: -3.5,
            q: (0..=255u8).collect(),
        };
        let line = encode_qrow(&qr);
        assert!(!line.contains(' ') && !line.contains('\n'));
        assert_eq!(decode_qrow(&line, 256).unwrap(), qr);
        assert!(decode_qrow(&line, 255).unwrap_err().contains("expected"));
    }

    #[test]
    fn ulp_distance_is_a_metric_near_zero() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        // Continuous across the sign change: -0.0 and +0.0 share a key.
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(
            ulp_distance(-f32::MIN_POSITIVE, f32::MIN_POSITIVE),
            0x1000000
        );
        assert!(ulp_distance(-1e-30, 1e-30) < ulp_distance(-1e-3, 1e-3));
        // Symmetry.
        assert_eq!(ulp_distance(2.5, -1.75), ulp_distance(-1.75, 2.5));
    }

    #[test]
    fn max_ulp_diff_over_matrices() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 2.0, f32::from_bits(3.0f32.to_bits() + 4)]);
        assert_eq!(max_ulp_diff(&a, &a), 0);
        assert_eq!(max_ulp_diff(&a, &b), 4);
    }
}
