//! Typed errors for the serving stack, plus the crate-spanning
//! [`RddError`] the CLI funnels every subsystem's failures through.

use rdd_models::{CheckpointError, ConfigError, PredictError};

/// Why an artifact could not be loaded or a request could not be served.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed artifact content (bad header, shape, non-finite value,
    /// trailing garbage, ...).
    Artifact(String),
    /// The artifact declares a format version this build cannot read.
    WrongVersion {
        /// The version line found in the file.
        found: String,
    },
    /// The artifact's stored checksum does not match its content.
    Checksum {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum computed over the file's content.
        computed: u64,
    },
    /// A v2q quantized row carries an unusable scale (non-finite or
    /// negative — a zero scale is the legal constant-row encoding).
    QuantScale {
        /// 1-based artifact line the row sits on.
        line: usize,
        /// The offending scale value.
        value: f32,
    },
    /// A v2q quantized row carries a non-finite zero-point.
    QuantZeroPoint {
        /// 1-based artifact line the row sits on.
        line: usize,
        /// The offending zero-point value.
        value: f32,
    },
    /// The underlying predictor rejected the request.
    Predict(PredictError),
    /// The engine's bounded request queue is full; retry after a flush.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline passed while it waited in the queue; it was
    /// shed before dispatch instead of being served stale.
    Expired {
        /// How long the request had waited when it was shed, milliseconds.
        waited_ms: f64,
    },
    /// A malformed request (e.g. unparseable serve-loop JSON).
    BadRequest(String),
    /// The request's worker panicked and the per-request retry budget is
    /// spent; the supervisor answers with this instead of dropping the
    /// request on the floor.
    WorkerFailed {
        /// How many times the request was requeued before giving up.
        retries: u32,
    },
    /// The overload circuit breaker is open (or half-open past its probe
    /// budget); retry after the advertised delay.
    Overloaded {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: f64,
    },
    /// The pool is shutting down (or already shut down); the request was
    /// answered instead of being dropped with the queue.
    ShuttingDown,
    /// A replacement artifact was rejected by `try_swap` validation; the
    /// live generation was kept.
    SwapRejected(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Artifact(msg) => write!(f, "bad artifact: {msg}"),
            ServeError::WrongVersion { found } => {
                write!(
                    f,
                    "unsupported artifact version: {found:?} (expected {:?}, {:?} or {:?})",
                    crate::artifact::HEADER,
                    crate::artifact::HEADER_V2Q,
                    crate::artifact::HEADER_V3_MLP
                )
            }
            ServeError::Checksum { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            ServeError::QuantScale { line, value } => write!(
                f,
                "line {line}: quantized row has bad scale {value} (need finite, >= 0)"
            ),
            ServeError::QuantZeroPoint { line, value } => write!(
                f,
                "line {line}: quantized row has non-finite zero-point {value}"
            ),
            ServeError::Predict(e) => write!(f, "{e}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "serve queue full ({capacity} pending requests)")
            }
            ServeError::Expired { waited_ms } => {
                write!(
                    f,
                    "request deadline expired after {waited_ms:.3} ms in queue"
                )
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::WorkerFailed { retries } => {
                write!(
                    f,
                    "worker failed after {retries} retries (panic budget spent)"
                )
            }
            ServeError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "overloaded (circuit open); retry after {retry_after_ms:.0} ms"
                )
            }
            ServeError::ShuttingDown => write!(f, "serve pool shutting down"),
            ServeError::SwapRejected(msg) => write!(f, "swap rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Predict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<PredictError> for ServeError {
    fn from(e: PredictError) -> Self {
        ServeError::Predict(e)
    }
}

/// The crate-spanning error: every subsystem's failure type, one `Display`
/// path. The CLI returns `Result<(), RddError>` from each command instead
/// of per-module ad-hoc strings.
#[derive(Debug)]
pub enum RddError {
    /// Crash-safe run directory errors.
    Run(rdd_core::RunError),
    /// Model checkpoint save/load errors.
    Checkpoint(CheckpointError),
    /// Dataset directory load/save errors.
    DatasetIo(rdd_graph::io::IoError),
    /// Rejected configuration values.
    Config(ConfigError),
    /// Artifact / serve-engine errors.
    Serve(ServeError),
    /// Anything else the CLI surfaces (argument parsing, ad-hoc IO).
    Cli(String),
}

impl std::fmt::Display for RddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RddError::Run(e) => write!(f, "{e}"),
            RddError::Checkpoint(e) => write!(f, "{e}"),
            RddError::DatasetIo(e) => write!(f, "{e}"),
            RddError::Config(e) => write!(f, "{e}"),
            RddError::Serve(e) => write!(f, "{e}"),
            RddError::Cli(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RddError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RddError::Run(e) => Some(e),
            RddError::Checkpoint(e) => Some(e),
            RddError::DatasetIo(e) => Some(e),
            RddError::Config(e) => Some(e),
            RddError::Serve(e) => Some(e),
            RddError::Cli(_) => None,
        }
    }
}

impl From<rdd_core::RunError> for RddError {
    fn from(e: rdd_core::RunError) -> Self {
        RddError::Run(e)
    }
}

impl From<CheckpointError> for RddError {
    fn from(e: CheckpointError) -> Self {
        RddError::Checkpoint(e)
    }
}

impl From<rdd_graph::io::IoError> for RddError {
    fn from(e: rdd_graph::io::IoError) -> Self {
        RddError::DatasetIo(e)
    }
}

impl From<ConfigError> for RddError {
    fn from(e: ConfigError) -> Self {
        RddError::Config(e)
    }
}

impl From<ServeError> for RddError {
    fn from(e: ServeError) -> Self {
        RddError::Serve(e)
    }
}

impl From<String> for RddError {
    fn from(msg: String) -> Self {
        RddError::Cli(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_display_path_for_every_subsystem() {
        let cases: Vec<(RddError, &str)> = vec![
            (
                RddError::Run(rdd_core::RunError::Corrupt("bad sums".into())),
                "bad sums",
            ),
            (
                RddError::Config(ConfigError::invalid("rdd.p", 0.0, "a fraction in (0, 1]")),
                "rdd.p",
            ),
            (
                RddError::Serve(ServeError::QueueFull { capacity: 8 }),
                "queue full",
            ),
            (
                RddError::Serve(ServeError::Checksum {
                    stored: 1,
                    computed: 2,
                }),
                "checksum mismatch",
            ),
            (RddError::Cli("unknown flag --frob".into()), "--frob"),
            (
                RddError::Serve(ServeError::WorkerFailed { retries: 2 }),
                "after 2 retries",
            ),
            (
                RddError::Serve(ServeError::Overloaded {
                    retry_after_ms: 750.0,
                }),
                "retry after 750 ms",
            ),
            (RddError::Serve(ServeError::ShuttingDown), "shutting down"),
            (
                RddError::Serve(ServeError::SwapRejected("class count changed".into())),
                "class count",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn from_impls_wrap_each_source() {
        let e: RddError = ConfigError::invalid("train.lr", -1.0, "> 0").into();
        assert!(matches!(e, RddError::Config(_)));
        let e: RddError = ServeError::BadRequest("not json".into()).into();
        assert!(matches!(e, RddError::Serve(_)));
        let e: RddError = String::from("plain").into();
        assert!(matches!(e, RddError::Cli(_)));
        let e: RddError = rdd_core::RunError::Unsupported("v99".into()).into();
        assert!(matches!(e, RddError::Run(_)));
    }
}
