//! A small hand-rolled LRU map (no external deps): `HashMap` for lookup
//! plus an intrusive doubly-linked list over a slot arena for recency
//! order. Used by the serve engine as its prediction cache, and — lock-
//! partitioned as [`ShardedLru`] — as the shared cache behind the
//! multi-worker [`crate::pool::ServePool`], where a single global lock
//! would serialize every worker's row lookups.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map. `get` promotes, `insert`
/// evicts the coldest entry once full.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Clone + Eq + Hash, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be >= 1");
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counted across every [`LruCache::get`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(&self.slots[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert or overwrite `key`, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        let idx = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Recycle the coldest slot.
            let idx = self.tail;
            self.unlink(idx);
            self.map.remove(&self.slots[idx].key);
            self.slots[idx].key = key.clone();
            self.slots[idx].value = value;
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }
}

/// A lock-partitioned LRU: `partitions` independent [`LruCache`]s, each
/// behind its own `Mutex`, with keys routed by hash. Concurrent workers
/// touching different partitions never contend, so the cache stops being a
/// global serialization point. Values are returned by clone (a reference
/// could not outlive the partition lock).
///
/// Eviction is per-partition, so the *global* recency order is only
/// approximate — a hot key can evict a warmer key that hashed to a fuller
/// partition. Capacity is split evenly; each partition holds at least one
/// entry.
pub struct ShardedLru<K, V> {
    partitions: Vec<Mutex<LruCache<K, V>>>,
}

impl<K: Clone + Eq + Hash, V: Clone> ShardedLru<K, V> {
    /// A cache of `capacity` total entries split over `partitions` locks
    /// (both forced to ≥ 1).
    pub fn new(capacity: usize, partitions: usize) -> Self {
        let partitions = partitions.max(1);
        let per = (capacity.max(1)).div_ceil(partitions).max(1);
        Self {
            partitions: (0..partitions)
                .map(|_| Mutex::new(LruCache::new(per)))
                .collect(),
        }
    }

    fn partition(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.partitions[(h.finish() as usize) % self.partitions.len()]
    }

    /// Look up `key` in its partition, promoting it on a hit. Clones the
    /// value out so the partition lock is held only for the lookup.
    pub fn get(&self, key: &K) -> Option<V> {
        self.partition(key).lock().unwrap().get(key).cloned()
    }

    /// Insert or overwrite `key` in its partition, evicting that
    /// partition's coldest entry if full.
    pub fn insert(&self, key: K, value: V) {
        self.partition(&key).lock().unwrap().insert(key, value);
    }

    /// Live entries summed over every partition.
    pub fn len(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.lock().unwrap().len())
            .sum()
    }

    /// Whether every partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` summed over every partition's [`LruCache::stats`].
    pub fn stats(&self) -> (u64, u64) {
        self.partitions.iter().fold((0, 0), |(h, m), p| {
            let (ph, pm) = p.lock().unwrap().stats();
            (h + ph, m + pm)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // promote 1; 2 is now coldest
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let mut c = LruCache::new(1);
        c.insert("x", 1);
        c.insert("y", 2);
        assert_eq!(c.get(&"x"), None);
        assert_eq!(c.get(&"y"), Some(&2));
    }

    #[test]
    fn overwrite_updates_value_and_promotes() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2"); // overwrite promotes 1; 2 is coldest
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.get(&1), Some(&"a2"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(&"c"));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LruCache::new(4);
        c.insert(1, ());
        let _ = c.get(&1);
        let _ = c.get(&1);
        let _ = c.get(&9);
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn many_inserts_stay_within_capacity() {
        let mut c = LruCache::new(8);
        for i in 0..100 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 8);
        for i in 92..100 {
            assert_eq!(c.get(&i), Some(&(i * 10)), "recent key {i} must survive");
        }
        assert_eq!(c.get(&0), None);
    }

    #[test]
    fn sharded_round_trips_and_counts_stats() {
        let c = ShardedLru::new(64, 4);
        assert!(c.is_empty());
        for i in 0..32u64 {
            c.insert(i, i * 3);
        }
        for i in 0..32u64 {
            assert_eq!(c.get(&i), Some(i * 3));
        }
        assert_eq!(c.get(&999), None);
        assert_eq!(c.len(), 32);
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (32, 1));
    }

    #[test]
    fn sharded_capacity_is_bounded_per_partition() {
        let c = ShardedLru::new(8, 4); // 2 entries per partition
        for i in 0..1000u64 {
            c.insert(i, ());
        }
        assert!(c.len() <= 8, "len {} exceeds total capacity", c.len());
    }

    #[test]
    fn sharded_is_safe_under_concurrent_mixed_traffic() {
        let c = std::sync::Arc::new(ShardedLru::new(128, 8));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 31 + i) % 200;
                        c.insert(k, k * 2);
                        if let Some(v) = c.get(&k) {
                            assert_eq!(v, k * 2, "value for {k} corrupted");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 128);
    }
}
