//! Request micro-batching over any [`Predictor`].
//!
//! The engine buffers incoming requests in a bounded queue and executes
//! them in one underlying `predict_batch` call per flush. A flush happens
//! when the queue reaches `batch_size` (inside [`ServeEngine::submit`]) or
//! when the caller's loop notices [`ServeEngine::deadline`] has passed —
//! the engine itself owns no threads or clocks beyond per-request
//! timestamps, so drivers (CLI loop, bench, tests) stay in control.
//!
//! Per-node results are memoized in an [`LruCache`] keyed by
//! `(artifact checksum, node id)`: re-serving a hot node costs a row copy,
//! and because cached rows were produced by the same predictor on the same
//! artifact, cache hits stay bitwise identical to cold executions.
//!
//! [`PredictRequest::ByFeatures`] requests ride the same queue and flush:
//! their rows are stacked per flush (grouped by feature dim) and executed
//! in one predictor call per group, but they **bypass the cache by
//! design** — a feature vector is an arbitrary point in `R^d` with no
//! stable identity to key on, unlike a node id, so caching would either
//! hash raw floats (equality is meaningless under fp noise) or never hit.
//! Node requests keep their dedup + memoization unchanged.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use rdd_models::{ConfigError, PredictRequest, Prediction, PredictionKind, Predictor};
use rdd_obs::{HistSnapshot, ServeMetricsSnapshot};
use rdd_tensor::Matrix;

use crate::cache::LruCache;
use crate::error::ServeError;

/// Online latency histograms (log2-bucket nanoseconds): end-to-end request
/// latency and predictor execution time per flush. Near-free when tracing
/// is off; snapshots appear as `hist` events at every `rdd_obs::flush()`.
static HIST_REQUEST_NS: rdd_obs::HistCell = rdd_obs::HistCell::new("serve.request_ns");
static HIST_EXEC_NS: rdd_obs::HistCell = rdd_obs::HistCell::new("serve.exec_ns");

/// Seconds of history the in-engine rolling metrics window keeps by
/// default (see [`ServeEngine::set_metrics_window`]).
pub const DEFAULT_METRICS_WINDOW_S: usize = 10;

/// Serve-engine tuning knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush as soon as this many requests are queued (≥ 1).
    pub batch_size: usize,
    /// Flush a non-empty queue once its oldest request has waited this
    /// long (the caller polls [`ServeEngine::deadline`]).
    pub max_delay_ms: u64,
    /// Per-node LRU prediction cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Bound on queued requests (≥ 1). [`ServeEngine::submit`] returns
    /// [`ServeError::QueueFull`] beyond it, so a stalled driver sheds load
    /// instead of buffering without limit. The effective batch size is
    /// `min(batch_size, queue_capacity)`.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            batch_size: 32,
            max_delay_ms: 2,
            cache_capacity: 4096,
            queue_capacity: 1024,
        }
    }
}

impl ServeConfig {
    /// Reject zero-sized batch or queue.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_size < 1 {
            return Err(ConfigError::invalid(
                "serve.batch_size",
                self.batch_size,
                ">= 1 request per batch",
            ));
        }
        if self.queue_capacity < 1 {
            return Err(ConfigError::invalid(
                "serve.queue_capacity",
                self.queue_capacity,
                ">= 1 queued request",
            ));
        }
        Ok(())
    }
}

/// One cached per-node result row.
#[derive(Clone)]
pub(crate) struct CachedRow {
    pub(crate) proba: Vec<f32>,
    pub(crate) pred: usize,
}

/// A queued request awaiting dispatch. Shared with [`crate::pool`], whose
/// workers drain the same shape from a cross-thread queue (and clone the
/// claimed descriptors so a panicking batch can be requeued).
#[derive(Clone)]
pub(crate) struct PendingRequest {
    pub(crate) id: u64,
    pub(crate) req: PredictRequest,
    pub(crate) enqueued: Instant,
    /// Shed (typed [`ServeError::Expired`]) instead of dispatched if this
    /// instant passes while the request is still queued.
    pub(crate) deadline: Option<Instant>,
    /// Times this request was requeued after a worker panic (pool
    /// supervision); at the pool's retry budget the supervisor answers
    /// with [`ServeError::WorkerFailed`] instead of requeueing again.
    pub(crate) retries: u32,
}

/// Why a request was shed instead of served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedCause {
    /// Rejected at admission: the bounded queue was at capacity.
    QueueFull,
    /// Dropped post-admission: its deadline passed before dispatch.
    Expired,
}

/// The per-flush cache surface [`execute_batch`] works against: the
/// single-threaded engine's owned [`LruCache`], the pool's shared
/// [`crate::cache::ShardedLru`], or nothing (caching disabled).
pub(crate) trait BatchCache {
    fn lookup(&mut self, key: &(u64, usize)) -> Option<CachedRow>;
    fn store(&mut self, key: (u64, usize), row: CachedRow);
}

impl BatchCache for LruCache<(u64, usize), CachedRow> {
    fn lookup(&mut self, key: &(u64, usize)) -> Option<CachedRow> {
        self.get(key).cloned()
    }
    fn store(&mut self, key: (u64, usize), row: CachedRow) {
        self.insert(key, row);
    }
}

impl BatchCache for &crate::cache::ShardedLru<(u64, usize), CachedRow> {
    fn lookup(&mut self, key: &(u64, usize)) -> Option<CachedRow> {
        crate::cache::ShardedLru::get(self, key)
    }
    fn store(&mut self, key: (u64, usize), row: CachedRow) {
        crate::cache::ShardedLru::insert(self, key, row);
    }
}

/// `None` = caching disabled: every lookup misses, stores are dropped.
impl<C: BatchCache> BatchCache for Option<C> {
    fn lookup(&mut self, key: &(u64, usize)) -> Option<CachedRow> {
        self.as_mut().and_then(|c| c.lookup(key))
    }
    fn store(&mut self, key: (u64, usize), row: CachedRow) {
        if let Some(c) = self.as_mut() {
            c.store(key, row);
        }
    }
}

/// One answered request.
#[derive(Debug)]
pub struct ServeReply {
    /// The caller-assigned request id, echoed back.
    pub id: u64,
    /// The prediction, or why this request failed (other requests in the
    /// same batch are unaffected unless the predictor itself failed).
    pub result: Result<Prediction, ServeError>,
    /// Queue wait + execution time for this request, in milliseconds.
    pub latency_ms: f64,
    /// How many of this request's nodes were served from the cache.
    pub cache_hits: usize,
    /// Artifact generation that served this request (0 until a hot swap;
    /// incremented by every [`crate::pool::ServePool::swap`]). In-flight
    /// requests always finish on the generation they were dispatched with.
    pub generation: u64,
}

/// Engine-lifetime counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Requests answered (including per-request errors).
    pub requests: u64,
    /// Flushes executed.
    pub batches: u64,
    /// Node rows served from the cache.
    pub cache_hits: u64,
    /// Node rows that needed predictor execution.
    pub cache_misses: u64,
    /// Feature-vector rows served (always fresh executions — feature
    /// requests bypass the cache by design).
    pub feature_rows: u64,
    /// Requests rejected at admission (queue full).
    pub shed: u64,
    /// Requests shed post-admission (deadline expired before dispatch).
    pub expired: u64,
    /// Requests answered with [`ServeError::WorkerFailed`] after their
    /// panic retry budget was spent (pool supervision).
    pub failed: u64,
    /// Requests refused at admission by the overload circuit breaker
    /// (typed [`ServeError::Overloaded`]).
    pub rejected: u64,
}

impl ServeStats {
    /// Fold another stats block into this one (used by the pool to merge
    /// per-worker counters).
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.feature_rows += other.feature_rows;
        self.shed += other.shed;
        self.expired += other.expired;
        self.failed += other.failed;
        self.rejected += other.rejected;
    }
}

impl ServeStats {
    /// Cache hit fraction over all node rows served (0 when nothing yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One second of rolling-window metrics. Slots are reused in a ring and
/// lazily reset when their absolute second comes around again.
#[derive(Clone)]
struct WindowSlot {
    /// Absolute second (since the window's origin) this slot holds; the
    /// sentinel `u64::MAX` marks a slot that never recorded.
    second: u64,
    requests: u64,
    /// End-to-end request latency, log2-bucket nanoseconds.
    lat: HistSnapshot,
    queue_peak: u64,
    hits: u64,
    misses: u64,
    shed: u64,
    expired: u64,
}

impl WindowSlot {
    fn empty() -> Self {
        Self {
            second: u64::MAX,
            requests: 0,
            lat: HistSnapshot::new(),
            queue_peak: 0,
            hits: 0,
            misses: 0,
            shed: 0,
            expired: 0,
        }
    }
}

/// A ring of per-second metric slots covering the last N seconds — the
/// live view behind `rdd serve --metrics-every` and the substrate for
/// deadline-aware admission control (ROADMAP item 3). Recording touches
/// one slot; snapshotting merges the slots still inside the window, so
/// stale traffic ages out without any background thread.
pub struct RollingWindow {
    origin: Instant,
    slots: Vec<WindowSlot>,
}

impl RollingWindow {
    /// A window covering the last `window_s` seconds (min 1).
    pub fn new(window_s: usize) -> Self {
        Self {
            origin: Instant::now(),
            slots: vec![WindowSlot::empty(); window_s.max(1)],
        }
    }

    fn now_sec(&self) -> u64 {
        self.origin.elapsed().as_secs()
    }

    /// The current second's slot, reset if the ring has lapped it.
    fn slot_mut(&mut self) -> &mut WindowSlot {
        let now = self.now_sec();
        let idx = (now % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.second != now {
            *slot = WindowSlot::empty();
            slot.second = now;
        }
        slot
    }

    /// Count one completed request with its end-to-end latency.
    pub fn record_request(&mut self, latency: std::time::Duration) {
        let ns = latency.as_nanos() as u64;
        let slot = self.slot_mut();
        slot.requests += 1;
        slot.lat.record(ns);
    }

    /// Raise the window's queue-depth high-water mark.
    pub fn record_queue_depth(&mut self, depth: usize) {
        let slot = self.slot_mut();
        slot.queue_peak = slot.queue_peak.max(depth as u64);
    }

    /// Count cache traffic for one flush.
    pub fn record_cache(&mut self, hits: u64, misses: u64) {
        let slot = self.slot_mut();
        slot.hits += hits;
        slot.misses += misses;
    }

    /// Count one shed request, by cause.
    pub fn record_shed(&mut self, cause: ShedCause) {
        let slot = self.slot_mut();
        match cause {
            ShedCause::QueueFull => slot.shed += 1,
            ShedCause::Expired => slot.expired += 1,
        }
    }

    /// Fold every slot still inside the window into `acc`. The pool calls
    /// this once per worker window (plus the admission-side window) to
    /// publish one merged heartbeat; latency histograms merge losslessly
    /// via the lock-free [`HistSnapshot::merge`].
    pub fn accumulate(&self, acc: &mut WindowAccum) {
        let now = self.now_sec();
        let len = self.slots.len() as u64;
        acc.window_s = acc.window_s.max(len.min(now + 1));
        for slot in &self.slots {
            // Valid = recorded within the last `len` seconds (slot.second
            // is u64::MAX on never-used slots, failing the check).
            if slot.second > now || now - slot.second >= len {
                continue;
            }
            acc.requests += slot.requests;
            acc.queue_peak = acc.queue_peak.max(slot.queue_peak);
            acc.shed += slot.shed;
            acc.expired += slot.expired;
            acc.hits += slot.hits;
            acc.misses += slot.misses;
            acc.lat.merge(&slot.lat);
        }
    }

    /// Merge every slot still inside the window into one snapshot.
    /// Latency percentiles are histogram-derived, so they are accurate to
    /// one log2 bucket.
    pub fn snapshot(&self) -> ServeMetricsSnapshot {
        let mut acc = WindowAccum::new();
        self.accumulate(&mut acc);
        acc.finalize()
    }
}

/// Accumulates one or more [`RollingWindow`]s into a single
/// [`ServeMetricsSnapshot`] — the pool's merged live view across N worker
/// windows.
#[derive(Default)]
pub struct WindowAccum {
    window_s: u64,
    requests: u64,
    queue_peak: u64,
    shed: u64,
    expired: u64,
    hits: u64,
    misses: u64,
    lat: HistSnapshot,
}

impl WindowAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish the merge: derive hit rate and histogram percentiles.
    pub fn finalize(&self) -> ServeMetricsSnapshot {
        let mut m = ServeMetricsSnapshot {
            window_s: self.window_s,
            requests: self.requests,
            queue_peak: self.queue_peak,
            shed: self.shed,
            shed_expired: self.expired,
            ..ServeMetricsSnapshot::default()
        };
        if self.hits + self.misses > 0 {
            m.hit_rate = self.hits as f64 / (self.hits + self.misses) as f64;
        }
        if self.lat.count() > 0 {
            m.p50_ms = self.lat.p50() / 1e6;
            m.p99_ms = self.lat.p99() / 1e6;
        }
        m
    }
}

/// Micro-batching, caching front-end over a [`Predictor`].
pub struct ServeEngine<P: Predictor> {
    predictor: P,
    cfg: ServeConfig,
    /// Cache key epoch — the artifact checksum, so rows from a different
    /// artifact can never alias.
    cache_epoch: u64,
    cache: Option<LruCache<(u64, usize), CachedRow>>,
    pending: VecDeque<PendingRequest>,
    stats: ServeStats,
    metrics: RollingWindow,
}

impl<P: Predictor> ServeEngine<P> {
    /// Build an engine over `predictor`. `cache_epoch` must identify the
    /// frozen model (the artifact checksum); it becomes part of every
    /// cache key.
    pub fn new(predictor: P, cfg: ServeConfig, cache_epoch: u64) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let cache = (cfg.cache_capacity > 0).then(|| LruCache::new(cfg.cache_capacity));
        Ok(Self {
            predictor,
            cfg,
            cache_epoch,
            cache,
            pending: VecDeque::new(),
            stats: ServeStats::default(),
            metrics: RollingWindow::new(DEFAULT_METRICS_WINDOW_S),
        })
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Engine-lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Replace the rolling metrics window with one covering `window_s`
    /// seconds (drops history). Drivers emitting heartbeats every N
    /// seconds should size the window to at least N.
    pub fn set_metrics_window(&mut self, window_s: usize) {
        self.metrics = RollingWindow::new(window_s);
    }

    /// Live metrics over the rolling window: p50/p99 latency (one-log2-
    /// bucket accuracy), queue-depth high-water, cache hit rate, shed
    /// count. Counters cover only the window, unlike [`ServeEngine::stats`].
    pub fn metrics(&self) -> ServeMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Requests currently queued.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// When the oldest queued request must be flushed (`None` while the
    /// queue is empty). Drivers with a blocking input source should wait
    /// no longer than this before calling [`ServeEngine::flush`].
    pub fn deadline(&self) -> Option<Instant> {
        self.pending
            .front()
            .map(|p| p.enqueued + std::time::Duration::from_millis(self.cfg.max_delay_ms))
    }

    /// Enqueue a request — node ids ([`PredictRequest::ByNodes`] /
    /// [`PredictRequest::All`]) or raw feature rows
    /// ([`PredictRequest::ByFeatures`]). Returns `Ok(Some(replies))` when
    /// this submission filled a batch and triggered a flush, `Ok(None)`
    /// when the request is parked, and [`ServeError::QueueFull`] when the
    /// bounded queue is at capacity.
    pub fn submit(
        &mut self,
        id: u64,
        req: PredictRequest,
    ) -> Result<Option<Vec<ServeReply>>, ServeError> {
        self.submit_with_deadline(id, req, None)
    }

    /// [`ServeEngine::submit`] with an optional deadline: if the instant
    /// passes while the request is still queued, the flush sheds it with a
    /// typed [`ServeError::Expired`] reply instead of serving it stale.
    pub fn submit_with_deadline(
        &mut self,
        id: u64,
        req: PredictRequest,
        deadline: Option<Instant>,
    ) -> Result<Option<Vec<ServeReply>>, ServeError> {
        if self.pending.len() >= self.cfg.queue_capacity {
            self.stats.shed += 1;
            self.metrics.record_shed(ShedCause::QueueFull);
            return Err(ServeError::QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        self.pending.push_back(PendingRequest {
            id,
            req,
            enqueued: Instant::now(),
            deadline,
            retries: 0,
        });
        self.metrics.record_queue_depth(self.pending.len());
        if self.pending.len() >= self.cfg.batch_size {
            Ok(Some(self.flush()))
        } else {
            Ok(None)
        }
    }

    /// Execute every queued request as one micro-batch, in submission
    /// order (expired requests are shed first, with typed error replies).
    /// A no-op (empty vec) on an empty queue.
    pub fn flush(&mut self) -> Vec<ServeReply> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let batch: Vec<PendingRequest> = self.pending.drain(..).collect();
        let out = execute_batch(
            0,
            &self.predictor,
            self.cache_epoch,
            0,
            batch,
            &mut self.cache,
        );
        self.stats.requests += out.replies.len() as u64;
        self.stats.batches += 1;
        self.stats.cache_hits += out.hits as u64;
        self.stats.cache_misses += out.nodes_served.saturating_sub(out.hits) as u64;
        self.stats.feature_rows += out.feature_rows as u64;
        self.stats.expired += out.expired as u64;
        for _ in 0..out.expired {
            self.metrics.record_shed(ShedCause::Expired);
        }
        for &lat_ms in &out.latencies {
            self.metrics
                .record_request(std::time::Duration::from_secs_f64(lat_ms / 1e3));
        }
        self.metrics.record_cache(
            out.hits as u64,
            out.nodes_served.saturating_sub(out.hits) as u64,
        );
        out.replies
    }
}

/// What one [`execute_batch`] call produced, for the caller's accounting.
pub(crate) struct FlushOutcome {
    /// Replies in batch order: shed-expired requests first (typed errors),
    /// then served requests in submission order.
    pub(crate) replies: Vec<ServeReply>,
    /// End-to-end latency of each *served* (non-expired) request, ms.
    pub(crate) latencies: Vec<f64>,
    /// Node rows served from the cache.
    pub(crate) hits: usize,
    /// Node rows in successful replies (hits + fresh executions); feature
    /// rows are counted separately and never touch the cache.
    pub(crate) nodes_served: usize,
    /// Feature-vector rows in successful replies (always fresh).
    pub(crate) feature_rows: usize,
    /// Requests shed because their deadline passed before dispatch.
    pub(crate) expired: usize,
}

/// Execute one micro-batch against `predictor`: shed expired requests,
/// serve what `cache` holds under `cache_epoch`, run one deduplicated
/// `predict_batch` over the distinct missing node rows plus one per
/// feature-dim group of stacked feature rows, and assemble per-request
/// replies tagged with `generation`. A failing feature group poisons only
/// its own requests; a failing node execution poisons only node requests.
/// This is the shared core of the single-threaded [`ServeEngine::flush`]
/// and every [`crate::pool`] worker; it records the global serve
/// histograms and emits the per-flush `serve_batch` event under `worker`.
pub(crate) fn execute_batch<P: Predictor, C: BatchCache>(
    worker: usize,
    predictor: &P,
    cache_epoch: u64,
    generation: u64,
    batch: Vec<PendingRequest>,
    cache: &mut C,
) -> FlushOutcome {
    // Chaos site: `panic@serve_batch` exercises the pool supervisor's
    // requeue path from inside the flush core; `slow@serve_batch` inflates
    // batch latency to trip the overload circuit breaker.
    match rdd_obs::fault::fire("serve_batch") {
        Some(rdd_obs::FaultKind::Panic) => {
            panic!("injected panic at serve_batch (RDD_FAULT)")
        }
        Some(rdd_obs::FaultKind::Slow) => {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        _ => {}
    }
    let now = Instant::now();
    let (expired_batch, batch): (Vec<PendingRequest>, Vec<PendingRequest>) = batch
        .into_iter()
        .partition(|r| r.deadline.is_some_and(|d| now >= d));
    let mut replies = Vec::with_capacity(expired_batch.len() + batch.len());
    for req in &expired_batch {
        let waited_ms = req.enqueued.elapsed().as_secs_f64() * 1e3;
        replies.push(ServeReply {
            id: req.id,
            result: Err(ServeError::Expired { waited_ms }),
            latency_ms: waited_ms,
            cache_hits: 0,
            generation,
        });
    }
    let expired = expired_batch.len();
    if batch.is_empty() {
        return FlushOutcome {
            replies,
            latencies: Vec::new(),
            hits: 0,
            nodes_served: 0,
            feature_rows: 0,
            expired,
        };
    }
    let num_nodes = predictor.num_nodes();
    let k = predictor.num_classes();

    // Resolve each request. Node requests serve what the cache already
    // holds and collect the distinct rows that need execution; feature
    // requests stack their rows into one matrix per feature dim (so one
    // predictor call covers every same-dim feature request in the flush)
    // and never consult the cache — see the module docs.
    struct Assembly {
        nodes: Vec<usize>,
        rows: Vec<Option<CachedRow>>,
        hits: usize,
        error: Option<ServeError>,
    }
    enum Plan {
        Nodes(Assembly),
        Features {
            group: usize,
            start: usize,
            len: usize,
        },
    }
    let mut plans: Vec<Plan> = Vec::with_capacity(batch.len());
    let mut miss_order: Vec<usize> = Vec::new();
    let mut miss_set: HashMap<usize, usize> = HashMap::new();
    // One (feature dim → stacked rows) group per distinct column count.
    let mut groups: Vec<(usize, Vec<f32>, usize)> = Vec::new(); // (cols, data, rows)
    let mut group_by_cols: HashMap<usize, usize> = HashMap::new();
    for req in &batch {
        let nodes: Vec<usize> = match &req.req {
            PredictRequest::ByFeatures(rows) => {
                let cols = rows.cols();
                let group = *group_by_cols.entry(cols).or_insert_with(|| {
                    groups.push((cols, Vec::new(), 0));
                    groups.len() - 1
                });
                let (_, data, stacked) = &mut groups[group];
                let start = *stacked;
                data.extend_from_slice(rows.as_slice());
                *stacked += rows.rows();
                plans.push(Plan::Features {
                    group,
                    start,
                    len: rows.rows(),
                });
                continue;
            }
            PredictRequest::ByNodes(ids) => ids.clone(),
            PredictRequest::All => (0..num_nodes).collect(),
        };
        if let Some(&bad) = nodes.iter().find(|&&id| id >= num_nodes) {
            plans.push(Plan::Nodes(Assembly {
                nodes,
                rows: Vec::new(),
                hits: 0,
                error: Some(ServeError::Predict(
                    rdd_models::PredictError::NodeOutOfRange {
                        node: bad,
                        num_nodes,
                    },
                )),
            }));
            continue;
        }
        let mut rows: Vec<Option<CachedRow>> = Vec::with_capacity(nodes.len());
        let mut hits = 0usize;
        for &node in &nodes {
            match cache.lookup(&(cache_epoch, node)) {
                Some(row) => {
                    hits += 1;
                    rows.push(Some(row));
                }
                None => {
                    if let std::collections::hash_map::Entry::Vacant(slot) = miss_set.entry(node) {
                        slot.insert(miss_order.len());
                        miss_order.push(node);
                    }
                    rows.push(None);
                }
            }
        }
        plans.push(Plan::Nodes(Assembly {
            nodes,
            rows,
            hits,
            error: None,
        }));
    }

    // One predictor execution covers every distinct missing node, plus
    // one per feature group.
    let exec_start = Instant::now();
    let fresh: Result<Option<Prediction>, rdd_models::PredictError> = if miss_order.is_empty() {
        Ok(None)
    } else {
        predictor
            .predict_batch(&PredictRequest::nodes(miss_order.clone()))
            .map(Some)
    };
    let group_results: Vec<Result<Prediction, rdd_models::PredictError>> = groups
        .into_iter()
        .map(|(cols, data, rows)| {
            let stacked = Matrix::from_vec(rows, cols, data);
            predictor.predict_batch(&PredictRequest::ByFeatures(stacked))
        })
        .collect();
    let exec_ms = exec_start.elapsed().as_secs_f64() * 1e3;

    let node_exec_err = fresh.as_ref().err().cloned();
    let fresh = fresh.ok().flatten();
    if let Some(fresh) = &fresh {
        for (r, &node) in fresh.nodes.iter().enumerate() {
            cache.store(
                (cache_epoch, node),
                CachedRow {
                    proba: fresh.proba.row(r).to_vec(),
                    pred: fresh.pred[r],
                },
            );
        }
    }
    let mut latencies = Vec::with_capacity(batch.len());
    for (req, plan) in batch.iter().zip(plans) {
        let latency_ms = req.enqueued.elapsed().as_secs_f64() * 1e3;
        latencies.push(latency_ms);
        let (result, cache_hits) = match plan {
            Plan::Features { group, start, len } => match &group_results[group] {
                // A failing feature group (dim mismatch, node-only
                // artifact) answers only its own requests.
                Err(e) => (Err(ServeError::Predict(e.clone())), 0),
                Ok(p) => {
                    let mut proba = Matrix::zeros(len, p.proba.cols());
                    let mut pred = Vec::with_capacity(len);
                    for r in 0..len {
                        proba.row_mut(r).copy_from_slice(p.proba.row(start + r));
                        pred.push(p.pred[start + r]);
                    }
                    (
                        Ok(Prediction {
                            nodes: (0..len).collect(),
                            proba,
                            pred,
                            kind: PredictionKind::Features,
                        }),
                        0,
                    )
                }
            },
            Plan::Nodes(asm) => {
                if let Some(e) = &node_exec_err {
                    // The node execution itself failed (e.g. empty
                    // ensemble): every node request gets the error.
                    (Err(ServeError::Predict(e.clone())), 0)
                } else if let Some(error) = asm.error {
                    (Err(error), 0)
                } else {
                    let mut proba = Matrix::zeros(asm.nodes.len(), k);
                    let mut pred = Vec::with_capacity(asm.nodes.len());
                    for (r, (node, row)) in asm.nodes.iter().zip(asm.rows).enumerate() {
                        match row {
                            Some(cached) => {
                                proba.row_mut(r).copy_from_slice(&cached.proba);
                                pred.push(cached.pred);
                            }
                            None => {
                                let fresh = fresh.as_ref().expect("misses imply an execution");
                                let fr = miss_set[node];
                                proba.row_mut(r).copy_from_slice(fresh.proba.row(fr));
                                pred.push(fresh.pred[fr]);
                            }
                        }
                    }
                    (
                        Ok(Prediction {
                            nodes: asm.nodes,
                            proba,
                            pred,
                            kind: PredictionKind::Node,
                        }),
                        asm.hits,
                    )
                }
            }
        };
        replies.push(ServeReply {
            id: req.id,
            result,
            latency_ms,
            cache_hits,
            generation,
        });
    }

    let mut nodes_served = 0usize;
    let mut feature_rows = 0usize;
    for r in &replies {
        if let Ok(p) = &r.result {
            match p.kind {
                PredictionKind::Node => nodes_served += p.nodes.len(),
                PredictionKind::Features => feature_rows += p.proba.rows(),
            }
        }
    }
    let hits: usize = replies.iter().map(|r| r.cache_hits).sum();
    HIST_EXEC_NS.record((exec_ms * 1e6) as u64);
    for &lat_ms in &latencies {
        HIST_REQUEST_NS.record((lat_ms * 1e6) as u64);
    }
    rdd_obs::emit_serve_batch(
        worker,
        batch.len(),
        nodes_served + feature_rows,
        hits,
        nodes_served.saturating_sub(hits),
        exec_ms,
        &latencies,
    );
    FlushOutcome {
        replies,
        latencies,
        hits,
        nodes_served,
        feature_rows,
        expired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_models::PredictError;

    /// A deterministic in-memory predictor: proba(node) = f(node).
    struct FakePredictor {
        proba: Matrix,
        calls: std::cell::Cell<usize>,
        nodes_executed: std::cell::Cell<usize>,
    }

    impl FakePredictor {
        fn new(n: usize, k: usize) -> Self {
            let mut data = Vec::with_capacity(n * k);
            for i in 0..n {
                for j in 0..k {
                    data.push(((i * 31 + j * 7) % 13) as f32 / 13.0 + 0.01);
                }
            }
            Self {
                proba: Matrix::from_vec(n, k, data),
                calls: std::cell::Cell::new(0),
                nodes_executed: std::cell::Cell::new(0),
            }
        }
    }

    impl Predictor for FakePredictor {
        fn num_nodes(&self) -> usize {
            self.proba.rows()
        }
        fn num_classes(&self) -> usize {
            self.proba.cols()
        }
        fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
            self.calls.set(self.calls.get() + 1);
            // Feature rows: require dim == k and answer softmax(row), a
            // deterministic stand-in for a distilled student forward.
            if let PredictRequest::ByFeatures(rows) = req {
                if rows.cols() != self.proba.cols() {
                    return Err(PredictError::FeatureDimMismatch {
                        got: rows.cols(),
                        expected: self.proba.cols(),
                    });
                }
                self.nodes_executed
                    .set(self.nodes_executed.get() + rows.rows());
                let proba = rows.softmax_rows();
                return Ok(Prediction {
                    nodes: (0..rows.rows()).collect(),
                    pred: proba.argmax_rows(),
                    proba,
                    kind: rdd_models::PredictionKind::Features,
                });
            }
            let out = rdd_models::gather_prediction(&self.proba, req)?;
            self.nodes_executed
                .set(self.nodes_executed.get() + out.nodes.len());
            Ok(out)
        }
    }

    fn engine(cfg: ServeConfig) -> ServeEngine<FakePredictor> {
        ServeEngine::new(FakePredictor::new(20, 3), cfg, 0xabcd).unwrap()
    }

    #[test]
    fn config_rejects_zero_sizes() {
        let cfg = ServeConfig {
            batch_size: 0,
            ..ServeConfig::default()
        };
        assert_eq!(cfg.validate().unwrap_err().field, "serve.batch_size");
        let cfg = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert_eq!(cfg.validate().unwrap_err().field, "serve.queue_capacity");
    }

    #[test]
    fn batch_size_triggers_flush() {
        let mut e = engine(ServeConfig {
            batch_size: 3,
            ..ServeConfig::default()
        });
        assert!(e
            .submit(0, PredictRequest::nodes(vec![1]))
            .unwrap()
            .is_none());
        assert!(e
            .submit(1, PredictRequest::nodes(vec![2]))
            .unwrap()
            .is_none());
        assert!(e.deadline().is_some());
        let replies = e
            .submit(2, PredictRequest::nodes(vec![3]))
            .unwrap()
            .expect("third fills the batch");
        assert_eq!(replies.len(), 3);
        assert_eq!(e.pending_len(), 0);
        assert!(e.deadline().is_none());
        // One underlying execution for the whole batch.
        assert_eq!(e.predictor().calls.get(), 1);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            let p = r.result.as_ref().unwrap();
            assert_eq!(p.nodes, vec![i + 1]);
            assert!(r.latency_ms >= 0.0);
        }
    }

    #[test]
    fn replies_match_direct_prediction_bitwise() {
        let mut e = engine(ServeConfig {
            batch_size: 2,
            ..ServeConfig::default()
        });
        let direct = e.predictor().proba.clone();
        e.submit(0, PredictRequest::nodes(vec![4, 9, 4])).unwrap();
        let replies = e.submit(1, PredictRequest::all()).unwrap().expect("flush");
        let p0 = replies[0].result.as_ref().unwrap();
        for (r, &node) in p0.nodes.iter().enumerate() {
            let same = p0
                .proba
                .row(r)
                .iter()
                .zip(direct.row(node))
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "batched row for node {node} drifted");
        }
        let p1 = replies[1].result.as_ref().unwrap();
        assert_eq!(p1.nodes.len(), 20);
        assert_eq!(p1.proba.as_slice(), direct.as_slice());
    }

    #[test]
    fn cache_serves_repeats_without_reexecution() {
        let mut e = engine(ServeConfig {
            batch_size: 1,
            cache_capacity: 64,
            ..ServeConfig::default()
        });
        let cold = e
            .submit(0, PredictRequest::nodes(vec![5, 6]))
            .unwrap()
            .expect("flush");
        assert_eq!(cold[0].cache_hits, 0);
        let executed_after_cold = e.predictor().nodes_executed.get();
        let warm = e
            .submit(1, PredictRequest::nodes(vec![6, 5]))
            .unwrap()
            .expect("flush");
        assert_eq!(warm[0].cache_hits, 2);
        assert_eq!(
            e.predictor().nodes_executed.get(),
            executed_after_cold,
            "warm request must not re-execute"
        );
        // Warm rows are bitwise identical to cold ones.
        let cold_p = cold[0].result.as_ref().unwrap();
        let warm_p = warm[0].result.as_ref().unwrap();
        assert_eq!(warm_p.proba.row(0), cold_p.proba.row(1));
        assert_eq!(warm_p.proba.row(1), cold_p.proba.row(0));
        let stats = e.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_nodes_in_one_batch_execute_once() {
        let mut e = engine(ServeConfig {
            batch_size: 3,
            cache_capacity: 0, // even uncached, a batch dedups its misses
            ..ServeConfig::default()
        });
        e.submit(0, PredictRequest::nodes(vec![7, 8])).unwrap();
        e.submit(1, PredictRequest::nodes(vec![8, 7])).unwrap();
        let replies = e
            .submit(2, PredictRequest::nodes(vec![7]))
            .unwrap()
            .expect("flush");
        assert_eq!(e.predictor().nodes_executed.get(), 2, "7 and 8, once each");
        assert_eq!(replies[2].result.as_ref().unwrap().pred.len(), 1);
    }

    #[test]
    fn queue_full_is_a_typed_error() {
        let mut e = engine(ServeConfig {
            batch_size: 10,
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        e.submit(0, PredictRequest::nodes(vec![0])).unwrap();
        e.submit(1, PredictRequest::nodes(vec![1])).unwrap();
        let err = e.submit(2, PredictRequest::nodes(vec![2])).unwrap_err();
        assert!(matches!(err, ServeError::QueueFull { capacity: 2 }));
        // A manual (deadline-path) flush drains the queue and unblocks.
        let replies = e.flush();
        assert_eq!(replies.len(), 2);
        assert!(e
            .submit(2, PredictRequest::nodes(vec![2]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn expired_requests_shed_with_typed_error() {
        let mut e = engine(ServeConfig {
            batch_size: 10,
            ..ServeConfig::default()
        });
        // A deadline of "now" is already past when the flush runs.
        e.submit_with_deadline(0, PredictRequest::nodes(vec![1]), Some(Instant::now()))
            .unwrap();
        e.submit(1, PredictRequest::nodes(vec![2])).unwrap();
        let replies = e.flush();
        assert_eq!(replies.len(), 2);
        let shed = replies.iter().find(|r| r.id == 0).unwrap();
        assert!(
            matches!(shed.result, Err(ServeError::Expired { waited_ms }) if waited_ms >= 0.0),
            "expired request must get the typed error"
        );
        let served = replies.iter().find(|r| r.id == 1).unwrap();
        assert!(served.result.is_ok(), "live request must still serve");
        assert_eq!(e.stats().expired, 1);
        assert_eq!(e.stats().shed, 0, "expired is not queue-full shed");
        let m = e.metrics();
        assert_eq!(m.shed_expired, 1);
        assert_eq!(m.shed, 0);
        assert_eq!(m.requests, 1, "shed request is not a served request");
    }

    #[test]
    fn future_deadlines_serve_normally_with_generation_zero() {
        let mut e = engine(ServeConfig {
            batch_size: 1,
            ..ServeConfig::default()
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        let replies = e
            .submit_with_deadline(0, PredictRequest::nodes(vec![3]), Some(deadline))
            .unwrap()
            .expect("flush");
        assert!(replies[0].result.is_ok());
        assert_eq!(replies[0].generation, 0, "no swap ever happened");
        assert_eq!(e.stats().expired, 0);
    }

    #[test]
    fn out_of_range_request_fails_alone() {
        let mut e = engine(ServeConfig {
            batch_size: 2,
            ..ServeConfig::default()
        });
        e.submit(0, PredictRequest::nodes(vec![999])).unwrap();
        let replies = e
            .submit(1, PredictRequest::nodes(vec![3]))
            .unwrap()
            .expect("flush");
        assert!(matches!(
            replies[0].result,
            Err(ServeError::Predict(PredictError::NodeOutOfRange {
                node: 999,
                ..
            }))
        ));
        assert!(replies[1].result.is_ok(), "valid request must still serve");
    }

    #[test]
    fn feature_requests_serve_with_kind_and_row_indices() {
        let mut e = engine(ServeConfig {
            batch_size: 1,
            ..ServeConfig::default()
        });
        let rows = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32 * 0.5);
        let replies = e
            .submit(7, PredictRequest::features(rows.clone()))
            .unwrap()
            .expect("flush");
        let p = replies[0].result.as_ref().unwrap();
        assert_eq!(p.kind, rdd_models::PredictionKind::Features);
        assert_eq!(p.nodes, vec![0, 1], "feature replies index their rows");
        let direct = rows.softmax_rows();
        assert_eq!(p.proba.as_slice(), direct.as_slice(), "bitwise vs direct");
        assert_eq!(e.stats().feature_rows, 2);
        assert_eq!(e.stats().cache_misses, 0, "feature rows are not misses");
    }

    #[test]
    fn mixed_batch_serves_nodes_and_features_in_one_flush() {
        let mut e = engine(ServeConfig {
            batch_size: 3,
            cache_capacity: 64,
            ..ServeConfig::default()
        });
        e.submit(0, PredictRequest::nodes(vec![4])).unwrap();
        e.submit(
            1,
            PredictRequest::features(Matrix::from_fn(1, 3, |_, j| j as f32)),
        )
        .unwrap();
        let replies = e
            .submit(2, PredictRequest::nodes(vec![5]))
            .unwrap()
            .expect("flush");
        assert_eq!(replies.len(), 3);
        assert_eq!(
            replies[0].result.as_ref().unwrap().kind,
            rdd_models::PredictionKind::Node
        );
        assert_eq!(
            replies[1].result.as_ref().unwrap().kind,
            rdd_models::PredictionKind::Features
        );
        assert!(replies[2].result.is_ok());
        let stats = e.stats();
        assert_eq!(stats.feature_rows, 1);
        assert_eq!(stats.cache_misses, 2, "only node rows touch the cache");
        // Two predictor calls: one node dedup batch + one feature group.
        assert_eq!(e.predictor().calls.get(), 2);
    }

    #[test]
    fn same_dim_feature_requests_share_one_execution() {
        let mut e = engine(ServeConfig {
            batch_size: 2,
            ..ServeConfig::default()
        });
        e.submit(
            0,
            PredictRequest::features(Matrix::from_fn(2, 3, |i, j| (i + j) as f32)),
        )
        .unwrap();
        let replies = e
            .submit(
                1,
                PredictRequest::features(Matrix::from_fn(1, 3, |_, j| j as f32 * 2.0)),
            )
            .unwrap()
            .expect("flush");
        assert_eq!(e.predictor().calls.get(), 1, "one stacked group call");
        assert_eq!(replies[0].result.as_ref().unwrap().proba.rows(), 2);
        assert_eq!(replies[0].result.as_ref().unwrap().nodes, vec![0, 1]);
        let p1 = replies[1].result.as_ref().unwrap();
        assert_eq!(p1.proba.rows(), 1);
        assert_eq!(p1.nodes, vec![0], "row indices are request-local");
        let direct = Matrix::from_fn(1, 3, |_, j| j as f32 * 2.0).softmax_rows();
        assert_eq!(p1.proba.as_slice(), direct.as_slice());
    }

    #[test]
    fn bad_dim_feature_group_fails_alone() {
        let mut e = engine(ServeConfig {
            batch_size: 2,
            ..ServeConfig::default()
        });
        e.submit(
            0,
            PredictRequest::features(Matrix::from_fn(1, 5, |_, j| j as f32)),
        )
        .unwrap();
        let replies = e
            .submit(1, PredictRequest::nodes(vec![3]))
            .unwrap()
            .expect("flush");
        assert!(matches!(
            replies[0].result,
            Err(ServeError::Predict(PredictError::FeatureDimMismatch {
                got: 5,
                expected: 3
            }))
        ));
        assert!(replies[1].result.is_ok(), "node request must still serve");
    }

    #[test]
    fn repeated_feature_rows_never_hit_the_cache() {
        let mut e = engine(ServeConfig {
            batch_size: 1,
            cache_capacity: 64,
            ..ServeConfig::default()
        });
        let rows = Matrix::from_fn(1, 3, |_, j| j as f32);
        let a = e
            .submit(0, PredictRequest::features(rows.clone()))
            .unwrap()
            .expect("flush");
        let b = e
            .submit(1, PredictRequest::features(rows))
            .unwrap()
            .expect("flush");
        assert_eq!(a[0].cache_hits, 0);
        assert_eq!(b[0].cache_hits, 0);
        assert_eq!(e.predictor().calls.get(), 2, "every feature row executes");
        assert_eq!(e.stats().cache_hits, 0);
        // Identical inputs through the same frozen weights still agree
        // bitwise — reproducibility comes from the forward, not the cache.
        assert_eq!(
            a[0].result.as_ref().unwrap().proba.as_slice(),
            b[0].result.as_ref().unwrap().proba.as_slice()
        );
    }

    #[test]
    fn flush_on_empty_queue_is_a_noop() {
        let mut e = engine(ServeConfig::default());
        assert!(e.flush().is_empty());
        assert_eq!(e.stats().batches, 0);
    }

    #[test]
    fn rolling_window_tracks_requests_cache_queue_and_shed() {
        let mut e = engine(ServeConfig {
            batch_size: 2,
            queue_capacity: 2,
            cache_capacity: 64,
            ..ServeConfig::default()
        });
        e.submit(0, PredictRequest::nodes(vec![1])).unwrap();
        e.submit(1, PredictRequest::nodes(vec![2]))
            .unwrap()
            .expect("flush");
        // Same nodes again: all cache hits this time.
        e.submit(2, PredictRequest::nodes(vec![1])).unwrap();
        e.submit(3, PredictRequest::nodes(vec![2]))
            .unwrap()
            .expect("flush");
        let m = e.metrics();
        assert_eq!(m.requests, 4);
        assert_eq!(m.queue_peak, 2, "two requests were queued before a flush");
        assert!((m.hit_rate - 0.5).abs() < 1e-12, "2 of 4 rows were hits");
        assert_eq!(m.shed, 0);
        assert!(m.p50_ms >= 0.0 && m.p99_ms >= m.p50_ms);
        assert!(m.window_s >= 1);

        // Fill the queue without reaching batch_size, then overflow it.
        let mut e = engine(ServeConfig {
            batch_size: 10,
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        e.submit(0, PredictRequest::nodes(vec![0])).unwrap();
        e.submit(1, PredictRequest::nodes(vec![1])).unwrap();
        assert!(e.submit(2, PredictRequest::nodes(vec![2])).is_err());
        assert_eq!(e.stats().shed, 1);
        assert_eq!(e.metrics().shed, 1);
    }

    #[test]
    fn window_percentiles_match_exact_within_one_log2_bucket() {
        let mut w = RollingWindow::new(5);
        // 1..=1000 µs uniform: exact p50 = 501 µs, p99 = 991 µs.
        let samples_ms: Vec<f64> = (1..=1000).map(|i| i as f64 / 1000.0).collect();
        for &ms in &samples_ms {
            w.record_request(std::time::Duration::from_secs_f64(ms / 1e3));
        }
        let m = w.snapshot();
        assert_eq!(m.requests, 1000);
        let exact = rdd_obs::sample_stats(&samples_ms).unwrap();
        for (hist, exact) in [(m.p50_ms, exact.p50), (m.p99_ms, exact.p99)] {
            let ratio = hist / exact;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "histogram percentile {hist} vs exact {exact}: off by more than one log2 bucket"
            );
        }
    }
}
