//! The frozen model artifact: one versioned, checksummed file distilled
//! from a completed crash-safe run directory.
//!
//! v1 layout (text, mirroring the checkpoint format so the same tooling
//! habits apply):
//!
//! ```text
//! rdd-artifact v1
//! meta {"dataset":{...},"source":...,"members":...,"alphas":[...],"alpha_total":...}
//! matrix <n> <k>
//! <n rows of k floats>          # Σ α_t · proba_t
//! matrix <n> <k>
//! <n rows of k floats>          # Σ α_t · logits_t
//! checksum <16 hex digits>      # FNV-1a 64 over every preceding byte
//! ```
//!
//! Floats are written with Rust's shortest-roundtrip `Display`, so a load
//! reproduces the exporter's values bitwise — and because the file stores
//! the ensemble's *running sums* plus `alpha_total` (not the normalized
//! proba), [`Artifact::proba`] performs the exact same
//! `sum · (1/alpha_total)` scaling as `Ensemble::proba`, keeping served
//! responses bit-identical to the live run's.
//!
//! The quantized v2q layout (`rdd export --quantize int8`) swaps each
//! `matrix` block for a `qmatrix` block whose rows are int8-quantized and
//! base64-packed (see [`crate::quant`]):
//!
//! ```text
//! rdd-artifact v2q
//! meta {...}                    # identical meta line
//! qmatrix <n> <k> int8
//! <n base64 lines: [scale f32 LE][zero f32 LE][k codes]>
//! qmatrix <n> <k> int8
//! <n base64 lines>
//! checksum <16 hex digits>      # same FNV-1a 64 discipline
//! ```
//!
//! A v2q load dequantizes into the same dense [`Artifact`] the v1 path
//! produces, so the serve engine, cache and [`Predictor`] contract are
//! format-blind. v2q trades the v1 bitwise guarantee for ~0.3× the bytes;
//! the drift is bounded per row by half a quant step and is measurable
//! with `rdd artifact-info --reference`.

use std::path::Path;

use rdd_core::{Ensemble, RunState};
use rdd_models::{gather_prediction, PredictError, PredictRequest, Prediction, Predictor};
use rdd_obs::Json;
use rdd_tensor::Matrix;

use crate::error::{RddError, ServeError};
use crate::quant;

/// First line of a full-precision v1 artifact.
pub const HEADER: &str = "rdd-artifact v1";

/// First line of an int8-quantized v2q artifact.
pub const HEADER_V2Q: &str = "rdd-artifact v2q";

/// First line of a distilled-MLP v3 artifact (weight matrices, not
/// per-node sums; see [`crate::mlp_artifact`]).
pub const HEADER_V3_MLP: &str = "rdd-artifact v3 (mlp)";

/// Which on-disk encoding an artifact was loaded from (or should be
/// written in) — the single source of truth for version-string checks
/// and for what request shapes each format can answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactFormat {
    /// Full-precision decimal text; loads reproduce the exporter bitwise.
    V1,
    /// Per-row affine int8, base64-packed; lossy but ~0.3× the size.
    V2q,
    /// A distilled graph-free MLP student: weight matrices (optionally
    /// int8-quantized per block) instead of per-node distribution sums.
    V3Mlp,
}

impl ArtifactFormat {
    /// The format's header line.
    pub fn header(self) -> &'static str {
        match self {
            ArtifactFormat::V1 => HEADER,
            ArtifactFormat::V2q => HEADER_V2Q,
            ArtifactFormat::V3Mlp => HEADER_V3_MLP,
        }
    }

    /// Short name for CLI output (`v1` / `v2q` / `v3-mlp`).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactFormat::V1 => "v1",
            ArtifactFormat::V2q => "v2q",
            ArtifactFormat::V3Mlp => "v3-mlp",
        }
    }

    /// Whether this format answers raw feature-vector requests
    /// (`PredictRequest::ByFeatures`). Only the MLP student can — it
    /// stores weight matrices and needs no adjacency.
    pub fn supports_features(self) -> bool {
        matches!(self, ArtifactFormat::V3Mlp)
    }

    /// Whether this format answers node-id requests
    /// (`PredictRequest::ByNodes` / `All`). Node-sum formats do; the MLP
    /// student stores no per-node rows.
    pub fn supports_nodes(self) -> bool {
        !matches!(self, ArtifactFormat::V3Mlp)
    }
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty for
/// integrity (corruption, truncation), which is all the checksum guards.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything about the artifact except the matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct ArtifactMeta {
    /// Dataset name the run was trained on.
    pub dataset_name: String,
    /// Number of nodes.
    pub dataset_n: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Dataset source string (preset name or TSV directory).
    pub source: String,
    /// Number of kept ensemble members.
    pub members: usize,
    /// Per-member ensemble weights `α_t`, in push order.
    pub alphas: Vec<f32>,
    /// `Σ α_t`.
    pub alpha_total: f32,
}

impl ArtifactMeta {
    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "dataset".into(),
                Json::Obj(vec![
                    ("name".into(), Json::from(self.dataset_name.as_str())),
                    ("n".into(), Json::from(self.dataset_n)),
                    ("num_classes".into(), Json::from(self.num_classes)),
                ]),
            ),
            ("source".into(), Json::from(self.source.as_str())),
            ("members".into(), Json::from(self.members)),
            ("alphas".into(), Json::from(self.alphas.clone())),
            ("alpha_total".into(), Json::from(self.alpha_total)),
        ])
    }

    pub(crate) fn from_json(json: &Json) -> Result<Self, String> {
        let dataset = json.get("dataset").ok_or("meta missing 'dataset'")?;
        let str_of = |obj: &Json, key: &str| -> Result<String, String> {
            Ok(obj
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("meta missing string '{key}'"))?
                .to_string())
        };
        let usize_of = |obj: &Json, key: &str| -> Result<usize, String> {
            let v = obj
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("meta missing number '{key}'"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("meta '{key}' is not a non-negative integer: {v}"));
            }
            Ok(v as usize)
        };
        let alphas = json
            .get("alphas")
            .and_then(Json::as_arr)
            .ok_or("meta missing array 'alphas'")?
            .iter()
            .map(|v| v.as_f64().map(|x| x as f32))
            .collect::<Option<Vec<f32>>>()
            .ok_or("meta 'alphas' holds a non-number")?;
        let alpha_total = json
            .get("alpha_total")
            .and_then(Json::as_f64)
            .ok_or("meta missing number 'alpha_total'")? as f32;
        Ok(Self {
            dataset_name: str_of(dataset, "name")?,
            dataset_n: usize_of(dataset, "n")?,
            num_classes: usize_of(dataset, "num_classes")?,
            source: str_of(json, "source")?,
            members: usize_of(json, "members")?,
            alphas,
            alpha_total,
        })
    }

    /// Cross-field validation shared by the exporter and the loader.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.members == 0 {
            return Err("artifact has zero members".into());
        }
        if self.alphas.len() != self.members {
            return Err(format!(
                "meta declares {} members but lists {} alphas",
                self.members,
                self.alphas.len()
            ));
        }
        if let Some(a) = self.alphas.iter().find(|a| !(a.is_finite() && **a > 0.0)) {
            return Err(format!("non-positive ensemble weight {a}"));
        }
        if !(self.alpha_total.is_finite() && self.alpha_total > 0.0) {
            return Err(format!("non-positive alpha_total {}", self.alpha_total));
        }
        // alpha_total is the left-fold of the alphas in push order; the
        // same fold here must reproduce it bitwise.
        let refold: f32 = self.alphas.iter().sum();
        if refold.to_bits() != self.alpha_total.to_bits() {
            return Err(format!(
                "alpha_total {} does not match the sum of alphas {refold}",
                self.alpha_total
            ));
        }
        Ok(())
    }
}

/// A loaded, validated artifact: the frozen teacher as a [`Predictor`].
#[derive(Clone, Debug)]
pub struct Artifact {
    meta: ArtifactMeta,
    format: ArtifactFormat,
    proba_sum: Matrix,
    logits_sum: Matrix,
    /// FNV-1a 64 of the file content (also the serve cache's key epoch).
    checksum: u64,
    /// `proba_sum · (1/alpha_total)`, cached once at load.
    proba: Matrix,
}

pub(crate) fn push_matrix(out: &mut String, m: &Matrix) {
    use std::fmt::Write as _;
    let (r, c) = m.shape();
    let _ = writeln!(out, "matrix {r} {c}");
    for i in 0..r {
        for (j, v) in m.row(i).iter().enumerate() {
            if j > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
}

pub(crate) fn push_qmatrix(out: &mut String, m: &Matrix) {
    use std::fmt::Write as _;
    let (r, c) = m.shape();
    let _ = writeln!(out, "qmatrix {r} {c} int8");
    for i in 0..r {
        out.push_str(&quant::encode_qrow(&quant::quantize_row(m.row(i))));
        out.push('\n');
    }
}

/// Serialize and atomically write a full-precision v1 artifact file.
pub fn write_artifact(
    path: &Path,
    meta: &ArtifactMeta,
    proba_sum: &Matrix,
    logits_sum: &Matrix,
) -> Result<u64, ServeError> {
    write_artifact_as(path, meta, proba_sum, logits_sum, ArtifactFormat::V1)
}

/// Serialize and atomically write an artifact in the given format.
pub fn write_artifact_as(
    path: &Path,
    meta: &ArtifactMeta,
    proba_sum: &Matrix,
    logits_sum: &Matrix,
    format: ArtifactFormat,
) -> Result<u64, ServeError> {
    meta.validate().map_err(ServeError::Artifact)?;
    for (name, m) in [("proba_sum", proba_sum), ("logits_sum", logits_sum)] {
        if m.shape() != (meta.dataset_n, meta.num_classes) {
            return Err(ServeError::Artifact(format!(
                "{name} shape {:?} does not match dataset ({} x {})",
                m.shape(),
                meta.dataset_n,
                meta.num_classes
            )));
        }
    }
    let mut text = String::new();
    text.push_str(format.header());
    text.push('\n');
    text.push_str("meta ");
    meta.to_json().write(&mut text);
    text.push('\n');
    match format {
        ArtifactFormat::V1 => {
            push_matrix(&mut text, proba_sum);
            push_matrix(&mut text, logits_sum);
        }
        ArtifactFormat::V2q => {
            push_qmatrix(&mut text, proba_sum);
            push_qmatrix(&mut text, logits_sum);
        }
        ArtifactFormat::V3Mlp => {
            return Err(ServeError::Artifact(
                "v3 (mlp) artifacts hold student weight matrices, not ensemble sums; \
                 write them with write_mlp_artifact"
                    .into(),
            ))
        }
    }
    let checksum = fnv1a64(text.as_bytes());
    use std::fmt::Write as _;
    let _ = writeln!(text, "checksum {checksum:016x}");
    rdd_models::atomic_write(path, &text).map_err(ServeError::Io)?;
    Ok(checksum)
}

/// Distill a **completed** crash-safe run directory into a single v1
/// artifact file. Zero re-training: the kept members' frozen outputs are
/// replayed (bitwise-verified against the stored `ensemble.sums` by
/// [`RunState::load_ensemble`]) and the running sums written out.
pub fn export_run(run_dir: &Path, artifact_path: &Path) -> Result<Artifact, RddError> {
    export_run_as(run_dir, artifact_path, ArtifactFormat::V1)
}

/// [`export_run`] with an explicit output format (`--quantize int8` →
/// [`ArtifactFormat::V2q`]).
pub fn export_run_as(
    run_dir: &Path,
    artifact_path: &Path,
    format: ArtifactFormat,
) -> Result<Artifact, RddError> {
    let state = RunState::load(run_dir)?;
    if !state.is_complete() {
        return Err(ServeError::Artifact(format!(
            "run {} is not complete ({} members committed); finish or `rdd resume` it first",
            run_dir.display(),
            state.next_member()
        ))
        .into());
    }
    let ensemble = state.load_ensemble()?;
    let (proba_sum, logits_sum) = match (ensemble.proba_sum(), ensemble.logits_sum()) {
        (Some(ps), Some(ls)) => (ps, ls),
        _ => {
            return Err(ServeError::Artifact(format!(
                "run {} kept no ensemble members; nothing to serve",
                run_dir.display()
            ))
            .into())
        }
    };
    let (n, k) = state.dataset_shape();
    let meta = ArtifactMeta {
        dataset_name: state.dataset_name().to_string(),
        dataset_n: n,
        num_classes: k,
        source: state.source().to_string(),
        members: ensemble.len(),
        alphas: ensemble.alphas(),
        alpha_total: ensemble.alpha_total(),
    };
    write_artifact_as(artifact_path, &meta, proba_sum, logits_sum, format)?;
    Ok(Artifact::load(artifact_path)?)
}

/// Export a live [`Ensemble`] as a v1 artifact (no run directory) — the
/// test/bench path.
pub fn write_ensemble(
    path: &Path,
    ensemble: &Ensemble,
    dataset_name: &str,
    source: &str,
) -> Result<u64, ServeError> {
    write_ensemble_as(path, ensemble, dataset_name, source, ArtifactFormat::V1)
}

/// [`write_ensemble`] with an explicit output format.
pub fn write_ensemble_as(
    path: &Path,
    ensemble: &Ensemble,
    dataset_name: &str,
    source: &str,
    format: ArtifactFormat,
) -> Result<u64, ServeError> {
    let (proba_sum, logits_sum) = match (ensemble.proba_sum(), ensemble.logits_sum()) {
        (Some(ps), Some(ls)) => (ps, ls),
        _ => return Err(ServeError::Artifact("empty ensemble".into())),
    };
    let meta = ArtifactMeta {
        dataset_name: dataset_name.to_string(),
        dataset_n: proba_sum.rows(),
        num_classes: proba_sum.cols(),
        source: source.to_string(),
        members: ensemble.len(),
        alphas: ensemble.alphas(),
        alpha_total: ensemble.alpha_total(),
    };
    write_artifact_as(path, &meta, proba_sum, logits_sum, format)
}

pub(crate) struct Lines<'a> {
    pub(crate) rest: std::str::Lines<'a>,
    pub(crate) line_no: usize,
}

impl<'a> Lines<'a> {
    pub(crate) fn next(&mut self) -> Result<&'a str, ServeError> {
        self.line_no += 1;
        self.rest
            .next()
            .ok_or_else(|| ServeError::Artifact(format!("truncated at line {}", self.line_no)))
    }
}

pub(crate) fn parse_matrix(lines: &mut Lines<'_>) -> Result<Matrix, ServeError> {
    let header = lines.next()?;
    let dims: Vec<&str> = header.split_whitespace().collect();
    let (r, c) = match dims.as_slice() {
        ["matrix", r, c] => (
            r.parse::<usize>()
                .map_err(|_| ServeError::Artifact(format!("bad matrix rows: {header:?}")))?,
            c.parse::<usize>()
                .map_err(|_| ServeError::Artifact(format!("bad matrix cols: {header:?}")))?,
        ),
        _ => {
            return Err(ServeError::Artifact(format!(
                "line {}: expected 'matrix R C', found {header:?}",
                lines.line_no
            )))
        }
    };
    let mut data = Vec::with_capacity(r * c);
    for _ in 0..r {
        let row = lines.next()?;
        let line_no = lines.line_no;
        let before = data.len();
        for tok in row.split_whitespace() {
            let v: f32 = tok
                .parse()
                .map_err(|_| ServeError::Artifact(format!("line {line_no}: bad float {tok:?}")))?;
            if !v.is_finite() {
                return Err(ServeError::Artifact(format!(
                    "line {line_no}: non-finite value {v}"
                )));
            }
            data.push(v);
        }
        if data.len() - before != c {
            return Err(ServeError::Artifact(format!(
                "line {line_no}: expected {c} values, found {}",
                data.len() - before
            )));
        }
    }
    Ok(Matrix::from_vec(r, c, data))
}

pub(crate) fn parse_qmatrix(
    lines: &mut Lines<'_>,
    tier: rdd_tensor::SimdTier,
) -> Result<Matrix, ServeError> {
    let header = lines.next()?;
    let dims: Vec<&str> = header.split_whitespace().collect();
    let (r, c) = match dims.as_slice() {
        ["qmatrix", r, c, "int8"] => (
            r.parse::<usize>()
                .map_err(|_| ServeError::Artifact(format!("bad qmatrix rows: {header:?}")))?,
            c.parse::<usize>()
                .map_err(|_| ServeError::Artifact(format!("bad qmatrix cols: {header:?}")))?,
        ),
        _ => {
            return Err(ServeError::Artifact(format!(
                "line {}: expected 'qmatrix R C int8', found {header:?}",
                lines.line_no
            )))
        }
    };
    let mut out = Matrix::zeros(r, c);
    for i in 0..r {
        let row = lines.next()?;
        let line = lines.line_no;
        let qr = quant::decode_qrow(row, c)
            .map_err(|e| ServeError::Artifact(format!("line {line}: {e}")))?;
        if !(qr.scale.is_finite() && qr.scale >= 0.0) {
            return Err(ServeError::QuantScale {
                line,
                value: qr.scale,
            });
        }
        if !qr.zero.is_finite() {
            return Err(ServeError::QuantZeroPoint {
                line,
                value: qr.zero,
            });
        }
        quant::dequantize_row(tier, &qr, out.row_mut(i));
    }
    Ok(out)
}

impl Artifact {
    /// Load and fully validate an artifact file: header/version, checksum,
    /// meta parse, matrix shapes, finiteness.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let text = std::fs::read_to_string(path)?;

        // The checksum line covers every byte before it; verify first so
        // corruption anywhere surfaces as a checksum error, not a random
        // parse failure deeper in.
        let body_end = text
            .rfind("\nchecksum ")
            .ok_or_else(|| ServeError::Artifact("missing checksum line".into()))?
            + 1;
        let stored_line = text[body_end..].trim_end();
        let stored = stored_line
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| ServeError::Artifact(format!("bad checksum line {stored_line:?}")))?;
        if !text[body_end..].ends_with('\n') {
            return Err(ServeError::Artifact(
                "missing newline after checksum line".into(),
            ));
        }
        if text[body_end..].lines().count() != 1 {
            return Err(ServeError::Artifact(
                "trailing garbage after checksum line".into(),
            ));
        }
        let computed = fnv1a64(&text.as_bytes()[..body_end]);
        if computed != stored {
            return Err(ServeError::Checksum { stored, computed });
        }

        let mut lines = Lines {
            rest: text[..body_end].lines(),
            line_no: 0,
        };
        let header = lines.next()?;
        let format = if header == HEADER {
            ArtifactFormat::V1
        } else if header == HEADER_V2Q {
            ArtifactFormat::V2q
        } else if header.starts_with("rdd-artifact") {
            return Err(ServeError::WrongVersion {
                found: header.to_string(),
            });
        } else {
            return Err(ServeError::Artifact(format!(
                "not an rdd artifact (first line {header:?})"
            )));
        };
        let meta_line = lines.next()?;
        let meta_src = meta_line
            .strip_prefix("meta ")
            .ok_or_else(|| ServeError::Artifact("line 2: expected 'meta {{...}}'".into()))?;
        let meta_json = rdd_obs::parse(meta_src)
            .map_err(|e| ServeError::Artifact(format!("bad meta json: {e}")))?;
        let meta = ArtifactMeta::from_json(&meta_json).map_err(ServeError::Artifact)?;
        meta.validate().map_err(ServeError::Artifact)?;

        let (proba_sum, logits_sum) = match format {
            ArtifactFormat::V1 => (parse_matrix(&mut lines)?, parse_matrix(&mut lines)?),
            ArtifactFormat::V2q => {
                // Dequantize through the SIMD tier; one resolve per load.
                let tier = rdd_tensor::simd::active();
                (
                    parse_qmatrix(&mut lines, tier)?,
                    parse_qmatrix(&mut lines, tier)?,
                )
            }
            // The v3 header is caught above as WrongVersion: this loader
            // reads ensemble sums; students load via MlpArtifact::load.
            ArtifactFormat::V3Mlp => unreachable!("v3 header never reaches the v1/v2q parser"),
        };
        if lines.rest.next().is_some() {
            return Err(ServeError::Artifact(
                "trailing garbage before checksum line".into(),
            ));
        }
        for (name, m) in [("proba_sum", &proba_sum), ("logits_sum", &logits_sum)] {
            if m.shape() != (meta.dataset_n, meta.num_classes) {
                return Err(ServeError::Artifact(format!(
                    "{name} shape {:?} does not match meta ({} x {})",
                    m.shape(),
                    meta.dataset_n,
                    meta.num_classes
                )));
            }
        }
        // The exact normalization Ensemble::proba applies — this is what
        // keeps served rows bitwise equal to the live run.
        let proba = proba_sum.scaled(1.0 / meta.alpha_total);
        Ok(Self {
            meta,
            format,
            proba_sum,
            logits_sum,
            checksum: stored,
            proba,
        })
    }

    /// The artifact's metadata.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// Which on-disk format this artifact was loaded from.
    pub fn format(&self) -> ArtifactFormat {
        self.format
    }

    /// The file checksum (also the serve cache's key epoch).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The normalized teacher distribution, `n x k` (bitwise equal to the
    /// exporting ensemble's `proba()`).
    pub fn proba(&self) -> &Matrix {
        &self.proba
    }

    /// The raw `Σ α_t · proba_t`.
    pub fn proba_sum(&self) -> &Matrix {
        &self.proba_sum
    }

    /// The raw `Σ α_t · logits_t` (the distillation target, carried so an
    /// artifact can seed future student training).
    pub fn logits_sum(&self) -> &Matrix {
        &self.logits_sum
    }

    /// The normalized teacher embedding `F_T`.
    pub fn logits(&self) -> Matrix {
        self.logits_sum.scaled(1.0 / self.meta.alpha_total)
    }
}

impl Predictor for Artifact {
    fn num_nodes(&self) -> usize {
        self.meta.dataset_n
    }

    fn num_classes(&self) -> usize {
        self.meta.num_classes
    }

    fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
        gather_prediction(&self.proba, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_known_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    fn tiny_meta() -> ArtifactMeta {
        ArtifactMeta {
            dataset_name: "unit".into(),
            dataset_n: 2,
            num_classes: 2,
            source: "unit-test".into(),
            members: 2,
            alphas: vec![1.5, 0.5],
            alpha_total: 2.0,
        }
    }

    #[test]
    fn meta_json_roundtrips() {
        let meta = tiny_meta();
        let back = ArtifactMeta::from_json(&meta.to_json()).expect("parse");
        assert_eq!(back, meta);
    }

    #[test]
    fn meta_validation_rejects_inconsistencies() {
        let mut m = tiny_meta();
        m.alphas = vec![1.0];
        assert!(m.validate().unwrap_err().contains("alphas"));
        let mut m = tiny_meta();
        m.alpha_total = 3.0;
        assert!(m.validate().unwrap_err().contains("alpha_total"));
        let mut m = tiny_meta();
        m.alphas[0] = -1.0;
        assert!(m.validate().unwrap_err().contains("weight"));
        let mut m = tiny_meta();
        m.members = 0;
        m.alphas.clear();
        m.alpha_total = 0.0;
        assert!(m.validate().unwrap_err().contains("zero members"));
    }
}
