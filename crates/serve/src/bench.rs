//! Closed-loop serve throughput bench: one in-process client submits
//! single-node requests back-to-back (next request only after the
//! previous flush returns) against a frozen artifact, across the four
//! corners of {unbatched, batched} × {cache cold, cache warm}.

use std::time::Instant;

use rdd_obs::{sample_stats, Json};

use crate::artifact::Artifact;
use crate::engine::{ServeConfig, ServeEngine};
use crate::error::ServeError;

/// One bench mode's outcome.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Mode label (`unbatched-cold`, `batched-warm`, ...).
    pub mode: String,
    /// Micro-batch size used.
    pub batch_size: usize,
    /// Requests answered.
    pub requests: usize,
    /// Closed-loop throughput, requests per second.
    pub rps: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency, milliseconds.
    pub p99_ms: f64,
    /// Cache hit fraction over the measured phase.
    pub hit_rate: f64,
}

impl BenchResult {
    /// Render for a BENCH_*.json report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("mode".into(), Json::from(self.mode.as_str())),
            ("batch_size".into(), Json::from(self.batch_size)),
            ("requests".into(), Json::from(self.requests)),
            ("rps".into(), Json::from(self.rps)),
            ("p50_ms".into(), Json::from(self.p50_ms)),
            ("p99_ms".into(), Json::from(self.p99_ms)),
            ("hit_rate".into(), Json::from(self.hit_rate)),
        ])
    }
}

/// Deterministic node stream: xorshift64 over a fixed seed, mapped onto
/// `[0, n)`. No clocks, no global RNG — the same artifact and request
/// count always replay the same workload.
struct NodeStream {
    state: u64,
    n: usize,
}

impl NodeStream {
    fn new(n: usize) -> Self {
        Self {
            state: 0x9e37_79b9_7f4a_7c15,
            n,
        }
    }

    fn next(&mut self) -> usize {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        ((x >> 33) as usize) % self.n
    }
}

fn run_mode(
    artifact: &Artifact,
    mode: &str,
    batch_size: usize,
    warm: bool,
    requests: usize,
) -> Result<BenchResult, ServeError> {
    let n = artifact.meta().dataset_n;
    let cfg = ServeConfig {
        batch_size,
        max_delay_ms: 0,
        // Warm modes get a cache big enough that the warmup pass pins every
        // node; cold modes run uncached.
        cache_capacity: if warm { n } else { 0 },
        queue_capacity: batch_size.max(1024),
    };
    let mut engine = ServeEngine::new(artifact, cfg, artifact.checksum())
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;

    if warm {
        // Unmeasured warmup: touch every node once so the measured phase
        // sees a fully hot cache.
        for node in 0..n {
            engine.submit(u64::MAX - node as u64, Some(vec![node]))?;
        }
        engine.flush();
    }
    let warm_stats = engine.stats();

    let mut stream = NodeStream::new(n);
    let mut latencies: Vec<f64> = Vec::with_capacity(requests);
    let started = Instant::now();
    let mut submitted = 0u64;
    while (submitted as usize) < requests {
        let node = stream.next();
        if let Some(replies) = engine.submit(submitted, Some(vec![node]))? {
            for reply in replies {
                reply.result?;
                latencies.push(reply.latency_ms);
            }
        }
        submitted += 1;
    }
    for reply in engine.flush() {
        reply.result?;
        latencies.push(reply.latency_ms);
    }
    let wall_s = started.elapsed().as_secs_f64();

    let stats = engine.stats();
    let hits = stats.cache_hits - warm_stats.cache_hits;
    let misses = stats.cache_misses - warm_stats.cache_misses;
    let lat_stats =
        sample_stats(&latencies).map_err(|e| ServeError::BadRequest(format!("latency {e}")))?;
    Ok(BenchResult {
        mode: mode.to_string(),
        batch_size,
        requests: lat_stats.count,
        rps: lat_stats.count as f64 / wall_s.max(1e-9),
        p50_ms: lat_stats.p50,
        p99_ms: lat_stats.p99,
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
    })
}

/// Run the four standard modes against `artifact`, `requests` single-node
/// requests each.
pub fn bench_artifact(
    artifact: &Artifact,
    requests: usize,
) -> Result<Vec<BenchResult>, ServeError> {
    let modes: [(&str, usize, bool); 4] = [
        ("unbatched-cold", 1, false),
        ("batched-cold", 32, false),
        ("unbatched-warm", 1, true),
        ("batched-warm", 32, true),
    ];
    modes
        .iter()
        .map(|&(mode, batch, warm)| run_mode(artifact, mode, batch, warm, requests))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_stream_is_deterministic_and_in_range() {
        let mut a = NodeStream::new(17);
        let mut b = NodeStream::new(17);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert!(x < 17);
            seen.insert(x);
        }
        assert!(seen.len() > 10, "stream should cover most of the range");
    }
}
