//! Closed-loop serve throughput bench: an in-process client submits
//! single-node requests against a frozen artifact, across the four
//! corners of {unbatched, batched} × {cache cold, cache warm} — and, for
//! the multi-worker scaling curve ([`bench_artifact_pooled`]), against a
//! [`ServePool`] with `workers × batch_size` requests kept in flight.
//! All timing is monotonic (`Instant`), never wall-clock time-of-day, so
//! NTP steps can't corrupt a measurement.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use rdd_models::PredictRequest;
use rdd_obs::{sample_stats, Json};
use rdd_tensor::Matrix;

use crate::artifact::Artifact;
use crate::engine::{ServeConfig, ServeEngine};
use crate::error::ServeError;
use crate::mlp_artifact::MlpArtifact;
use crate::pool::{PoolConfig, ServePool};

/// One bench mode's outcome.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Mode label (`unbatched-cold`, `batched-warm`, ...).
    pub mode: String,
    /// Micro-batch size used.
    pub batch_size: usize,
    /// Requests answered.
    pub requests: usize,
    /// Closed-loop throughput, requests per second.
    pub rps: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency, milliseconds.
    pub p99_ms: f64,
    /// Cache hit fraction over the measured phase.
    pub hit_rate: f64,
    /// Serve workers used (1 = the in-line single-threaded engine).
    pub workers: usize,
    /// Mean per-worker busy fraction over the pool's lifetime. The
    /// single-threaded engine executes inside the client's submit call, so
    /// it reports 1.0 by construction.
    pub utilization: f64,
}

impl BenchResult {
    /// Render for a BENCH_*.json report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("mode".into(), Json::from(self.mode.as_str())),
            ("batch_size".into(), Json::from(self.batch_size)),
            ("requests".into(), Json::from(self.requests)),
            ("rps".into(), Json::from(self.rps)),
            ("p50_ms".into(), Json::from(self.p50_ms)),
            ("p99_ms".into(), Json::from(self.p99_ms)),
            ("hit_rate".into(), Json::from(self.hit_rate)),
            ("workers".into(), Json::from(self.workers)),
            ("utilization".into(), Json::from(self.utilization)),
        ])
    }
}

/// Deterministic node stream: xorshift64 over a fixed seed, mapped onto
/// `[0, n)`. No clocks, no global RNG — the same artifact and request
/// count always replay the same workload.
struct NodeStream {
    state: u64,
    n: usize,
}

impl NodeStream {
    fn new(n: usize) -> Self {
        Self {
            state: 0x9e37_79b9_7f4a_7c15,
            n,
        }
    }

    fn next(&mut self) -> usize {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        ((x >> 33) as usize) % self.n
    }
}

fn run_mode(
    artifact: &Artifact,
    mode: &str,
    batch_size: usize,
    warm: bool,
    requests: usize,
) -> Result<BenchResult, ServeError> {
    let n = artifact.meta().dataset_n;
    let cfg = ServeConfig {
        batch_size,
        max_delay_ms: 0,
        // Warm modes get a cache big enough that the warmup pass pins every
        // node; cold modes run uncached.
        cache_capacity: if warm { n } else { 0 },
        queue_capacity: batch_size.max(1024),
    };
    let mut engine = ServeEngine::new(artifact, cfg, artifact.checksum())
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;

    if warm {
        // Unmeasured warmup: touch every node once so the measured phase
        // sees a fully hot cache.
        for node in 0..n {
            engine.submit(u64::MAX - node as u64, PredictRequest::nodes(vec![node]))?;
        }
        engine.flush();
    }
    let warm_stats = engine.stats();

    let mut stream = NodeStream::new(n);
    let mut latencies: Vec<f64> = Vec::with_capacity(requests);
    let started = Instant::now();
    let mut submitted = 0u64;
    while (submitted as usize) < requests {
        let node = stream.next();
        if let Some(replies) = engine.submit(submitted, PredictRequest::nodes(vec![node]))? {
            for reply in replies {
                reply.result?;
                latencies.push(reply.latency_ms);
            }
        }
        submitted += 1;
    }
    for reply in engine.flush() {
        reply.result?;
        latencies.push(reply.latency_ms);
    }
    let wall_s = started.elapsed().as_secs_f64();

    let stats = engine.stats();
    let hits = stats.cache_hits - warm_stats.cache_hits;
    let misses = stats.cache_misses - warm_stats.cache_misses;
    let lat_stats =
        sample_stats(&latencies).map_err(|e| ServeError::BadRequest(format!("latency {e}")))?;
    Ok(BenchResult {
        mode: mode.to_string(),
        batch_size,
        requests: lat_stats.count,
        rps: lat_stats.count as f64 / wall_s.max(1e-9),
        p50_ms: lat_stats.p50,
        p99_ms: lat_stats.p99,
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        workers: 1,
        utilization: 1.0,
    })
}

fn run_mode_pooled(
    artifact: &Artifact,
    mode: &str,
    batch_size: usize,
    warm: bool,
    requests: usize,
    workers: usize,
) -> Result<BenchResult, ServeError> {
    let n = artifact.meta().dataset_n;
    let cfg = PoolConfig {
        serve: ServeConfig {
            batch_size,
            max_delay_ms: 0,
            cache_capacity: if warm { n } else { 0 },
            queue_capacity: (batch_size * workers).max(1024),
        },
        workers,
        ..PoolConfig::default()
    };
    let cfg_queue = cfg.serve.queue_capacity;
    let (tx, rx) = mpsc::channel();
    let pool = ServePool::new(artifact.clone(), cfg, artifact.checksum(), tx)
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
    let dropped = || ServeError::BadRequest("serve pool dropped its reply channel".into());
    if warm {
        // Unmeasured closed-loop warmup: touch every node once, draining
        // replies as we go so graphs larger than the queue capacity can't
        // overflow it.
        let window = cfg_queue.min(n).max(1);
        let mut warmed = 0usize;
        let mut drained = 0usize;
        while drained < n {
            while warmed < n && warmed - drained < window {
                pool.submit(
                    u64::MAX - warmed as u64,
                    PredictRequest::nodes(vec![warmed]),
                )?;
                warmed += 1;
            }
            rx.recv().map_err(|_| dropped())?.result?;
            drained += 1;
        }
    }
    let warm_stats = pool.stats();

    // Closed loop with a fixed in-flight window: enough outstanding
    // requests to keep every worker's micro-batch full, refilled one-for-
    // one as replies drain.
    let target = (workers * batch_size).max(1);
    let mut stream = NodeStream::new(n);
    let mut latencies: Vec<f64> = Vec::with_capacity(requests);
    let started = Instant::now();
    let mut submitted = 0usize;
    let mut received = 0usize;
    while received < requests {
        while submitted < requests && submitted - received < target {
            match pool.submit(submitted as u64, PredictRequest::nodes(vec![stream.next()])) {
                Ok(()) => submitted += 1,
                Err(ServeError::QueueFull { .. }) => break,
                Err(ServeError::Overloaded { retry_after_ms }) => {
                    // A breaker-configured pool backpressures the closed
                    // loop: honor a bounded slice of the advertised delay
                    // instead of failing the bench.
                    std::thread::sleep(Duration::from_millis((retry_after_ms as u64).clamp(1, 20)));
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if submitted == received {
            // Nothing in flight (admission rejected everything): retry
            // instead of blocking on a reply that can never arrive.
            continue;
        }
        let reply = rx.recv().map_err(|_| dropped())?;
        reply.result?;
        latencies.push(reply.latency_ms);
        received += 1;
    }
    let wall_s = started.elapsed().as_secs_f64();

    let report = pool.shutdown();
    let hits = report.stats.cache_hits - warm_stats.cache_hits;
    let misses = report.stats.cache_misses - warm_stats.cache_misses;
    let lat_stats =
        sample_stats(&latencies).map_err(|e| ServeError::BadRequest(format!("latency {e}")))?;
    let utilization = if report.workers.is_empty() {
        0.0
    } else {
        report.workers.iter().map(|w| w.utilization).sum::<f64>() / report.workers.len() as f64
    };
    Ok(BenchResult {
        mode: mode.to_string(),
        batch_size,
        requests: lat_stats.count,
        rps: lat_stats.count as f64 / wall_s.max(1e-9),
        p50_ms: lat_stats.p50,
        p99_ms: lat_stats.p99,
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        workers,
        utilization,
    })
}

/// Run the four standard modes against `artifact`, `requests` single-node
/// requests each.
pub fn bench_artifact(
    artifact: &Artifact,
    requests: usize,
) -> Result<Vec<BenchResult>, ServeError> {
    let modes: [(&str, usize, bool); 4] = [
        ("unbatched-cold", 1, false),
        ("batched-cold", 32, false),
        ("unbatched-warm", 1, true),
        ("batched-warm", 32, true),
    ];
    modes
        .iter()
        .map(|&(mode, batch, warm)| run_mode(artifact, mode, batch, warm, requests))
        .collect()
}

/// Deterministic feature-row stream for the v3 features mode: the same
/// xorshift64 core as [`NodeStream`], mapped onto `[-1, 1)` floats, so the
/// same artifact and request count always replay the same workload.
struct FeatureStream {
    state: u64,
    d: usize,
}

impl FeatureStream {
    fn new(d: usize) -> Self {
        Self {
            state: 0x9e37_79b9_7f4a_7c15,
            d,
        }
    }

    fn next_row(&mut self) -> Matrix {
        let mut data = Vec::with_capacity(self.d);
        for _ in 0..self.d {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            data.push(((x >> 40) as f32) / ((1u64 << 23) as f32) - 1.0);
        }
        Matrix::from_vec(1, self.d, data)
    }
}

fn run_mode_features(
    artifact: &MlpArtifact,
    mode: &str,
    batch_size: usize,
    requests: usize,
) -> Result<BenchResult, ServeError> {
    let cfg = ServeConfig {
        batch_size,
        max_delay_ms: 0,
        // Feature rows bypass the cache by design; don't pay for one.
        cache_capacity: 0,
        queue_capacity: batch_size.max(1024),
    };
    let mut engine = ServeEngine::new(artifact, cfg, artifact.checksum())
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
    let mut stream = FeatureStream::new(artifact.in_dim());
    let mut latencies: Vec<f64> = Vec::with_capacity(requests);
    let started = Instant::now();
    let mut submitted = 0u64;
    while (submitted as usize) < requests {
        let row = stream.next_row();
        if let Some(replies) = engine.submit(submitted, PredictRequest::features(row))? {
            for reply in replies {
                reply.result?;
                latencies.push(reply.latency_ms);
            }
        }
        submitted += 1;
    }
    for reply in engine.flush() {
        reply.result?;
        latencies.push(reply.latency_ms);
    }
    let wall_s = started.elapsed().as_secs_f64();
    let lat_stats =
        sample_stats(&latencies).map_err(|e| ServeError::BadRequest(format!("latency {e}")))?;
    Ok(BenchResult {
        mode: mode.to_string(),
        batch_size,
        requests: lat_stats.count,
        rps: lat_stats.count as f64 / wall_s.max(1e-9),
        p50_ms: lat_stats.p50,
        p99_ms: lat_stats.p99,
        hit_rate: 0.0,
        workers: 1,
        utilization: 1.0,
    })
}

/// The v3 features mode (`rdd serve-bench --features-mode`): `requests`
/// single-row [`PredictRequest::ByFeatures`] requests of synthetic feature
/// vectors against a distilled student, unbatched and batched. Every row
/// is a fresh forward — there is no cache to warm — so this measures the
/// matmul path the node-sum modes never touch.
pub fn bench_artifact_features(
    artifact: &MlpArtifact,
    requests: usize,
) -> Result<Vec<BenchResult>, ServeError> {
    let modes: [(&str, usize); 2] = [("features-unbatched", 1), ("features-batched", 32)];
    modes
        .iter()
        .map(|&(mode, batch)| run_mode_features(artifact, mode, batch, requests))
        .collect()
}

/// The multi-worker scaling point: `requests` single-node requests through
/// a [`ServePool`] of `workers` threads, batched, cold then warm. Run it
/// at 1/2/4/8 workers for the serve scaling curve.
pub fn bench_artifact_pooled(
    artifact: &Artifact,
    requests: usize,
    workers: usize,
) -> Result<Vec<BenchResult>, ServeError> {
    let modes: [(&str, usize, bool); 2] = [("pooled-cold", 32, false), ("pooled-warm", 32, true)];
    modes
        .iter()
        .map(|&(mode, batch, warm)| run_mode_pooled(artifact, mode, batch, warm, requests, workers))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_stream_is_deterministic_and_in_range() {
        let mut a = NodeStream::new(17);
        let mut b = NodeStream::new(17);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert!(x < 17);
            seen.insert(x);
        }
        assert!(seen.len() > 10, "stream should cover most of the range");
    }
}
