//! Overload circuit breaker for the serve pool.
//!
//! A [`CircuitBreaker`] watches its own short [`RollingWindow`] of request
//! latencies and queue-full sheds. While **closed** it admits everything
//! and evaluates the window on a fixed cadence; if the window's p99
//! latency exceeds the configured SLO (or the shed fraction exceeds
//! `shed_rate`) with enough traffic to trust, it **trips open**: admission
//! returns typed [`ServeError::Overloaded`] replies carrying
//! `retry_after_ms` instead of queueing work a saturated pool cannot
//! serve in time. After `open_ms` it **half-opens**, letting a small
//! number of probe requests through; if enough probes complete under the
//! SLO the breaker closes and the open interval resets, otherwise it
//! re-opens with the interval doubled (capped at `max_open_ms`).
//!
//! ```text
//!            p99 > SLO or shed rate high
//!   CLOSED ────────────────────────────────▶ OPEN
//!     ▲                                       │ open_ms elapsed
//!     │ probes healthy                        ▼
//!     └──────────────────────────────── HALF-OPEN
//!                                             │ probes unhealthy
//!                                             └────▶ OPEN (backoff ×2)
//! ```
//!
//! Every transition emits a `breaker_state` trace event; the live state
//! rides along in `serve_metrics` heartbeats. Methods take an explicit
//! `now: Instant` so tests can drive the state machine without sleeping.

use std::time::{Duration, Instant};

use rdd_models::ConfigError;

use crate::engine::{RollingWindow, ShedCause};
use crate::error::ServeError;

/// Circuit-breaker tuning knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Trip when the window's p99 request latency exceeds this, ms.
    pub p99_ms: f64,
    /// Trip when `shed / (requests + shed)` over the window exceeds this.
    pub shed_rate: f64,
    /// Do not evaluate windows with fewer than this many samples
    /// (requests + sheds) — thin windows produce noisy percentiles.
    pub min_requests: u64,
    /// Seconds of history the breaker's own rolling window keeps.
    pub window_s: usize,
    /// How long the breaker stays open before half-opening, ms. Doubles on
    /// every failed probe round, capped at `max_open_ms`; resets on close.
    pub open_ms: u64,
    /// Cap on the exponential open-interval backoff, ms.
    pub max_open_ms: u64,
    /// Probe requests admitted while half-open before deciding.
    pub probes: u64,
    /// Evaluation cadence while closed, ms (admission and completion paths
    /// both poll; evaluation itself is one window merge).
    pub eval_every_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            p99_ms: 50.0,
            shed_rate: 0.5,
            min_requests: 16,
            window_s: 5,
            open_ms: 1_000,
            max_open_ms: 30_000,
            probes: 8,
            eval_every_ms: 200,
        }
    }
}

impl BreakerConfig {
    /// Defaults with the p99 SLO the CLI's `--breaker-p99-ms` sets.
    pub fn with_p99_ms(p99_ms: f64) -> Self {
        Self {
            p99_ms,
            ..Self::default()
        }
    }

    /// Reject thresholds the state machine cannot act on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.p99_ms > 0.0) || !self.p99_ms.is_finite() {
            return Err(ConfigError::invalid(
                "breaker.p99_ms",
                self.p99_ms,
                "a finite latency SLO > 0 ms",
            ));
        }
        if !(self.shed_rate > 0.0 && self.shed_rate <= 1.0) {
            return Err(ConfigError::invalid(
                "breaker.shed_rate",
                self.shed_rate,
                "a fraction in (0, 1]",
            ));
        }
        if self.min_requests < 1 {
            return Err(ConfigError::invalid(
                "breaker.min_requests",
                self.min_requests,
                ">= 1 sample per evaluation",
            ));
        }
        if self.window_s < 1 {
            return Err(ConfigError::invalid(
                "breaker.window_s",
                self.window_s,
                ">= 1 second of history",
            ));
        }
        if self.open_ms < 1 || self.max_open_ms < self.open_ms {
            return Err(ConfigError::invalid(
                "breaker.open_ms",
                self.open_ms,
                ">= 1 ms and <= max_open_ms",
            ));
        }
        if self.probes < 1 {
            return Err(ConfigError::invalid(
                "breaker.probes",
                self.probes,
                ">= 1 probe request",
            ));
        }
        if self.eval_every_ms < 1 {
            return Err(ConfigError::invalid(
                "breaker.eval_every_ms",
                self.eval_every_ms,
                ">= 1 ms between evaluations",
            ));
        }
        Ok(())
    }
}

/// Where the breaker's state machine currently sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: everything admitted, window evaluated on a cadence.
    Closed,
    /// Tripped: admission rejects with [`ServeError::Overloaded`].
    Open,
    /// Probing: up to `probes` requests admitted, the rest rejected.
    HalfOpen,
}

impl BreakerState {
    /// The string used in `breaker_state` events and heartbeats.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Rolling-window overload breaker; see the module docs for the state
/// machine. One instance per [`crate::pool::ServePool`], shared behind the
/// pool's admission lock.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    window: RollingWindow,
    /// When the open interval ends (meaningful while [`BreakerState::Open`]).
    open_until: Instant,
    /// Current open interval (exponential backoff, capped).
    cur_open_ms: u64,
    probes_admitted: u64,
    probes_done: u64,
    probes_bad: u64,
    last_eval: Instant,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with a fresh window.
    pub fn new(cfg: BreakerConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let now = Instant::now();
        Ok(Self {
            window: RollingWindow::new(cfg.window_s),
            cur_open_ms: cfg.open_ms,
            cfg,
            state: BreakerState::Closed,
            open_until: now,
            probes_admitted: 0,
            probes_done: 0,
            probes_bad: 0,
            last_eval: now,
            trips: 0,
        })
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open over its lifetime.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Gate one request at admission. `Ok(())` admits; the error is the
    /// typed [`ServeError::Overloaded`] reply the caller must send.
    pub fn admit(&mut self, now: Instant) -> Result<(), ServeError> {
        if self.state == BreakerState::Closed {
            self.maybe_eval(now);
        }
        if self.state == BreakerState::Open && now >= self.open_until {
            self.enter_half_open();
        }
        match self.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => Err(ServeError::Overloaded {
                retry_after_ms: self.open_until.saturating_duration_since(now).as_secs_f64() * 1e3,
            }),
            BreakerState::HalfOpen => {
                if self.probes_admitted < self.cfg.probes {
                    self.probes_admitted += 1;
                    Ok(())
                } else {
                    // Probe budget in flight; tell extras to come back
                    // after roughly one evaluation period.
                    Err(ServeError::Overloaded {
                        retry_after_ms: self.cfg.eval_every_ms as f64,
                    })
                }
            }
        }
    }

    /// Feed one completed request's end-to-end latency. Closed: recorded
    /// into the window (and the cadence evaluation may trip the breaker).
    /// Half-open: judged as a probe; enough healthy probes close the
    /// breaker, an unhealthy round re-opens it with doubled backoff.
    /// Open: ignored (stragglers dispatched before the trip).
    pub fn record_request(&mut self, latency_ms: f64, now: Instant) {
        match self.state {
            BreakerState::Closed => {
                self.window
                    .record_request(Duration::from_secs_f64(latency_ms.max(0.0) / 1e3));
                self.maybe_eval(now);
            }
            BreakerState::HalfOpen => {
                self.probes_done += 1;
                if latency_ms > self.cfg.p99_ms {
                    self.probes_bad += 1;
                }
                if self.probes_done >= self.cfg.probes {
                    // Tolerate up to a quarter of probes over the SLO (one
                    // scheduler hiccup must not hold the breaker open).
                    if self.probes_bad * 4 <= self.cfg.probes {
                        self.close(now);
                    } else {
                        self.reopen(now);
                    }
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Feed one queue-full shed (closed state only — the breaker's own
    /// rejections never count as overload signal, or it would latch open).
    pub fn record_shed(&mut self, now: Instant) {
        if self.state == BreakerState::Closed {
            self.window.record_shed(ShedCause::QueueFull);
            self.maybe_eval(now);
        }
    }

    fn maybe_eval(&mut self, now: Instant) {
        if now.saturating_duration_since(self.last_eval).as_millis()
            < u128::from(self.cfg.eval_every_ms)
        {
            return;
        }
        self.last_eval = now;
        let m = self.window.snapshot();
        let total = m.requests + m.shed;
        if total < self.cfg.min_requests {
            return;
        }
        let shed_rate = m.shed as f64 / total as f64;
        if m.p99_ms > self.cfg.p99_ms || shed_rate > self.cfg.shed_rate {
            self.state = BreakerState::Open;
            self.open_until = now + Duration::from_millis(self.cur_open_ms);
            self.trips += 1;
            rdd_obs::emit_breaker_state(
                "open",
                "closed",
                m.p99_ms,
                shed_rate,
                Some(self.cur_open_ms as f64),
            );
        }
    }

    fn enter_half_open(&mut self) {
        self.state = BreakerState::HalfOpen;
        self.probes_admitted = 0;
        self.probes_done = 0;
        self.probes_bad = 0;
        rdd_obs::emit_breaker_state("half_open", "open", 0.0, 0.0, None);
    }

    fn close(&mut self, now: Instant) {
        self.state = BreakerState::Closed;
        self.cur_open_ms = self.cfg.open_ms;
        self.window = RollingWindow::new(self.cfg.window_s);
        self.last_eval = now;
        rdd_obs::emit_breaker_state("closed", "half_open", 0.0, 0.0, None);
    }

    fn reopen(&mut self, now: Instant) {
        self.cur_open_ms = (self.cur_open_ms.saturating_mul(2)).min(self.cfg.max_open_ms);
        self.state = BreakerState::Open;
        self.open_until = now + Duration::from_millis(self.cur_open_ms);
        self.trips += 1;
        rdd_obs::emit_breaker_state("open", "half_open", 0.0, 0.0, Some(self.cur_open_ms as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            p99_ms: 5.0,
            min_requests: 4,
            open_ms: 100,
            max_open_ms: 400,
            probes: 4,
            eval_every_ms: 10,
            ..BreakerConfig::default()
        }
    }

    /// Drive the breaker into the open state with slow completions.
    fn trip(b: &mut CircuitBreaker, t0: Instant) -> Instant {
        for i in 0..8 {
            b.record_request(50.0, t0 + Duration::from_millis(i));
        }
        let now = t0 + Duration::from_millis(20);
        b.record_request(50.0, now);
        assert_eq!(b.state(), BreakerState::Open, "slow p99 must trip");
        now
    }

    #[test]
    fn config_rejects_unusable_thresholds() {
        assert!(BreakerConfig::with_p99_ms(0.0).validate().is_err());
        assert!(BreakerConfig::with_p99_ms(f64::NAN).validate().is_err());
        let bad = BreakerConfig {
            shed_rate: 1.5,
            ..BreakerConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "breaker.shed_rate");
        let bad = BreakerConfig {
            probes: 0,
            ..BreakerConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "breaker.probes");
        let bad = BreakerConfig {
            open_ms: 1000,
            max_open_ms: 10,
            ..BreakerConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "breaker.open_ms");
        assert!(BreakerConfig::with_p99_ms(25.0).validate().is_ok());
    }

    #[test]
    fn stays_closed_under_healthy_traffic() {
        let mut b = CircuitBreaker::new(cfg()).unwrap();
        let t0 = Instant::now();
        for i in 0..50 {
            assert!(b.admit(t0 + Duration::from_millis(i)).is_ok());
            b.record_request(1.0, t0 + Duration::from_millis(i));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn thin_windows_never_trip() {
        let mut b = CircuitBreaker::new(cfg()).unwrap();
        let t0 = Instant::now();
        // Only 3 samples < min_requests=4, however slow.
        for i in 0..3 {
            b.record_request(500.0, t0 + Duration::from_millis(20 * (i + 1)));
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn slow_p99_trips_open_and_rejects_with_retry_after() {
        let mut b = CircuitBreaker::new(cfg()).unwrap();
        let t0 = Instant::now();
        let now = trip(&mut b, t0);
        assert_eq!(b.trips(), 1);
        let err = b.admit(now + Duration::from_millis(1)).unwrap_err();
        match err {
            ServeError::Overloaded { retry_after_ms } => {
                assert!(
                    retry_after_ms > 0.0 && retry_after_ms <= 100.0,
                    "retry_after_ms {retry_after_ms} should be within the open interval"
                );
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn shed_rate_trips_without_any_latency_samples() {
        let mut b = CircuitBreaker::new(cfg()).unwrap();
        let t0 = Instant::now();
        for i in 0..8 {
            b.record_shed(t0 + Duration::from_millis(i));
        }
        b.record_shed(t0 + Duration::from_millis(20));
        assert_eq!(b.state(), BreakerState::Open, "pure shed storm must trip");
    }

    #[test]
    fn half_opens_after_interval_and_closes_on_healthy_probes() {
        let mut b = CircuitBreaker::new(cfg()).unwrap();
        let t0 = Instant::now();
        let tripped = trip(&mut b, t0);
        // Before the interval: still rejecting.
        assert!(b.admit(tripped + Duration::from_millis(50)).is_err());
        // After: half-open, probes admitted.
        let probe_t = tripped + Duration::from_millis(150);
        for _ in 0..4 {
            assert!(b.admit(probe_t).is_ok(), "probes must be admitted");
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The 5th concurrent request exceeds the probe budget.
        assert!(b.admit(probe_t).is_err());
        for _ in 0..4 {
            b.record_request(1.0, probe_t + Duration::from_millis(1));
        }
        assert_eq!(b.state(), BreakerState::Closed, "healthy probes close");
        assert!(b.admit(probe_t + Duration::from_millis(2)).is_ok());
    }

    #[test]
    fn unhealthy_probes_reopen_with_doubled_capped_backoff() {
        let mut b = CircuitBreaker::new(cfg()).unwrap();
        let t0 = Instant::now();
        let mut now = trip(&mut b, t0);
        for round in 0..3 {
            now += Duration::from_millis(500); // past any open interval
            for _ in 0..4 {
                assert!(b.admit(now).is_ok());
            }
            for _ in 0..4 {
                b.record_request(50.0, now);
            }
            assert_eq!(
                b.state(),
                BreakerState::Open,
                "bad probes must reopen (round {round})"
            );
        }
        // open_ms doubled 100 -> 200 -> 400, capped at 400.
        assert_eq!(b.cur_open_ms, 400);
        assert_eq!(b.trips(), 4);
    }

    #[test]
    fn closing_resets_backoff_and_window() {
        let mut b = CircuitBreaker::new(cfg()).unwrap();
        let t0 = Instant::now();
        let mut now = trip(&mut b, t0);
        // One failed probe round doubles the backoff.
        now += Duration::from_millis(500);
        for _ in 0..4 {
            let _ = b.admit(now);
        }
        for _ in 0..4 {
            b.record_request(50.0, now);
        }
        assert_eq!(b.cur_open_ms, 200);
        // A healthy round closes and resets.
        now += Duration::from_millis(500);
        for _ in 0..4 {
            let _ = b.admit(now);
        }
        for _ in 0..4 {
            b.record_request(1.0, now);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.cur_open_ms, 100, "close resets the backoff");
        // The old slow samples must not re-trip the fresh window.
        b.record_request(1.0, now + Duration::from_millis(20));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn one_slow_probe_in_a_round_is_tolerated() {
        let mut b = CircuitBreaker::new(cfg()).unwrap();
        let t0 = Instant::now();
        let now = trip(&mut b, t0) + Duration::from_millis(500);
        for _ in 0..4 {
            let _ = b.admit(now);
        }
        b.record_request(50.0, now); // 1 of 4 bad = exactly 25%
        for _ in 0..3 {
            b.record_request(1.0, now);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
