//! Hot artifact swap: an epoch-tagged atomic slot (a hand-rolled
//! `ArcSwap` on std primitives) plus the failure-aware artifact watcher
//! behind `rdd serve --watch-artifact`.
//!
//! [`SwapCell`] holds the pool's current artifact generation behind a
//! `Mutex<Arc<T>>` plus an `AtomicU64` epoch. Readers (serve workers) keep
//! a cached `Arc` clone and the epoch they cloned it at; once per batch
//! they check the epoch with a single atomic load — the lock is taken only
//! when a swap actually happened, so the steady-state read path is
//! lock-free. Because a worker pins its `Arc` for the whole batch,
//! in-flight requests always finish on the generation they started on,
//! and the old generation is freed exactly when its last pinned batch
//! drops the `Arc`.
//!
//! [`ArtifactWatcher`] owns the swap *rollback* policy: it polls the
//! watched path by mtime, fully loads and validates any replacement via
//! [`checked_load`] before the caller may install it, and on a failed load
//! keeps the current generation live while backing the poll off
//! exponentially (capped) instead of retrying hot against a file that is
//! still broken or mid-copy.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use crate::error::ServeError;
use crate::shard::AnyArtifact;

/// An atomically swappable `Arc<T>` with a monotonically increasing epoch.
/// Epoch 0 is the value the cell was built with; every [`SwapCell::swap`]
/// increments it.
pub struct SwapCell<T> {
    slot: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> SwapCell<T> {
    /// A cell holding `value` at epoch 0.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slot: Mutex::new(value),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current epoch (generation number). Acquire-ordered so a reader
    /// that observes epoch `e` also observes the slot contents published
    /// for `e`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clone the current value and its epoch (takes the lock).
    pub fn load(&self) -> (Arc<T>, u64) {
        let guard = self.slot.lock().unwrap();
        // Read the epoch under the lock: it cannot move while we hold it,
        // so the pair is consistent.
        (Arc::clone(&guard), self.epoch.load(Ordering::Acquire))
    }

    /// The lock-free fast path: if the epoch still equals `seen`, return
    /// `None` without touching the lock; otherwise clone the new value.
    pub fn load_if_newer(&self, seen: u64) -> Option<(Arc<T>, u64)> {
        if self.epoch.load(Ordering::Acquire) == seen {
            return None;
        }
        Some(self.load())
    }

    /// Publish `value` as the next generation and return its epoch. The
    /// epoch store is Release-ordered *after* the slot update, so any
    /// reader observing the new epoch will read the new value.
    pub fn swap(&self, value: Arc<T>) -> u64 {
        let mut guard = self.slot.lock().unwrap();
        *guard = value;
        // fetch_add while still holding the lock: concurrent swaps cannot
        // interleave slot and epoch updates.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }
}

/// Load + validate a replacement artifact for a hot swap. Identical to
/// [`AnyArtifact::load`] plus the `io_fail@swap_load` chaos site, so swap
/// rollback can be exercised without a genuinely broken file.
pub fn checked_load(path: &Path) -> Result<AnyArtifact, ServeError> {
    if rdd_obs::fault::fire("swap_load") == Some(rdd_obs::FaultKind::IoFail) {
        return Err(ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::Other,
            "injected I/O failure (RDD_FAULT io_fail@swap_load)",
        )));
    }
    AnyArtifact::load(path)
}

/// What one [`ArtifactWatcher::poll`] produced.
#[derive(Debug)]
pub enum WatchOutcome {
    /// Not due yet (still inside the poll interval or failure backoff).
    Pending,
    /// Polled; nothing new (mtime unchanged, or same checksum reloaded).
    Unchanged,
    /// A fully loaded, validated replacement with a new checksum. The
    /// caller decides whether to install it (`ServePool::try_swap`).
    Loaded(Box<AnyArtifact>),
    /// The replacement failed to load or validate; the caller must keep
    /// the current generation and emit `swap_failed`.
    Failed {
        /// Why the load failed.
        error: ServeError,
        /// Consecutive failures on this path so far.
        failures: u32,
        /// Backoff now in effect before the next attempt, ms.
        backoff_ms: u64,
    },
}

/// Polls one artifact path for replacements, with exponential capped
/// backoff after failed loads. Time is injected (`poll(now)`) so tests can
/// drive the schedule without sleeping; the first poll is always due and
/// always re-reads the file, closing the load-then-watch race where the
/// artifact changes between the serve loop's initial load and its first
/// mtime sample.
pub struct ArtifactWatcher {
    path: PathBuf,
    /// Healthy poll interval (and the backoff floor).
    poll_every: Duration,
    /// Backoff ceiling after repeated failures.
    max_backoff: Duration,
    /// Current delay until the next poll (== `poll_every` while healthy).
    backoff: Duration,
    next_poll: Option<Instant>,
    last_mtime: Option<SystemTime>,
    /// Checksum of the artifact currently live; replacements that hash the
    /// same are reported [`WatchOutcome::Unchanged`] (no-op swap guard).
    last_checksum: u64,
    failures: u32,
}

impl ArtifactWatcher {
    /// Default healthy poll interval.
    pub const DEFAULT_POLL: Duration = Duration::from_millis(200);
    /// Default failure-backoff ceiling.
    pub const DEFAULT_MAX_BACKOFF: Duration = Duration::from_secs(5);

    /// Watch `path`, treating `current_checksum` as the live generation.
    pub fn new(path: impl Into<PathBuf>, current_checksum: u64) -> Self {
        Self::with_intervals(
            path,
            current_checksum,
            Self::DEFAULT_POLL,
            Self::DEFAULT_MAX_BACKOFF,
        )
    }

    /// [`ArtifactWatcher::new`] with explicit poll/backoff intervals.
    pub fn with_intervals(
        path: impl Into<PathBuf>,
        current_checksum: u64,
        poll_every: Duration,
        max_backoff: Duration,
    ) -> Self {
        let poll_every = poll_every.max(Duration::from_millis(1));
        Self {
            path: path.into(),
            poll_every,
            max_backoff: max_backoff.max(poll_every),
            backoff: poll_every,
            next_poll: None,
            last_mtime: None,
            last_checksum: current_checksum,
            failures: 0,
        }
    }

    /// When the next poll is due (`now` on a fresh watcher).
    pub fn next_poll(&self) -> Option<Instant> {
        self.next_poll
    }

    /// Consecutive failures on the watched path.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Tell the watcher `checksum` is now live (after a successful
    /// `try_swap`), so reverting the file to the previous content is seen
    /// as a change again.
    pub fn installed(&mut self, checksum: u64) {
        self.last_checksum = checksum;
    }

    /// Poll once at `now`. Cheap (one `metadata` call) unless the mtime
    /// moved, in which case the artifact is fully loaded and validated.
    pub fn poll(&mut self, now: Instant) -> WatchOutcome {
        if let Some(due) = self.next_poll {
            if now < due {
                return WatchOutcome::Pending;
            }
        }
        let mtime = std::fs::metadata(&self.path)
            .and_then(|m| m.modified())
            .ok();
        // An unchanged mtime after a *failed* load still retries: the
        // failure path never records the mtime it failed on.
        if mtime.is_some() && mtime == self.last_mtime {
            self.next_poll = Some(now + self.poll_every);
            return WatchOutcome::Unchanged;
        }
        match checked_load(&self.path) {
            Ok(artifact) => {
                self.last_mtime = mtime;
                self.failures = 0;
                self.backoff = self.poll_every;
                self.next_poll = Some(now + self.poll_every);
                if artifact.checksum() == self.last_checksum {
                    WatchOutcome::Unchanged
                } else {
                    WatchOutcome::Loaded(Box::new(artifact))
                }
            }
            Err(error) => {
                self.failures += 1;
                self.backoff = (self.backoff * 2).min(self.max_backoff);
                self.next_poll = Some(now + self.backoff);
                WatchOutcome::Failed {
                    error,
                    failures: self.failures,
                    backoff_ms: self.backoff.as_millis() as u64,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{write_artifact, ArtifactMeta};
    use crate::testutil::FAULT_LOCK;
    use rdd_tensor::Matrix;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rdd_swap_unit_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Write a tiny valid artifact; `tag` perturbs the rows so different
    /// tags produce different checksums.
    fn write_tiny(path: &Path, tag: u32) -> u64 {
        let meta = ArtifactMeta {
            dataset_name: "unit".into(),
            dataset_n: 2,
            num_classes: 2,
            source: "unit-test".into(),
            members: 1,
            alphas: vec![1.0],
            alpha_total: 1.0,
        };
        let t = tag as f32 * 0.05;
        let proba = Matrix::from_vec(2, 2, vec![0.6 + t, 0.4 - t, 0.3, 0.7]);
        let logits = Matrix::from_vec(2, 2, vec![0.5, -0.5, -1.0, 1.0]);
        write_artifact(path, &meta, &proba, &logits).unwrap()
    }

    #[test]
    fn watcher_loads_replacements_and_dedups_by_checksum() {
        let dir = tmpdir("watch_ok");
        let path = dir.join("m.artifact");
        let c1 = write_tiny(&path, 0);
        let mut w = ArtifactWatcher::with_intervals(
            &path,
            c1,
            Duration::from_millis(5),
            Duration::from_millis(40),
        );
        let t0 = Instant::now();
        // The first poll is always due and always re-reads; same bytes =
        // no-op swap.
        assert!(matches!(w.poll(t0), WatchOutcome::Unchanged));
        assert!(matches!(w.poll(t0), WatchOutcome::Pending));
        std::thread::sleep(Duration::from_millis(10)); // distinct mtime
        let c2 = write_tiny(&path, 3);
        assert_ne!(c1, c2);
        match w.poll(t0 + Duration::from_millis(6)) {
            WatchOutcome::Loaded(a) => assert_eq!(a.checksum(), c2),
            _ => panic!("replacement content must load"),
        }
        w.installed(c2);
        // mtime unchanged after install: cheap no-op polls.
        assert!(matches!(
            w.poll(t0 + Duration::from_millis(12)),
            WatchOutcome::Unchanged
        ));
        assert_eq!(w.failures(), 0);
    }

    #[test]
    fn failed_loads_back_off_exponentially_and_recover() {
        let dir = tmpdir("watch_fail");
        let path = dir.join("missing.artifact");
        let mut w = ArtifactWatcher::with_intervals(
            &path,
            0,
            Duration::from_millis(10),
            Duration::from_millis(40),
        );
        let t0 = Instant::now();
        match w.poll(t0) {
            WatchOutcome::Failed {
                failures,
                backoff_ms,
                ..
            } => assert_eq!((failures, backoff_ms), (1, 20)),
            _ => panic!("missing file must fail the first poll"),
        }
        // The backoff gates the next attempt.
        assert!(matches!(
            w.poll(t0 + Duration::from_millis(19)),
            WatchOutcome::Pending
        ));
        match w.poll(t0 + Duration::from_millis(20)) {
            WatchOutcome::Failed {
                failures,
                backoff_ms,
                ..
            } => assert_eq!((failures, backoff_ms), (2, 40), "backoff doubles"),
            _ => panic!("still missing"),
        }
        match w.poll(t0 + Duration::from_millis(60)) {
            WatchOutcome::Failed {
                failures,
                backoff_ms,
                ..
            } => assert_eq!((failures, backoff_ms), (3, 40), "backoff is capped"),
            _ => panic!("still missing"),
        }
        // Recovery: the failure path never records an mtime, so the next
        // due poll re-reads and loads the now-present file.
        let c = write_tiny(&path, 1);
        match w.poll(t0 + Duration::from_millis(100)) {
            WatchOutcome::Loaded(a) => assert_eq!(a.checksum(), c),
            _ => panic!("appearing file must load"),
        }
        assert_eq!(w.failures(), 0, "success resets the failure streak");
    }

    #[test]
    fn injected_io_fail_fails_one_load_then_recovers() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = tmpdir("watch_inject");
        let path = dir.join("m.artifact");
        let c1 = write_tiny(&path, 0);
        rdd_obs::fault::arm("io_fail@swap_load:0").unwrap();
        let err = checked_load(&path).unwrap_err();
        assert!(
            err.to_string().contains("injected I/O failure"),
            "unexpected error: {err}"
        );
        // The spec fired its single pass; the next load succeeds.
        let ok = checked_load(&path).unwrap();
        assert_eq!(ok.checksum(), c1);
        rdd_obs::fault::disarm();
    }

    #[test]
    fn starts_at_epoch_zero_and_increments_per_swap() {
        let cell = SwapCell::new(Arc::new(10u32));
        assert_eq!(cell.epoch(), 0);
        let (v, e) = cell.load();
        assert_eq!((*v, e), (10, 0));
        assert_eq!(cell.swap(Arc::new(20)), 1);
        assert_eq!(cell.swap(Arc::new(30)), 2);
        let (v, e) = cell.load();
        assert_eq!((*v, e), (30, 2));
    }

    #[test]
    fn load_if_newer_is_none_until_a_swap() {
        let cell = SwapCell::new(Arc::new("a"));
        let (_, seen) = cell.load();
        assert!(cell.load_if_newer(seen).is_none());
        cell.swap(Arc::new("b"));
        let (v, e) = cell.load_if_newer(seen).expect("swap must be visible");
        assert_eq!((*v, e), ("b", 1));
        assert!(cell.load_if_newer(e).is_none());
    }

    #[test]
    fn pinned_arc_outlives_a_swap() {
        let cell = SwapCell::new(Arc::new(vec![1, 2, 3]));
        let (pinned, gen0) = cell.load();
        cell.swap(Arc::new(vec![9]));
        // The old generation stays alive and unchanged for its holder.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(gen0, 0);
        drop(pinned); // last reference to generation 0 frees it here
    }

    #[test]
    fn concurrent_swappers_and_readers_see_consistent_pairs() {
        // Each generation's value equals its epoch, so any (value, epoch)
        // pair a reader observes must match — a torn read would not.
        let cell = Arc::new(SwapCell::new(Arc::new(0u64)));
        let swapper = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=500u64 {
                    let e = cell.swap(Arc::new(i));
                    assert_eq!(e, i);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut seen = u64::MAX; // force a first load
                    let mut last = 0u64;
                    for _ in 0..2000 {
                        if let Some((v, e)) = cell.load_if_newer(seen) {
                            assert_eq!(*v, e, "value and epoch published together");
                            assert!(e >= last, "epochs are monotonic");
                            last = e;
                            seen = e;
                        }
                    }
                })
            })
            .collect();
        swapper.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 500);
    }
}
