//! Hot artifact swap: an epoch-tagged atomic slot (a hand-rolled
//! `ArcSwap` on std primitives).
//!
//! [`SwapCell`] holds the pool's current artifact generation behind a
//! `Mutex<Arc<T>>` plus an `AtomicU64` epoch. Readers (serve workers) keep
//! a cached `Arc` clone and the epoch they cloned it at; once per batch
//! they check the epoch with a single atomic load — the lock is taken only
//! when a swap actually happened, so the steady-state read path is
//! lock-free. Because a worker pins its `Arc` for the whole batch,
//! in-flight requests always finish on the generation they started on,
//! and the old generation is freed exactly when its last pinned batch
//! drops the `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable `Arc<T>` with a monotonically increasing epoch.
/// Epoch 0 is the value the cell was built with; every [`SwapCell::swap`]
/// increments it.
pub struct SwapCell<T> {
    slot: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> SwapCell<T> {
    /// A cell holding `value` at epoch 0.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slot: Mutex::new(value),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current epoch (generation number). Acquire-ordered so a reader
    /// that observes epoch `e` also observes the slot contents published
    /// for `e`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clone the current value and its epoch (takes the lock).
    pub fn load(&self) -> (Arc<T>, u64) {
        let guard = self.slot.lock().unwrap();
        // Read the epoch under the lock: it cannot move while we hold it,
        // so the pair is consistent.
        (Arc::clone(&guard), self.epoch.load(Ordering::Acquire))
    }

    /// The lock-free fast path: if the epoch still equals `seen`, return
    /// `None` without touching the lock; otherwise clone the new value.
    pub fn load_if_newer(&self, seen: u64) -> Option<(Arc<T>, u64)> {
        if self.epoch.load(Ordering::Acquire) == seen {
            return None;
        }
        Some(self.load())
    }

    /// Publish `value` as the next generation and return its epoch. The
    /// epoch store is Release-ordered *after* the slot update, so any
    /// reader observing the new epoch will read the new value.
    pub fn swap(&self, value: Arc<T>) -> u64 {
        let mut guard = self.slot.lock().unwrap();
        *guard = value;
        // fetch_add while still holding the lock: concurrent swaps cannot
        // interleave slot and epoch updates.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_epoch_zero_and_increments_per_swap() {
        let cell = SwapCell::new(Arc::new(10u32));
        assert_eq!(cell.epoch(), 0);
        let (v, e) = cell.load();
        assert_eq!((*v, e), (10, 0));
        assert_eq!(cell.swap(Arc::new(20)), 1);
        assert_eq!(cell.swap(Arc::new(30)), 2);
        let (v, e) = cell.load();
        assert_eq!((*v, e), (30, 2));
    }

    #[test]
    fn load_if_newer_is_none_until_a_swap() {
        let cell = SwapCell::new(Arc::new("a"));
        let (_, seen) = cell.load();
        assert!(cell.load_if_newer(seen).is_none());
        cell.swap(Arc::new("b"));
        let (v, e) = cell.load_if_newer(seen).expect("swap must be visible");
        assert_eq!((*v, e), ("b", 1));
        assert!(cell.load_if_newer(e).is_none());
    }

    #[test]
    fn pinned_arc_outlives_a_swap() {
        let cell = SwapCell::new(Arc::new(vec![1, 2, 3]));
        let (pinned, gen0) = cell.load();
        cell.swap(Arc::new(vec![9]));
        // The old generation stays alive and unchanged for its holder.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(gen0, 0);
        drop(pinned); // last reference to generation 0 frees it here
    }

    #[test]
    fn concurrent_swappers_and_readers_see_consistent_pairs() {
        // Each generation's value equals its epoch, so any (value, epoch)
        // pair a reader observes must match — a torn read would not.
        let cell = Arc::new(SwapCell::new(Arc::new(0u64)));
        let swapper = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=500u64 {
                    let e = cell.swap(Arc::new(i));
                    assert_eq!(e, i);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut seen = u64::MAX; // force a first load
                    let mut last = 0u64;
                    for _ in 0..2000 {
                        if let Some((v, e)) = cell.load_if_newer(seen) {
                            assert_eq!(*v, e, "value and epoch published together");
                            assert!(e >= last, "epochs are monotonic");
                            last = e;
                            seen = e;
                        }
                    }
                })
            })
            .collect();
        swapper.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 500);
    }
}
