//! Multi-worker serving: N supervised threads pulling micro-batches from
//! one bounded request queue, against a hot-swappable artifact generation.
//!
//! This generalizes the persistent condvar worker pool from
//! `rdd-tensor::par` to the serving tier. One `Mutex<VecDeque>` +
//! `Condvar` queue admits requests ([`ServePool::submit`] sheds typed
//! `QueueFull` at capacity, exactly like the single-threaded engine);
//! each worker drains up to `batch_size` requests — waiting out the
//! oldest request's `max_delay_ms` micro-batch window when the queue is
//! short — and runs the same [`crate::engine`] flush core the
//! single-threaded [`crate::ServeEngine`] uses, against a shared
//! lock-partitioned [`ShardedLru`] row cache.
//!
//! Supervision: each batch executes behind `catch_unwind`. A panicking
//! worker requeues its claimed batch (bounded by
//! [`PoolConfig::retry_budget`] per request, after which the request is
//! answered with a typed [`ServeError::WorkerFailed`] reply — never a
//! silent drop or hang), emits `worker_panic`, spawns a replacement
//! thread for its slot (`worker_respawn`), and dies. [`ServePool::shutdown`]
//! answers anything still queued with typed [`ServeError::ShuttingDown`]
//! replies instead of dropping the queue.
//!
//! Hot swap: the current predictor lives in a [`SwapCell`]; workers
//! re-check its epoch with one atomic load per batch and pin an `Arc`
//! clone for the batch's duration, so [`ServePool::swap`] rolls a new
//! generation in with zero dropped requests and every reply tagged with
//! the generation that actually served it. [`ServePool::try_swap`] is the
//! validation-gated variant the watch loop uses: a replacement that
//! cannot serve live traffic (class count changed, empty predictor) is
//! rejected with [`ServeError::SwapRejected`] and the live generation
//! stays installed. Cache keys carry each generation's `cache_epoch`
//! (artifact checksum), so stale generations' rows can never alias — old
//! epochs simply age out of the LRU.
//!
//! Overload: an optional [`CircuitBreaker`] gates admission. While open,
//! [`ServePool::submit`] returns typed [`ServeError::Overloaded`] errors
//! carrying `retry_after_ms`; workers feed completed-request latencies
//! back so the breaker can trip on p99/shed-rate and recover through
//! half-open probes. The live state rides along in [`ServePool::metrics`]
//! snapshots (`serve_metrics` heartbeats).
//!
//! Replies stream to the caller-provided `mpsc::Sender` in completion
//! order (batch order within a worker; interleaved across workers).
//! Metrics: per-worker [`RollingWindow`]s plus an admission-side window,
//! merged lock-free via histogram merge into one
//! [`ServeMetricsSnapshot`]; [`ServePool::shutdown`] drains the queue,
//! joins the workers, publishes per-worker latency histograms
//! (`serve.worker<i>.request_ns`) and reports per-worker utilization,
//! panic and respawn counts.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rdd_models::{ConfigError, Predictor};
use rdd_obs::{HistSnapshot, ServeMetricsSnapshot};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::cache::ShardedLru;
use crate::engine::{
    execute_batch, CachedRow, PendingRequest, RollingWindow, ServeConfig, ServeReply, ServeStats,
    ShedCause, WindowAccum, DEFAULT_METRICS_WINDOW_S,
};
use crate::error::ServeError;
use crate::swap::SwapCell;

/// Pool tuning: the per-flush knobs of [`ServeConfig`] plus the worker
/// count, metrics-window width, supervision retry budget and the optional
/// overload breaker.
#[derive(Clone, Debug, PartialEq)]
pub struct PoolConfig {
    /// Batch/queue/cache knobs, shared with the single-threaded engine.
    pub serve: ServeConfig,
    /// Number of serve workers (≥ 1).
    pub workers: usize,
    /// Seconds of history each rolling metrics window keeps.
    pub metrics_window_s: usize,
    /// Lock partitions for the shared row cache (≥ 1; more partitions =
    /// less contention, coarser global LRU order).
    pub cache_partitions: usize,
    /// Times one request may be requeued after a worker panic before the
    /// supervisor answers it with [`ServeError::WorkerFailed`] (0 = fail
    /// on the first panic).
    pub retry_budget: u32,
    /// Overload circuit breaker at admission (`None` = always admit).
    pub breaker: Option<BreakerConfig>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            workers: 2,
            metrics_window_s: DEFAULT_METRICS_WINDOW_S,
            cache_partitions: 8,
            retry_budget: 2,
            breaker: None,
        }
    }
}

impl PoolConfig {
    /// Reject zero workers/partitions (and an unusable breaker) on top of
    /// [`ServeConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.serve.validate()?;
        if self.workers < 1 {
            return Err(ConfigError::invalid(
                "serve.workers",
                self.workers,
                ">= 1 worker",
            ));
        }
        if self.cache_partitions < 1 {
            return Err(ConfigError::invalid(
                "serve.cache_partitions",
                self.cache_partitions,
                ">= 1 cache partition",
            ));
        }
        if let Some(breaker) = &self.breaker {
            breaker.validate()?;
        }
        Ok(())
    }
}

/// One frozen artifact generation: the predictor plus the cache-key epoch
/// (its artifact checksum) that keeps its rows from aliasing other
/// generations'.
struct Generation<P> {
    predictor: P,
    cache_epoch: u64,
}

struct QueueState {
    pending: VecDeque<PendingRequest>,
    closed: bool,
}

struct WorkerState {
    window: RollingWindow,
    lifetime_lat: HistSnapshot,
    stats: ServeStats,
    busy: Duration,
    panics: u64,
    respawns: u64,
}

struct AdmissionState {
    window: RollingWindow,
    shed: u64,
    rejected: u64,
}

struct Shared<P> {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    cell: SwapCell<Generation<P>>,
    cache: Option<ShardedLru<(u64, usize), CachedRow>>,
    admission: Mutex<AdmissionState>,
    workers: Vec<Mutex<WorkerState>>,
    /// Worker threads, including replacements spawned by the supervisor;
    /// `close_and_join` pops until this drains.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Every worker (original or respawned) and the shutdown drain send
    /// replies through clones of this sender.
    reply_tx: mpsc::Sender<ServeReply>,
    retry_budget: u32,
    breaker: Option<Mutex<CircuitBreaker>>,
}

/// Final per-worker accounting from [`ServePool::shutdown`].
#[derive(Clone, Copy, Debug)]
pub struct WorkerReport {
    /// Worker index (0-based).
    pub worker: usize,
    /// Requests this worker answered.
    pub requests: u64,
    /// Batches this worker flushed.
    pub batches: u64,
    /// Wall time this worker spent executing batches, ms.
    pub busy_ms: f64,
    /// `busy_ms` over the pool's total wall time (0..=1 per worker).
    pub utilization: f64,
    /// Batch executions on this slot that panicked (caught + supervised).
    pub panics: u64,
    /// Replacement threads spawned for this slot after panics.
    pub respawns: u64,
}

/// Everything [`ServePool::shutdown`] hands back.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Counters merged across admission and every worker.
    pub stats: ServeStats,
    /// Pool lifetime, ms (construction to shutdown).
    pub wall_ms: f64,
    /// Per-worker breakdown, indexed by worker id.
    pub workers: Vec<WorkerReport>,
    /// Times the overload breaker tripped open (0 without a breaker).
    pub breaker_trips: u64,
}

/// N supervised serve workers over one bounded queue and a hot-swappable
/// predictor.
pub struct ServePool<P: Predictor + Send + Sync + 'static> {
    shared: Arc<Shared<P>>,
    started: Instant,
}

impl<P: Predictor + Send + Sync + 'static> ServePool<P> {
    /// Spawn `cfg.workers` threads serving `predictor`. `cache_epoch` must
    /// identify the frozen model (the artifact checksum). Replies stream
    /// to `reply_tx` as workers complete batches.
    pub fn new(
        predictor: P,
        cfg: PoolConfig,
        cache_epoch: u64,
        reply_tx: mpsc::Sender<ServeReply>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let breaker = match &cfg.breaker {
            Some(bc) => Some(Mutex::new(CircuitBreaker::new(bc.clone())?)),
            None => None,
        };
        let cache = (cfg.serve.cache_capacity > 0)
            .then(|| ShardedLru::new(cfg.serve.cache_capacity, cfg.cache_partitions));
        let shared = Arc::new(Shared {
            cfg: cfg.serve.clone(),
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cell: SwapCell::new(Arc::new(Generation {
                predictor,
                cache_epoch,
            })),
            cache,
            admission: Mutex::new(AdmissionState {
                window: RollingWindow::new(cfg.metrics_window_s),
                shed: 0,
                rejected: 0,
            }),
            workers: (0..cfg.workers)
                .map(|_| {
                    Mutex::new(WorkerState {
                        window: RollingWindow::new(cfg.metrics_window_s),
                        lifetime_lat: HistSnapshot::new(),
                        stats: ServeStats::default(),
                        busy: Duration::ZERO,
                        panics: 0,
                        respawns: 0,
                    })
                })
                .collect(),
            handles: Mutex::new(Vec::with_capacity(cfg.workers)),
            reply_tx,
            retry_budget: cfg.retry_budget,
            breaker,
        });
        {
            let mut handles = shared.handles.lock().unwrap();
            for idx in 0..cfg.workers {
                handles.push(spawn_worker(&shared, idx));
            }
        }
        Ok(Self {
            shared,
            started: Instant::now(),
        })
    }

    /// Number of workers serving.
    pub fn workers(&self) -> usize {
        self.shared.workers.len()
    }

    /// Enqueue a request — node ids or raw feature rows
    /// ([`rdd_models::PredictRequest`]). Unlike the single-threaded
    /// engine, replies never come back through this call — they stream to
    /// the pool's reply sender.
    pub fn submit(&self, id: u64, req: rdd_models::PredictRequest) -> Result<(), ServeError> {
        self.submit_with_deadline(id, req, None)
    }

    /// [`ServePool::submit`] with an optional deadline: the dispatching
    /// worker sheds the request with a typed [`ServeError::Expired`] reply
    /// if the instant passes first.
    pub fn submit_with_deadline(
        &self,
        id: u64,
        req: rdd_models::PredictRequest,
        deadline: Option<Instant>,
    ) -> Result<(), ServeError> {
        if let Some(breaker) = &self.shared.breaker {
            let verdict = breaker.lock().unwrap().admit(Instant::now());
            if let Err(e) = verdict {
                self.shared.admission.lock().unwrap().rejected += 1;
                return Err(e);
            }
        }
        let depth = {
            let mut q = self.shared.queue.lock().unwrap();
            if q.closed {
                return Err(ServeError::ShuttingDown);
            }
            if q.pending.len() >= self.shared.cfg.queue_capacity {
                drop(q);
                {
                    let mut a = self.shared.admission.lock().unwrap();
                    a.shed += 1;
                    a.window.record_shed(ShedCause::QueueFull);
                }
                // Queue-full sheds are overload signal the breaker's shed
                // rate watches (its own rejections are not).
                if let Some(breaker) = &self.shared.breaker {
                    breaker.lock().unwrap().record_shed(Instant::now());
                }
                return Err(ServeError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            q.pending.push_back(PendingRequest {
                id,
                req,
                enqueued: Instant::now(),
                deadline,
                retries: 0,
            });
            q.pending.len()
        };
        self.shared.available.notify_one();
        let mut a = self.shared.admission.lock().unwrap();
        a.window.record_queue_depth(depth);
        Ok(())
    }

    /// Requests currently queued (not yet claimed by a worker).
    pub fn pending_len(&self) -> usize {
        self.shared.queue.lock().unwrap().pending.len()
    }

    /// The current artifact generation (0 until the first swap).
    pub fn generation(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Atomically publish a new predictor as the next generation and
    /// return its generation number. In-flight batches finish on the
    /// generation they started with; queued requests dispatch on the new
    /// one. `cache_epoch` (the new artifact's checksum) keys the new
    /// generation's cache rows, so the old generation's entries are dead
    /// by key and age out of the LRU without an explicit purge.
    pub fn swap(&self, predictor: P, cache_epoch: u64) -> u64 {
        let generation = self.shared.cell.swap(Arc::new(Generation {
            predictor,
            cache_epoch,
        }));
        // Wake idle workers so nobody sleeps across a generation roll.
        self.shared.available.notify_all();
        generation
    }

    /// Validation-gated [`ServePool::swap`]: reject a replacement that
    /// live traffic cannot be served by, keeping the current generation
    /// installed. This is the only swap path the artifact-watch loop may
    /// use — a partially-loaded or shape-changed predictor never goes
    /// live.
    pub fn try_swap(&self, predictor: P, cache_epoch: u64) -> Result<u64, ServeError> {
        let (live, _) = self.shared.cell.load();
        if predictor.num_classes() != live.predictor.num_classes() {
            return Err(ServeError::SwapRejected(format!(
                "num_classes changed: live {}, replacement {}",
                live.predictor.num_classes(),
                predictor.num_classes()
            )));
        }
        if predictor.num_nodes() == 0 {
            return Err(ServeError::SwapRejected(
                "replacement predictor serves zero nodes".to_string(),
            ));
        }
        drop(live);
        Ok(self.swap(predictor, cache_epoch))
    }

    /// Live metrics merged across the admission window and every worker's
    /// rolling window, with the breaker's current state (if configured).
    pub fn metrics(&self) -> ServeMetricsSnapshot {
        let mut acc = WindowAccum::new();
        self.shared
            .admission
            .lock()
            .unwrap()
            .window
            .accumulate(&mut acc);
        for w in &self.shared.workers {
            w.lock().unwrap().window.accumulate(&mut acc);
        }
        let mut snapshot = acc.finalize();
        if let Some(breaker) = &self.shared.breaker {
            snapshot.breaker = Some(breaker.lock().unwrap().state().as_str());
        }
        snapshot
    }

    /// Pool-lifetime counters merged across admission and every worker.
    pub fn stats(&self) -> ServeStats {
        let mut stats = {
            let a = self.shared.admission.lock().unwrap();
            ServeStats {
                shed: a.shed,
                rejected: a.rejected,
                ..ServeStats::default()
            }
        };
        for w in &self.shared.workers {
            stats.merge(&w.lock().unwrap().stats);
        }
        stats
    }

    fn close_and_join(&self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.closed && self.shared.handles.lock().unwrap().is_empty() {
                return;
            }
            q.closed = true;
        }
        self.shared.available.notify_all();
        // A joined worker may have pushed a replacement handle before it
        // died (push happens-before its exit, exit happens-before the join
        // returns), so keep popping until the list drains.
        loop {
            let handle = self.shared.handles.lock().unwrap().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }

    /// Close the queue, let the workers drain every already-admitted
    /// request, join them (including supervisor-respawned replacements),
    /// answer anything still queued with typed [`ServeError::ShuttingDown`]
    /// replies, publish per-worker latency histograms as
    /// `serve.worker<i>.request_ns` hist events, and report final
    /// counters + per-worker utilization/panics/respawns.
    pub fn shutdown(self) -> PoolReport {
        self.close_and_join();
        // Workers normally drain the queue before exiting; anything left
        // (all replacements dead, drop-path races) is answered, not
        // dropped with the VecDeque.
        let stranded: Vec<PendingRequest> = {
            let mut q = self.shared.queue.lock().unwrap();
            q.pending.drain(..).collect()
        };
        let generation = self.shared.cell.epoch();
        for req in stranded {
            let _ = self.shared.reply_tx.send(ServeReply {
                id: req.id,
                result: Err(ServeError::ShuttingDown),
                latency_ms: req.enqueued.elapsed().as_secs_f64() * 1e3,
                cache_hits: 0,
                generation,
            });
        }
        let wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let mut workers = Vec::with_capacity(self.shared.workers.len());
        for (i, w) in self.shared.workers.iter().enumerate() {
            let w = w.lock().unwrap();
            rdd_obs::emit_hist_snapshot(&format!("serve.worker{i}.request_ns"), &w.lifetime_lat);
            let busy_ms = w.busy.as_secs_f64() * 1e3;
            workers.push(WorkerReport {
                worker: i,
                requests: w.stats.requests,
                batches: w.stats.batches,
                busy_ms,
                utilization: if wall_ms > 0.0 {
                    busy_ms / wall_ms
                } else {
                    0.0
                },
                panics: w.panics,
                respawns: w.respawns,
            });
        }
        PoolReport {
            stats: self.stats(),
            wall_ms,
            workers,
            breaker_trips: self
                .shared
                .breaker
                .as_ref()
                .map_or(0, |b| b.lock().unwrap().trips()),
        }
    }
}

impl<P: Predictor + Send + Sync + 'static> Drop for ServePool<P> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Spawn one worker thread for slot `idx` (initial spawn and supervisor
/// respawns go through the same path).
fn spawn_worker<P: Predictor + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    idx: usize,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("rdd-serve-{idx}"))
        .spawn(move || worker_loop(&shared, idx))
        .expect("spawn serve worker")
}

fn worker_loop<P: Predictor + Send + Sync + 'static>(shared: &Arc<Shared<P>>, idx: usize) {
    let tx = shared.reply_tx.clone();
    let (mut generation, mut seen) = shared.cell.load();
    let max_delay = Duration::from_millis(shared.cfg.max_delay_ms);
    loop {
        // Claim a batch: up to batch_size requests, flushing a short batch
        // once the oldest claimed-nothing-yet request has waited out the
        // micro-batch window (or the queue closed).
        let batch = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(first) = q.pending.front() {
                    let flush_at = first.enqueued + max_delay;
                    let now = Instant::now();
                    if q.pending.len() >= shared.cfg.batch_size || q.closed || now >= flush_at {
                        let take = q.pending.len().min(shared.cfg.batch_size);
                        break Some(q.pending.drain(..take).collect::<Vec<_>>());
                    }
                    let (qq, _) = shared.available.wait_timeout(q, flush_at - now).unwrap();
                    q = qq;
                } else if q.closed {
                    break None;
                } else {
                    q = shared.available.wait(q).unwrap();
                }
            }
        };
        let Some(batch) = batch else { return };

        // One atomic load per batch; the lock is taken only right after a
        // swap. The Arc stays pinned for the whole batch, so these
        // requests finish on the generation they were dispatched with.
        if let Some((g, e)) = shared.cell.load_if_newer(seen) {
            generation = g;
            seen = e;
        }
        // Supervision: clone the claimed descriptors so a panicking batch
        // can be requeued, then run the flush core behind catch_unwind.
        // Both injected sites (`panic@serve_worker` here,
        // `panic@serve_batch` inside the core) unwind into this catch
        // without any lock held.
        let saved: Vec<PendingRequest> = batch.clone();
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if rdd_obs::fault::fire("serve_worker") == Some(rdd_obs::FaultKind::Panic) {
                panic!("injected panic at serve_worker (RDD_FAULT)");
            }
            let mut cache = shared.cache.as_ref();
            execute_batch(
                idx,
                &generation.predictor,
                generation.cache_epoch,
                seen,
                batch,
                &mut cache,
            )
        }));
        let busy = t0.elapsed();
        let out = match outcome {
            Ok(out) => out,
            Err(_) => {
                supervise_panic(shared, idx, seen, saved, &tx);
                return; // the replacement thread takes over this slot
            }
        };
        drop(saved);
        {
            let mut w = shared.workers[idx].lock().unwrap();
            w.busy += busy;
            w.stats.requests += out.replies.len() as u64;
            w.stats.batches += 1;
            w.stats.cache_hits += out.hits as u64;
            w.stats.cache_misses += out.nodes_served.saturating_sub(out.hits) as u64;
            w.stats.feature_rows += out.feature_rows as u64;
            w.stats.expired += out.expired as u64;
            for _ in 0..out.expired {
                w.window.record_shed(ShedCause::Expired);
            }
            for &lat_ms in &out.latencies {
                w.window
                    .record_request(Duration::from_secs_f64(lat_ms / 1e3));
                w.lifetime_lat.record((lat_ms * 1e6) as u64);
            }
            w.window.record_cache(
                out.hits as u64,
                out.nodes_served.saturating_sub(out.hits) as u64,
            );
        }
        // Completed-request latencies are the breaker's trip/recovery
        // signal; one lock per batch.
        if let Some(breaker) = &shared.breaker {
            let mut b = breaker.lock().unwrap();
            let now = Instant::now();
            for &lat_ms in &out.latencies {
                b.record_request(lat_ms, now);
            }
        }
        for reply in out.replies {
            // A dropped receiver is not an error worth dying for: keep
            // draining so shutdown still completes.
            let _ = tx.send(reply);
        }
    }
}

/// The supervisor path a worker runs after catching a batch panic:
/// requeue what still has retry budget, answer the rest with typed
/// [`ServeError::WorkerFailed`] replies, account the panic, and spawn a
/// replacement thread for this slot before the caller exits.
fn supervise_panic<P: Predictor + Send + Sync + 'static>(
    shared: &Arc<Shared<P>>,
    idx: usize,
    generation: u64,
    saved: Vec<PendingRequest>,
    tx: &mpsc::Sender<ServeReply>,
) {
    let claimed = saved.len();
    let (retryable, spent): (Vec<_>, Vec<_>) = saved
        .into_iter()
        .partition(|req| req.retries < shared.retry_budget);
    let requeued = retryable.len();
    if requeued > 0 {
        {
            let mut q = shared.queue.lock().unwrap();
            // push_front in reverse keeps the original arrival order at
            // the head of the queue.
            for mut req in retryable.into_iter().rev() {
                req.retries += 1;
                q.pending.push_front(req);
            }
        }
        shared.available.notify_all();
    }
    let failed = spent.len();
    for req in spent {
        let _ = tx.send(ServeReply {
            id: req.id,
            result: Err(ServeError::WorkerFailed {
                retries: req.retries,
            }),
            latency_ms: req.enqueued.elapsed().as_secs_f64() * 1e3,
            cache_hits: 0,
            generation,
        });
    }
    let respawns = {
        let mut w = shared.workers[idx].lock().unwrap();
        w.panics += 1;
        w.stats.requests += failed as u64;
        w.stats.failed += failed as u64;
        w.respawns + 1
    };
    rdd_obs::emit_worker_panic(idx, claimed, requeued, failed);
    // Spawn the replacement before this thread exits; close_and_join
    // keeps popping handles until the list drains, so the new handle is
    // always joined.
    let handle = spawn_worker(shared, idx);
    shared.handles.lock().unwrap().push(handle);
    shared.workers[idx].lock().unwrap().respawns = respawns;
    rdd_obs::emit_worker_respawn(idx, respawns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_models::{gather_prediction, PredictError, PredictRequest, Prediction};
    use rdd_tensor::Matrix;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use crate::testutil::FAULT_LOCK;

    /// Thread-safe fake: proba(node) = f(node, tag), counting executions.
    struct FakePredictor {
        proba: Matrix,
        nodes_executed: AtomicUsize,
    }

    impl FakePredictor {
        fn new(n: usize, k: usize, tag: usize) -> Self {
            let mut data = Vec::with_capacity(n * k);
            for i in 0..n {
                for j in 0..k {
                    data.push(((i * 31 + j * 7 + tag * 101) % 13) as f32 / 13.0 + 0.01);
                }
            }
            Self {
                proba: Matrix::from_vec(n, k, data),
                nodes_executed: AtomicUsize::new(0),
            }
        }
    }

    impl Predictor for FakePredictor {
        fn num_nodes(&self) -> usize {
            self.proba.rows()
        }
        fn num_classes(&self) -> usize {
            self.proba.cols()
        }
        fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
            // Feature rows: dim must equal k; answer softmax(row) — a
            // deterministic stand-in for a distilled student forward.
            if let PredictRequest::ByFeatures(rows) = req {
                if rows.cols() != self.proba.cols() {
                    return Err(PredictError::FeatureDimMismatch {
                        got: rows.cols(),
                        expected: self.proba.cols(),
                    });
                }
                let proba = rows.softmax_rows();
                return Ok(Prediction {
                    nodes: (0..rows.rows()).collect(),
                    pred: proba.argmax_rows(),
                    proba,
                    kind: rdd_models::PredictionKind::Features,
                });
            }
            let out = gather_prediction(&self.proba, req)?;
            self.nodes_executed
                .fetch_add(out.nodes.len(), Ordering::Relaxed);
            Ok(out)
        }
    }

    #[test]
    fn pooled_hammer_mixes_node_and_feature_requests() {
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            serve: ServeConfig {
                batch_size: 4,
                max_delay_ms: 1,
                ..ServeConfig::default()
            },
            workers: 3,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(24, 3, 0), cfg, 0xfab, tx).unwrap();
        // Even ids ask for a node row, odd ids send a raw feature vector
        // whose softmax (the fake's student forward) is predictable.
        for id in 0..60u64 {
            if id % 2 == 0 {
                pool.submit(id, PredictRequest::nodes(vec![(id % 24) as usize]))
                    .unwrap();
            } else {
                let row = Matrix::from_fn(1, 3, |_, j| (id as usize * 7 + j) as f32 * 0.01);
                pool.submit(id, PredictRequest::features(row)).unwrap();
            }
        }
        let report = pool.shutdown();
        let replies: Vec<ServeReply> = rx.into_iter().collect();
        assert_eq!(replies.len(), 60, "every mixed request gets a reply");
        for r in &replies {
            let p = r.result.as_ref().expect("mixed traffic all serves");
            if r.id % 2 == 0 {
                assert_eq!(p.kind, rdd_models::PredictionKind::Node);
                assert_eq!(p.nodes, vec![(r.id % 24) as usize]);
            } else {
                assert_eq!(p.kind, rdd_models::PredictionKind::Features);
                assert_eq!(p.nodes, vec![0]);
                let row = Matrix::from_fn(1, 3, |_, j| (r.id as usize * 7 + j) as f32 * 0.01);
                assert_eq!(
                    p.proba.as_slice(),
                    row.softmax_rows().as_slice(),
                    "served feature row must be bitwise vs the direct forward"
                );
            }
        }
        assert_eq!(report.stats.requests, 60);
        assert_eq!(report.stats.feature_rows, 30);
        assert_eq!(report.stats.failed, 0);
    }

    #[test]
    fn config_rejects_zero_workers_partitions_and_bad_breaker() {
        let cfg = PoolConfig {
            workers: 0,
            ..PoolConfig::default()
        };
        assert_eq!(cfg.validate().unwrap_err().field, "serve.workers");
        let cfg = PoolConfig {
            cache_partitions: 0,
            ..PoolConfig::default()
        };
        assert_eq!(cfg.validate().unwrap_err().field, "serve.cache_partitions");
        let cfg = PoolConfig {
            breaker: Some(BreakerConfig::with_p99_ms(0.0)),
            ..PoolConfig::default()
        };
        assert_eq!(cfg.validate().unwrap_err().field, "breaker.p99_ms");
    }

    #[test]
    fn pool_serves_every_request_exactly_once() {
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            serve: ServeConfig {
                batch_size: 4,
                max_delay_ms: 1,
                ..ServeConfig::default()
            },
            workers: 3,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(24, 3, 0), cfg, 0xfeed, tx).unwrap();
        for id in 0..50u64 {
            pool.submit(id, PredictRequest::nodes(vec![(id % 24) as usize]))
                .unwrap();
        }
        let report = pool.shutdown();
        let replies: Vec<ServeReply> = rx.into_iter().collect();
        assert_eq!(replies.len(), 50, "every admitted request gets a reply");
        let mut ids: Vec<u64> = replies.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..50).collect::<Vec<_>>(),
            "no lost or duplicated ids"
        );
        assert_eq!(report.stats.requests, 50);
        assert_eq!(report.workers.len(), 3);
        let worked: u64 = report.workers.iter().map(|w| w.requests).sum();
        assert_eq!(worked, 50);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.breaker_trips, 0);
    }

    #[test]
    fn submit_after_shutdown_is_typed_shutting_down() {
        let (tx, _rx) = mpsc::channel();
        let pool =
            ServePool::new(FakePredictor::new(8, 2, 0), PoolConfig::default(), 1, tx).unwrap();
        pool.close_and_join();
        assert!(matches!(
            pool.submit(0, PredictRequest::nodes(vec![1])),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn swap_changes_generation_for_new_requests() {
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            serve: ServeConfig {
                batch_size: 1,
                max_delay_ms: 0,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            workers: 1,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(8, 2, 0), cfg, 11, tx).unwrap();
        assert_eq!(pool.generation(), 0);
        pool.submit(0, PredictRequest::nodes(vec![1])).unwrap();
        let first = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(first.generation, 0);
        let generation = pool.swap(FakePredictor::new(8, 2, 7), 22);
        assert_eq!(generation, 1);
        pool.submit(1, PredictRequest::nodes(vec![1])).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(second.generation, 1);
        // The two generations produced different rows for the same node.
        let a = first.result.unwrap();
        let b = second.result.unwrap();
        assert_ne!(a.proba.as_slice(), b.proba.as_slice());
        pool.shutdown();
    }

    #[test]
    fn try_swap_rejects_shape_changes_and_installs_valid_replacements() {
        let (tx, _rx) = mpsc::channel();
        let cfg = PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(8, 2, 0), cfg, 1, tx).unwrap();
        let err = pool.try_swap(FakePredictor::new(8, 3, 1), 2).unwrap_err();
        assert!(
            matches!(&err, ServeError::SwapRejected(msg) if msg.contains("num_classes")),
            "got {err:?}"
        );
        assert_eq!(pool.generation(), 0, "rejected swap must not go live");
        let generation = pool.try_swap(FakePredictor::new(8, 2, 1), 2).unwrap();
        assert_eq!(generation, 1);
        pool.shutdown();
    }

    #[test]
    fn panicking_worker_requeues_batch_and_respawns() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        rdd_obs::fault::arm("panic@serve_worker:0x1").unwrap();
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            serve: ServeConfig {
                batch_size: 4,
                max_delay_ms: 1,
                ..ServeConfig::default()
            },
            workers: 1,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(16, 3, 0), cfg, 7, tx).unwrap();
        for id in 0..12u64 {
            pool.submit(id, PredictRequest::nodes(vec![(id % 16) as usize]))
                .unwrap();
        }
        let mut replies = Vec::with_capacity(12);
        for _ in 0..12 {
            replies.push(
                rx.recv_timeout(Duration::from_secs(20))
                    .expect("every request must be answered despite the panic"),
            );
        }
        rdd_obs::fault::disarm();
        let report = pool.shutdown();
        assert!(
            replies.iter().all(|r| r.result.is_ok()),
            "requeued requests must succeed once the replacement worker runs"
        );
        let mut ids: Vec<u64> = replies.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        assert_eq!(report.workers.iter().map(|w| w.panics).sum::<u64>(), 1);
        assert!(report.workers.iter().map(|w| w.respawns).sum::<u64>() >= 1);
        assert_eq!(report.stats.failed, 0);
    }

    #[test]
    fn spent_retry_budget_answers_typed_worker_failed() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // k=8 covers the worst case (4 singleton first attempts + 4
        // singleton retries); every batch containing a request panics
        // until all requests are answered.
        rdd_obs::fault::arm("panic@serve_worker:0x8").unwrap();
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            serve: ServeConfig {
                batch_size: 4,
                max_delay_ms: 20,
                ..ServeConfig::default()
            },
            workers: 1,
            retry_budget: 1,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(8, 2, 0), cfg, 3, tx).unwrap();
        for id in 0..4u64 {
            pool.submit(id, PredictRequest::nodes(vec![(id % 8) as usize]))
                .unwrap();
        }
        let mut replies = Vec::with_capacity(4);
        for _ in 0..4 {
            replies.push(
                rx.recv_timeout(Duration::from_secs(20))
                    .expect("spent-budget requests must still be answered"),
            );
        }
        rdd_obs::fault::disarm();
        let report = pool.shutdown();
        for reply in &replies {
            assert!(
                matches!(reply.result, Err(ServeError::WorkerFailed { retries: 1 })),
                "expected WorkerFailed after 1 retry, got {:?}",
                reply.result
            );
        }
        assert_eq!(report.stats.failed, 4);
        assert!(report.workers.iter().map(|w| w.panics).sum::<u64>() >= 2);
    }

    #[test]
    fn breaker_trips_on_slow_traffic_and_rejects_with_overloaded() {
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            serve: ServeConfig {
                batch_size: 1,
                max_delay_ms: 0,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            workers: 1,
            breaker: Some(BreakerConfig {
                // Any real latency exceeds this SLO; stays open for the
                // rest of the test so the assertions are race-free.
                p99_ms: 1e-6,
                min_requests: 1,
                eval_every_ms: 1,
                open_ms: 60_000,
                max_open_ms: 60_000,
                probes: 1,
                ..BreakerConfig::default()
            }),
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(8, 2, 0), cfg, 5, tx).unwrap();
        let mut tripped = false;
        for id in 0..200u64 {
            match pool.submit(id, PredictRequest::nodes(vec![1])) {
                Err(ServeError::Overloaded { retry_after_ms }) => {
                    assert!(retry_after_ms > 0.0);
                    tripped = true;
                    break;
                }
                Err(other) => panic!("unexpected error before trip: {other:?}"),
                Ok(()) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        assert!(tripped, "breaker must trip once latencies feed back");
        assert_eq!(pool.metrics().breaker, Some("open"));
        let report = pool.shutdown();
        assert!(report.breaker_trips >= 1);
        assert!(report.stats.rejected >= 1);
        drop(rx);
    }

    #[test]
    fn stranded_requests_are_answered_on_shutdown() {
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(8, 2, 0), cfg, 1, tx).unwrap();
        // Stop the worker first, then strand a request in the queue —
        // the state a dead-and-not-replaced worker set would leave.
        pool.close_and_join();
        pool.shared
            .queue
            .lock()
            .unwrap()
            .pending
            .push_back(PendingRequest {
                id: 99,
                req: PredictRequest::all(),
                enqueued: Instant::now(),
                deadline: None,
                retries: 0,
            });
        pool.shutdown();
        let reply = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("stranded request must be answered, not dropped");
        assert_eq!(reply.id, 99);
        assert!(matches!(reply.result, Err(ServeError::ShuttingDown)));
    }
}
