//! Multi-worker serving: N threads pulling micro-batches from one bounded
//! request queue, against a hot-swappable artifact generation.
//!
//! This generalizes the persistent condvar worker pool from
//! `rdd-tensor::par` to the serving tier. One `Mutex<VecDeque>` +
//! `Condvar` queue admits requests ([`ServePool::submit`] sheds typed
//! `QueueFull` at capacity, exactly like the single-threaded engine);
//! each worker drains up to `batch_size` requests — waiting out the
//! oldest request's `max_delay_ms` micro-batch window when the queue is
//! short — and runs the same [`crate::engine`] flush core the
//! single-threaded [`crate::ServeEngine`] uses, against a shared
//! lock-partitioned [`ShardedLru`] row cache.
//!
//! Hot swap: the current predictor lives in a [`SwapCell`]; workers
//! re-check its epoch with one atomic load per batch and pin an `Arc`
//! clone for the batch's duration, so [`ServePool::swap`] rolls a new
//! generation in with zero dropped requests and every reply tagged with
//! the generation that actually served it. Cache keys carry each
//! generation's `cache_epoch` (artifact checksum), so stale generations'
//! rows can never alias — old epochs simply age out of the LRU.
//!
//! Replies stream to the caller-provided `mpsc::Sender` in completion
//! order (batch order within a worker; interleaved across workers).
//! Metrics: per-worker [`RollingWindow`]s plus an admission-side window,
//! merged lock-free via histogram merge into one
//! [`ServeMetricsSnapshot`]; [`ServePool::shutdown`] drains the queue,
//! joins the workers, publishes per-worker latency histograms
//! (`serve.worker<i>.request_ns`) and reports per-worker utilization.

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rdd_models::{ConfigError, Predictor};
use rdd_obs::{HistSnapshot, ServeMetricsSnapshot};

use crate::cache::ShardedLru;
use crate::engine::{
    execute_batch, CachedRow, PendingRequest, RollingWindow, ServeConfig, ServeReply, ServeStats,
    ShedCause, WindowAccum, DEFAULT_METRICS_WINDOW_S,
};
use crate::error::ServeError;
use crate::swap::SwapCell;

/// Pool tuning: the per-flush knobs of [`ServeConfig`] plus the worker
/// count and metrics-window width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Batch/queue/cache knobs, shared with the single-threaded engine.
    pub serve: ServeConfig,
    /// Number of serve workers (≥ 1).
    pub workers: usize,
    /// Seconds of history each rolling metrics window keeps.
    pub metrics_window_s: usize,
    /// Lock partitions for the shared row cache (≥ 1; more partitions =
    /// less contention, coarser global LRU order).
    pub cache_partitions: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            workers: 2,
            metrics_window_s: DEFAULT_METRICS_WINDOW_S,
            cache_partitions: 8,
        }
    }
}

impl PoolConfig {
    /// Reject zero workers/partitions on top of [`ServeConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.serve.validate()?;
        if self.workers < 1 {
            return Err(ConfigError::invalid(
                "serve.workers",
                self.workers,
                ">= 1 worker",
            ));
        }
        if self.cache_partitions < 1 {
            return Err(ConfigError::invalid(
                "serve.cache_partitions",
                self.cache_partitions,
                ">= 1 cache partition",
            ));
        }
        Ok(())
    }
}

/// One frozen artifact generation: the predictor plus the cache-key epoch
/// (its artifact checksum) that keeps its rows from aliasing other
/// generations'.
struct Generation<P> {
    predictor: P,
    cache_epoch: u64,
}

struct QueueState {
    pending: VecDeque<PendingRequest>,
    closed: bool,
}

struct WorkerState {
    window: RollingWindow,
    lifetime_lat: HistSnapshot,
    stats: ServeStats,
    busy: Duration,
}

struct AdmissionState {
    window: RollingWindow,
    shed: u64,
}

struct Shared<P> {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    cell: SwapCell<Generation<P>>,
    cache: Option<ShardedLru<(u64, usize), CachedRow>>,
    admission: Mutex<AdmissionState>,
    workers: Vec<Mutex<WorkerState>>,
}

/// Final per-worker accounting from [`ServePool::shutdown`].
#[derive(Clone, Copy, Debug)]
pub struct WorkerReport {
    /// Worker index (0-based).
    pub worker: usize,
    /// Requests this worker answered.
    pub requests: u64,
    /// Batches this worker flushed.
    pub batches: u64,
    /// Wall time this worker spent executing batches, ms.
    pub busy_ms: f64,
    /// `busy_ms` over the pool's total wall time (0..=1 per worker).
    pub utilization: f64,
}

/// Everything [`ServePool::shutdown`] hands back.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Counters merged across admission and every worker.
    pub stats: ServeStats,
    /// Pool lifetime, ms (construction to shutdown).
    pub wall_ms: f64,
    /// Per-worker breakdown, indexed by worker id.
    pub workers: Vec<WorkerReport>,
}

/// N serve workers over one bounded queue and a hot-swappable predictor.
pub struct ServePool<P: Predictor + Send + Sync + 'static> {
    shared: Arc<Shared<P>>,
    handles: Vec<JoinHandle<()>>,
    started: Instant,
}

impl<P: Predictor + Send + Sync + 'static> ServePool<P> {
    /// Spawn `cfg.workers` threads serving `predictor`. `cache_epoch` must
    /// identify the frozen model (the artifact checksum). Replies stream
    /// to `reply_tx` as workers complete batches.
    pub fn new(
        predictor: P,
        cfg: PoolConfig,
        cache_epoch: u64,
        reply_tx: mpsc::Sender<ServeReply>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let cache = (cfg.serve.cache_capacity > 0)
            .then(|| ShardedLru::new(cfg.serve.cache_capacity, cfg.cache_partitions));
        let shared = Arc::new(Shared {
            cfg: cfg.serve.clone(),
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cell: SwapCell::new(Arc::new(Generation {
                predictor,
                cache_epoch,
            })),
            cache,
            admission: Mutex::new(AdmissionState {
                window: RollingWindow::new(cfg.metrics_window_s),
                shed: 0,
            }),
            workers: (0..cfg.workers)
                .map(|_| {
                    Mutex::new(WorkerState {
                        window: RollingWindow::new(cfg.metrics_window_s),
                        lifetime_lat: HistSnapshot::new(),
                        stats: ServeStats::default(),
                        busy: Duration::ZERO,
                    })
                })
                .collect(),
        });
        let handles = (0..cfg.workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                let tx = reply_tx.clone();
                std::thread::Builder::new()
                    .name(format!("rdd-serve-{idx}"))
                    .spawn(move || worker_loop(&shared, idx, &tx))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(Self {
            shared,
            handles,
            started: Instant::now(),
        })
    }

    /// Number of workers serving.
    pub fn workers(&self) -> usize {
        self.shared.workers.len()
    }

    /// Enqueue a request (`nodes: None` = the whole graph). Unlike the
    /// single-threaded engine, replies never come back through this call —
    /// they stream to the pool's reply sender.
    pub fn submit(&self, id: u64, nodes: Option<Vec<usize>>) -> Result<(), ServeError> {
        self.submit_with_deadline(id, nodes, None)
    }

    /// [`ServePool::submit`] with an optional deadline: the dispatching
    /// worker sheds the request with a typed [`ServeError::Expired`] reply
    /// if the instant passes first.
    pub fn submit_with_deadline(
        &self,
        id: u64,
        nodes: Option<Vec<usize>>,
        deadline: Option<Instant>,
    ) -> Result<(), ServeError> {
        let depth = {
            let mut q = self.shared.queue.lock().unwrap();
            if q.closed {
                return Err(ServeError::BadRequest(
                    "serve pool is shut down".to_string(),
                ));
            }
            if q.pending.len() >= self.shared.cfg.queue_capacity {
                drop(q);
                let mut a = self.shared.admission.lock().unwrap();
                a.shed += 1;
                a.window.record_shed(ShedCause::QueueFull);
                return Err(ServeError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            q.pending.push_back(PendingRequest {
                id,
                nodes,
                enqueued: Instant::now(),
                deadline,
            });
            q.pending.len()
        };
        self.shared.available.notify_one();
        let mut a = self.shared.admission.lock().unwrap();
        a.window.record_queue_depth(depth);
        Ok(())
    }

    /// Requests currently queued (not yet claimed by a worker).
    pub fn pending_len(&self) -> usize {
        self.shared.queue.lock().unwrap().pending.len()
    }

    /// The current artifact generation (0 until the first swap).
    pub fn generation(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Atomically publish a new predictor as the next generation and
    /// return its generation number. In-flight batches finish on the
    /// generation they started with; queued requests dispatch on the new
    /// one. `cache_epoch` (the new artifact's checksum) keys the new
    /// generation's cache rows, so the old generation's entries are dead
    /// by key and age out of the LRU without an explicit purge.
    pub fn swap(&self, predictor: P, cache_epoch: u64) -> u64 {
        let generation = self.shared.cell.swap(Arc::new(Generation {
            predictor,
            cache_epoch,
        }));
        // Wake idle workers so nobody sleeps across a generation roll.
        self.shared.available.notify_all();
        generation
    }

    /// Live metrics merged across the admission window and every worker's
    /// rolling window.
    pub fn metrics(&self) -> ServeMetricsSnapshot {
        let mut acc = WindowAccum::new();
        self.shared
            .admission
            .lock()
            .unwrap()
            .window
            .accumulate(&mut acc);
        for w in &self.shared.workers {
            w.lock().unwrap().window.accumulate(&mut acc);
        }
        acc.finalize()
    }

    /// Pool-lifetime counters merged across admission and every worker.
    pub fn stats(&self) -> ServeStats {
        let mut stats = ServeStats {
            shed: self.shared.admission.lock().unwrap().shed,
            ..ServeStats::default()
        };
        for w in &self.shared.workers {
            stats.merge(&w.lock().unwrap().stats);
        }
        stats
    }

    fn close_and_join(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.closed && self.handles.is_empty() {
                return;
            }
            q.closed = true;
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Close the queue, let the workers drain every already-admitted
    /// request, join them, publish per-worker latency histograms as
    /// `serve.worker<i>.request_ns` hist events, and report final
    /// counters + per-worker utilization.
    pub fn shutdown(mut self) -> PoolReport {
        self.close_and_join();
        let wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let mut workers = Vec::with_capacity(self.shared.workers.len());
        for (i, w) in self.shared.workers.iter().enumerate() {
            let w = w.lock().unwrap();
            rdd_obs::emit_hist_snapshot(&format!("serve.worker{i}.request_ns"), &w.lifetime_lat);
            let busy_ms = w.busy.as_secs_f64() * 1e3;
            workers.push(WorkerReport {
                worker: i,
                requests: w.stats.requests,
                batches: w.stats.batches,
                busy_ms,
                utilization: if wall_ms > 0.0 {
                    busy_ms / wall_ms
                } else {
                    0.0
                },
            });
        }
        PoolReport {
            stats: self.stats(),
            wall_ms,
            workers,
        }
    }
}

impl<P: Predictor + Send + Sync + 'static> Drop for ServePool<P> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop<P: Predictor + Send + Sync + 'static>(
    shared: &Shared<P>,
    idx: usize,
    tx: &mpsc::Sender<ServeReply>,
) {
    let (mut generation, mut seen) = shared.cell.load();
    let max_delay = Duration::from_millis(shared.cfg.max_delay_ms);
    loop {
        // Claim a batch: up to batch_size requests, flushing a short batch
        // once the oldest claimed-nothing-yet request has waited out the
        // micro-batch window (or the queue closed).
        let batch = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(first) = q.pending.front() {
                    let flush_at = first.enqueued + max_delay;
                    let now = Instant::now();
                    if q.pending.len() >= shared.cfg.batch_size || q.closed || now >= flush_at {
                        let take = q.pending.len().min(shared.cfg.batch_size);
                        break Some(q.pending.drain(..take).collect::<Vec<_>>());
                    }
                    let (qq, _) = shared.available.wait_timeout(q, flush_at - now).unwrap();
                    q = qq;
                } else if q.closed {
                    break None;
                } else {
                    q = shared.available.wait(q).unwrap();
                }
            }
        };
        let Some(batch) = batch else { return };

        // One atomic load per batch; the lock is taken only right after a
        // swap. The Arc stays pinned for the whole batch, so these
        // requests finish on the generation they were dispatched with.
        if let Some((g, e)) = shared.cell.load_if_newer(seen) {
            generation = g;
            seen = e;
        }
        let t0 = Instant::now();
        let mut cache = shared.cache.as_ref();
        let out = execute_batch(
            idx,
            &generation.predictor,
            generation.cache_epoch,
            seen,
            batch,
            &mut cache,
        );
        let busy = t0.elapsed();
        {
            let mut w = shared.workers[idx].lock().unwrap();
            w.busy += busy;
            w.stats.requests += out.replies.len() as u64;
            w.stats.batches += 1;
            w.stats.cache_hits += out.hits as u64;
            w.stats.cache_misses += out.nodes_served.saturating_sub(out.hits) as u64;
            w.stats.expired += out.expired as u64;
            for _ in 0..out.expired {
                w.window.record_shed(ShedCause::Expired);
            }
            for &lat_ms in &out.latencies {
                w.window
                    .record_request(Duration::from_secs_f64(lat_ms / 1e3));
                w.lifetime_lat.record((lat_ms * 1e6) as u64);
            }
            w.window.record_cache(
                out.hits as u64,
                out.nodes_served.saturating_sub(out.hits) as u64,
            );
        }
        for reply in out.replies {
            // A dropped receiver is not an error worth dying for: keep
            // draining so shutdown still completes.
            let _ = tx.send(reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_models::{gather_prediction, PredictError, PredictRequest, Prediction};
    use rdd_tensor::Matrix;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Thread-safe fake: proba(node) = f(node, tag), counting executions.
    struct FakePredictor {
        proba: Matrix,
        nodes_executed: AtomicUsize,
    }

    impl FakePredictor {
        fn new(n: usize, k: usize, tag: usize) -> Self {
            let mut data = Vec::with_capacity(n * k);
            for i in 0..n {
                for j in 0..k {
                    data.push(((i * 31 + j * 7 + tag * 101) % 13) as f32 / 13.0 + 0.01);
                }
            }
            Self {
                proba: Matrix::from_vec(n, k, data),
                nodes_executed: AtomicUsize::new(0),
            }
        }
    }

    impl Predictor for FakePredictor {
        fn num_nodes(&self) -> usize {
            self.proba.rows()
        }
        fn num_classes(&self) -> usize {
            self.proba.cols()
        }
        fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
            let out = gather_prediction(&self.proba, req)?;
            self.nodes_executed
                .fetch_add(out.nodes.len(), Ordering::Relaxed);
            Ok(out)
        }
    }

    #[test]
    fn config_rejects_zero_workers_and_partitions() {
        let cfg = PoolConfig {
            workers: 0,
            ..PoolConfig::default()
        };
        assert_eq!(cfg.validate().unwrap_err().field, "serve.workers");
        let cfg = PoolConfig {
            cache_partitions: 0,
            ..PoolConfig::default()
        };
        assert_eq!(cfg.validate().unwrap_err().field, "serve.cache_partitions");
    }

    #[test]
    fn pool_serves_every_request_exactly_once() {
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            serve: ServeConfig {
                batch_size: 4,
                max_delay_ms: 1,
                ..ServeConfig::default()
            },
            workers: 3,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(24, 3, 0), cfg, 0xfeed, tx).unwrap();
        for id in 0..50u64 {
            pool.submit(id, Some(vec![(id % 24) as usize])).unwrap();
        }
        let report = pool.shutdown();
        let replies: Vec<ServeReply> = rx.into_iter().collect();
        assert_eq!(replies.len(), 50, "every admitted request gets a reply");
        let mut ids: Vec<u64> = replies.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..50).collect::<Vec<_>>(),
            "no lost or duplicated ids"
        );
        assert_eq!(report.stats.requests, 50);
        assert_eq!(report.workers.len(), 3);
        let worked: u64 = report.workers.iter().map(|w| w.requests).sum();
        assert_eq!(worked, 50);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let (tx, _rx) = mpsc::channel();
        let pool =
            ServePool::new(FakePredictor::new(8, 2, 0), PoolConfig::default(), 1, tx).unwrap();
        let shared = Arc::clone(&pool.shared);
        drop(pool); // Drop path also closes + joins
        let q = shared.queue.lock().unwrap();
        assert!(q.closed);
    }

    #[test]
    fn swap_changes_generation_for_new_requests() {
        let (tx, rx) = mpsc::channel();
        let cfg = PoolConfig {
            serve: ServeConfig {
                batch_size: 1,
                max_delay_ms: 0,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
            workers: 1,
            ..PoolConfig::default()
        };
        let pool = ServePool::new(FakePredictor::new(8, 2, 0), cfg, 11, tx).unwrap();
        assert_eq!(pool.generation(), 0);
        pool.submit(0, Some(vec![1])).unwrap();
        let first = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(first.generation, 0);
        let generation = pool.swap(FakePredictor::new(8, 2, 7), 22);
        assert_eq!(generation, 1);
        pool.submit(1, Some(vec![1])).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(second.generation, 1);
        // The two generations produced different rows for the same node.
        let a = first.result.unwrap();
        let b = second.result.unwrap();
        assert_ne!(a.proba.as_slice(), b.proba.as_slice());
        pool.shutdown();
    }
}
